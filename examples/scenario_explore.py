#!/usr/bin/env python3
"""Coverage-guided scenario generation on the GPCA pump, end to end.

Demonstrates the scenario subsystem (``repro.scenarios``):

1. express a hand-written GPCA scenario as a declarative
   :class:`ScenarioProgram` and compile it to an R-test case;
2. sample *generated* programs from the bounded GPCA scenario space with a
   seeded :class:`ScenarioSampler`;
3. run the :class:`CoverageGuidedExplorer` against implementation scheme 1:
   execute compiled programs, measure model transition/state coverage from
   the traces, and bias further sampling toward uncovered behaviour.

Run with:  python examples/scenario_explore.py
"""

from __future__ import annotations

from repro.campaign import process_cache
from repro.gpca import (
    build_scheme_system,
    empty_reservoir_alarm_program,
    gpca_scenario_space,
)
from repro.scenarios import CoverageGuidedExplorer, ScenarioSampler


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A hand-written scenario as a declarative program
    # ------------------------------------------------------------------
    program = empty_reservoir_alarm_program(samples=3)
    case = program.compile()
    print("== Scenario DSL ==")
    print(f"program {program.name!r}: {program.samples} cycles, "
          f"{len(program.setup)} setup + {program.stimulus.burst} measured + "
          f"{len(program.teardown)} teardown steps per cycle")
    print(f"compiles to {len(case.stimuli)} stimuli for {case.requirement.requirement_id}; "
          f"first cycle:")
    for stimulus in case.stimuli[: program.stimuli_per_cycle]:
        print(f"    {stimulus.at_us / 1000:8.1f} ms  {stimulus.variable}")
    print()

    # ------------------------------------------------------------------
    # 2. Seeded sampling from the scenario space
    # ------------------------------------------------------------------
    sampler = ScenarioSampler(gpca_scenario_space(), seed=0)
    print("== Generated programs (seed 0) ==")
    for _ in range(3):
        generated = sampler.sample()
        print(f"    {generated.name}: {generated.requirement.requirement_id}, "
              f"{generated.samples} cycles, spacing >= {generated.spacing.min_us / 1000:.0f} ms, "
              f"{len(generated.setup)} setup step(s), burst {generated.stimulus.burst}")
    print()

    # ------------------------------------------------------------------
    # 3. Coverage-guided exploration against scheme 1
    # ------------------------------------------------------------------
    artifacts = process_cache().artifacts_for_model("fig2")

    def factory():
        return build_scheme_system(1, seed=11, artifacts=artifacts)

    explorer = CoverageGuidedExplorer(
        gpca_scenario_space(), factory, artifacts.code_model, seed=0
    )
    report = explorer.explore(episodes=24)
    print("== Coverage-guided exploration ==")
    print(report.summary())


if __name__ == "__main__":
    main()
