#!/usr/bin/env python3
"""Bring your own model: timing-testing a user-defined statechart.

This example shows the library being used outside the GPCA case study: a small
railway level-crossing controller is modelled from scratch, verified, lowered
to CODE(M), integrated on the simulated platform with a custom four-variable
interface, and R/M-tested against its own timing requirement ("the barrier
motor shall start lowering within 150 ms of train detection").

It demonstrates every extension point a downstream user needs:

* building a statechart with the fluent builder;
* declaring a four-variable interface and device bindings;
* wiring a custom :class:`PlatformBundle` (devices, environment actions);
* reusing the implementation schemes and the R/M testing machinery unchanged.

Run with:  python examples/custom_model_testing.py
"""

from __future__ import annotations

from repro.codegen import generate_code
from repro.core import (
    EventSpec,
    MTestAnalyzer,
    RTestCase,
    RTestRunner,
    Stimulus,
    TimingRequirement,
    TraceRecorder,
    render_layered_summary,
)
from repro.core.four_variables import FourVariableInterface
from repro.integration import (
    EventInputBinding,
    InputInterfacing,
    OutputBinding,
    OutputInterfacing,
    PlatformBundle,
    SingleThreadedConfig,
    SingleThreadedSystem,
)
from repro.model import StatechartBuilder, before
from repro.model.verification import BoundedResponseChecker
from repro.platform import RandomSource, Simulator
from repro.platform.devices.device import EventInputDevice, OutputDevice
from repro.platform.kernel.random import uniform
from repro.platform.kernel.time import ms


def build_crossing_chart():
    """A level-crossing controller: detect train -> lower barrier -> raise."""
    return (
        StatechartBuilder("level_crossing")
        .input_events("i-TrainDetected", "i-TrainPassed")
        .output_variable("o-BarrierMotor", initial=0)
        .output_variable("o-WarningLights", initial=0)
        .state("Open", initial=True)
        .state("Closing")
        .state("Closed")
        .transition(
            "t_detect", "Open", "Closing", event="i-TrainDetected",
            assign={"o-WarningLights": 1},
        )
        .transition(
            "t_lower", "Closing", "Closed", temporal=before(150),
            assign={"o-BarrierMotor": 1},
        )
        .transition(
            "t_raise", "Closed", "Open", event="i-TrainPassed",
            assign={"o-BarrierMotor": 0, "o-WarningLights": 0},
        )
        .build()
    )


def barrier_requirement() -> TimingRequirement:
    return TimingRequirement(
        requirement_id="XING-1",
        description="The barrier shall start lowering within 150 ms of train detection.",
        stimulus=EventSpec.becomes("m-TrainDetected", True),
        response=EventSpec.becomes_positive("c-BarrierMotor"),
        deadline_us=ms(150),
        min_stimulus_separation_us=ms(2000),
        model_trigger_event="i-TrainDetected",
        model_response_variable="o-BarrierMotor",
        model_response_value=1,
        model_trigger_state="Open",
    )


def build_crossing_platform(seed: int, artifacts) -> PlatformBundle:
    """A minimal custom platform: a track sensor, a barrier motor, a lamp."""
    simulator = Simulator()
    recorder = TraceRecorder(lambda: simulator.now)
    randomness = RandomSource(seed)

    track_sensor = EventInputDevice(
        "track_sensor", "m-TrainDetected", simulator, recorder,
        sampling_period_us=ms(5), conversion_latency=uniform(300, 100),
        rng=randomness.stream("track_sensor"),
    )
    passed_sensor = EventInputDevice(
        "passed_sensor", "m-TrainPassed", simulator, recorder,
        sampling_period_us=ms(5), conversion_latency=uniform(300, 100),
        rng=randomness.stream("passed_sensor"),
    )
    barrier_motor = OutputDevice(
        "barrier_motor", "c-BarrierMotor", simulator, recorder,
        actuation_latency=uniform(ms(5), ms(2)), rng=randomness.stream("barrier"),
    )
    warning_lights = OutputDevice(
        "warning_lights", "c-WarningLights", simulator, recorder,
        actuation_latency=uniform(ms(1), 300), rng=randomness.stream("lights"),
    )

    interface = FourVariableInterface()
    interface.monitored("m-TrainDetected")
    interface.monitored("m-TrainPassed")
    interface.input("i-TrainDetected")
    interface.input("i-TrainPassed")
    interface.output("o-BarrierMotor", var_type="int")
    interface.output("o-WarningLights", var_type="int")
    interface.controlled("c-BarrierMotor", var_type="int")
    interface.controlled("c-WarningLights", var_type="int")
    interface.link_input("m-TrainDetected", "i-TrainDetected")
    interface.link_input("m-TrainPassed", "i-TrainPassed")
    interface.link_output("o-BarrierMotor", "c-BarrierMotor")
    interface.link_output("o-WarningLights", "c-WarningLights")

    input_interfacing = InputInterfacing(
        [
            EventInputBinding(track_sensor, "i-TrainDetected"),
            EventInputBinding(passed_sensor, "i-TrainPassed"),
        ]
    )
    output_interfacing = OutputInterfacing(
        [
            OutputBinding("o-BarrierMotor", barrier_motor),
            OutputBinding("o-WarningLights", warning_lights),
        ]
    )

    # Reuse the pump hardware container only for its start() plumbing is not
    # possible here (different devices), so provide a tiny stand-in with the
    # same duck-typed surface the integration layer needs.
    class CrossingHardware:
        def __init__(self):
            self.input_devices = [track_sensor, passed_sensor]
            self.output_devices = [barrier_motor, warning_lights]

        def start(self):
            for device in self.input_devices:
                device.start()

    class CrossingEnvironment:
        """Schedules train arrivals/passages on the simulator."""

        def __init__(self):
            self.simulator = simulator

        def schedule_train(self, at_us: int) -> None:
            self.simulator.schedule_at(at_us, lambda: track_sensor.trigger(True))

        def schedule_passage(self, at_us: int) -> None:
            self.simulator.schedule_at(at_us, lambda: passed_sensor.trigger(True))

    environment = CrossingEnvironment()
    return PlatformBundle(
        simulator=simulator,
        recorder=recorder,
        hardware=CrossingHardware(),
        environment=environment,
        interface=interface,
        input_interfacing=input_interfacing,
        output_interfacing=output_interfacing,
        stimulus_actions={
            "m-TrainDetected": environment.schedule_train,
            "m-TrainPassed": environment.schedule_passage,
        },
    )


def main() -> None:
    chart = build_crossing_chart()
    requirement = barrier_requirement()

    verification = BoundedResponseChecker(chart).check(requirement.to_model_requirement())
    print("model verification:", verification.summary())

    artifacts = generate_code(chart)
    print("code generation:", artifacts.summary())

    def factory():
        bundle = build_crossing_platform(seed=3, artifacts=artifacts)
        return SingleThreadedSystem(bundle, artifacts, SingleThreadedConfig(period_us=ms(20)))

    # Each sample is one train: detection (measured) followed by the train
    # passing (setup for the next sample, re-opening the crossing).
    stimuli = []
    for index in range(6):
        base = ms(100) + index * ms(3000)
        stimuli.append(Stimulus(base, "m-TrainDetected"))
        stimuli.append(Stimulus(base + ms(1500), "m-TrainPassed"))
    test_case = RTestCase(
        name="trains", requirement=requirement, stimuli=tuple(stimuli),
        description="six trains, barrier-lowering latency measured per train",
    )
    r_report = RTestRunner(factory).run(test_case)
    m_report = None
    if not r_report.passed:
        analyzer = MTestAnalyzer(factory().interface, requirement)
        m_report = analyzer.analyze_violations(r_report)
    print(render_layered_summary(r_report, m_report))


if __name__ == "__main__":
    main()
