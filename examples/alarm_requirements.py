#!/usr/bin/env python3
"""Alarm scenarios: timing-testing the empty-reservoir and alarm-clear requirements.

The GPCA safety requirements cover more than the bolus start.  This example
exercises three further timing requirements on implementation scheme 2:

* REQ2 — the buzzer must sound within 250 ms of the reservoir emptying;
* REQ3 — the pump motor must stop within 250 ms of the reservoir emptying;
* REQ4 — the buzzer must be silenced within 300 ms of the caregiver clearing
  the alarm.

Each scenario requires the pump to be driven into the right state first
(request a bolus, let the reservoir empty mid-infusion); the scenario builders
in ``repro.gpca.scenarios`` handle that setup.

Run with:  python examples/alarm_requirements.py
"""

from __future__ import annotations

from repro.core import MTestAnalyzer, RTestRunner, assess_sufficiency, render_r_report
from repro.gpca import (
    alarm_clear_test_case,
    build_pump_interface,
    empty_reservoir_alarm_test_case,
    empty_reservoir_stop_test_case,
    scheme_factory,
)


def main() -> None:
    interface = build_pump_interface()
    scenarios = [
        empty_reservoir_alarm_test_case(samples=5),
        empty_reservoir_stop_test_case(samples=5),
        alarm_clear_test_case(samples=5),
    ]

    runner = RTestRunner(scheme_factory(2, seed=5))
    for test_case in scenarios:
        report = runner.run(test_case)
        print(render_r_report(report))
        sufficiency = assess_sufficiency(report)
        print(
            f"  sample sufficiency: {sufficiency.samples} samples, "
            f"violation-rate interval [{sufficiency.interval_low:.2f}, "
            f"{sufficiency.interval_high:.2f}] at {sufficiency.confidence:.0%} confidence"
        )
        if not report.passed:
            analyzer = MTestAnalyzer(interface, test_case.requirement)
            m_report = analyzer.analyze_violations(report)
            print("  " + m_report.summary())
        print()


if __name__ == "__main__":
    main()
