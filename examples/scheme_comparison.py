#!/usr/bin/env python3
"""Scheme comparison: regenerate the paper's Table I.

Runs the bolus-request scenario of REQ1 (ten samples) against all three
implementation schemes, performs R-testing and M-testing on each, and prints
the resulting Table I together with the per-scheme diagnosis.

Run with:  python examples/scheme_comparison.py
"""

from __future__ import annotations

from repro.analysis import SchemeResult, TableOne
from repro.core import MTestAnalyzer, RTestRunner
from repro.gpca import (
    ALL_SCHEMES,
    bolus_request_test_case,
    build_pump_interface,
    req1_bolus_start,
    scheme_factory,
    scheme_name,
)


def main() -> None:
    requirement = req1_bolus_start()
    test_case = bolus_request_test_case(samples=10, seed=7)
    interface = build_pump_interface()
    table = TableOne()

    for scheme in ALL_SCHEMES:
        print(f"running {scheme_name(scheme)} ...")
        r_report = RTestRunner(scheme_factory(scheme, seed=scheme * 11)).run(test_case)
        m_report = MTestAnalyzer(interface, requirement).analyze(
            r_report.trace, sut_name=r_report.sut_name
        )
        table.add(SchemeResult(scheme, scheme_name(scheme), r_report, m_report))

    print()
    print(table.render())
    print()
    print("Per-scheme summary rows:")
    for row in table.summary_rows():
        print("  ", row)


if __name__ == "__main__":
    main()
