#!/usr/bin/env python3
"""Campaign sweep: a scheme × polling-period grid in one parallel campaign.

Builds a custom :class:`CampaignSpec` that crosses the single-threaded scheme
at several polling periods with the multi-threaded scheme as a control, runs
the whole grid through the campaign engine (sharded across worker processes
when more than one CPU is available), and prints the per-run summary plus the
violation-rate sweep along the period axis.

The same grid is reproducible bit-for-bit at any worker count — try changing
``WORKERS`` and diffing the JSON.

Run with:  python examples/campaign_sweep.py
"""

from __future__ import annotations

from repro.analysis import render_sweep
from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CasePoint,
    SchemePoint,
    default_worker_count,
)
from repro.platform.kernel.time import ms

#: Polling periods to sweep on the single-threaded scheme (paper value: 25 ms).
PERIODS_MS = (10, 25, 50)
# Schedulable CPUs (cgroup-aware), not os.cpu_count(): a 1-CPU container
# should run serially instead of over-sharding.
WORKERS = min(4, default_worker_count())


def build_spec() -> CampaignSpec:
    scheme_points = tuple(
        SchemePoint(1, period_us=ms(period_ms)) for period_ms in PERIODS_MS
    ) + (SchemePoint(2),)  # scheme 2 as the conforming control
    return CampaignSpec(
        name="example-period-sweep",
        schemes=scheme_points,
        cases=(CasePoint("bolus-request", samples=5),),
        base_seed=42,
        m_test="violations",
    )


def main() -> None:
    spec = build_spec()
    print(f"running {spec.size} campaign runs on {WORKERS} worker(s) ...")
    runner = CampaignRunner(spec, workers=WORKERS)
    result = runner.run()

    print()
    print(result.render_summary())
    print(f"wall clock: {result.wall_seconds:.2f} s")

    print()
    print(render_sweep(result.sweep_points("period_ms"), "period (ms)"))

    # Violating runs carried M-testing; show where the time went.
    for record in result.records:
        m_report = record.m_report()
        if m_report is not None and m_report.segments:
            print(f"\n{record.spec.label}: {m_report.summary()}")


if __name__ == "__main__":
    main()
