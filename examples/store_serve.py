#!/usr/bin/env python3
"""Persistent store end to end: run, resume, diff, serve, query.

Walks the full lifecycle of the persistence layer in a temporary directory:

1. run the Table I campaign cold with a :class:`RunStore` attached — every
   record and a campaign snapshot land in SQLite;
2. resume the identical grid — zero runs execute, the aggregate is
   byte-identical, and the wall-clock collapses (the same effect as
   ``repro campaign --store runs.db --resume`` on the command line);
3. diff the snapshot against itself (``repro store diff``) — clean;
4. start the ``repro serve`` HTTP API on an ephemeral port and query
   ``/healthz``, ``/table1`` and the ETag-conditional path like a dashboard
   would.

Run with:  python examples/store_serve.py
"""

from __future__ import annotations

import json
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

from repro.campaign import CampaignRunner, table_one_spec
from repro.store import RunStore, StoreServer, diff_snapshots


def main() -> None:
    spec = table_one_spec(samples=4)
    with tempfile.TemporaryDirectory() as scratch:
        store = RunStore(Path(scratch) / "runs.db")

        print(f"cold: executing the {spec.name!r} grid ({spec.size} runs) ...")
        started = time.perf_counter()
        cold_runner = CampaignRunner(spec, store=store)
        cold = cold_runner.run()
        cold_s = time.perf_counter() - started
        print(f"  {cold_runner.executed_count} runs executed in {cold_s:.2f} s; "
              f"snapshot {cold_runner.campaign_id}")

        print("warm: resuming the identical grid from the store ...")
        started = time.perf_counter()
        warm_runner = CampaignRunner(spec, store=store, resume=True)
        warm = warm_runner.run()
        warm_s = time.perf_counter() - started
        print(f"  {warm_runner.executed_count} runs executed, "
              f"{warm_runner.reused_count} reused in {warm_s:.4f} s "
              f"({cold_s / warm_s:.0f}x)")
        print(f"  aggregates byte-identical: {warm.to_json() == cold.to_json()}")

        diff = diff_snapshots(store, "latest", "latest")
        print(f"diff latest vs latest: clean={diff.clean}")

        with StoreServer(store) as server:
            print(f"serving on {server.url}")
            with urllib.request.urlopen(server.url + "/healthz") as response:
                print(f"  GET /healthz -> {json.loads(response.read())}")
            with urllib.request.urlopen(server.url + "/table1") as response:
                payload = json.loads(response.read())
                etag = response.headers["ETag"]
            for row in payload["schemes"]:
                print(f"  GET /table1 -> {row['label']}: "
                      f"{'PASS' if row['passed'] else 'FAIL'} "
                      f"({row['violations']} violations)")
            conditional = urllib.request.Request(
                server.url + "/table1", headers={"If-None-Match": etag}
            )
            try:
                urllib.request.urlopen(conditional)
                print("  conditional GET unexpectedly returned a body")
            except urllib.error.HTTPError as error:
                print(f"  conditional GET /table1 -> {error.code} (cache hit)")
        store.close()


if __name__ == "__main__":
    main()
