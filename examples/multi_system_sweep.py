#!/usr/bin/env python3
"""Multi-system sweep: one campaign grid spanning all three system packs.

The system-pack registry makes the system under test just another campaign
axis.  This example builds a single :class:`CampaignSpec` whose case points
come from three different packs — the GPCA infusion pump, the rate-adaptive
cardiac pacemaker and the cruise/AEB controller — crossed with implementation
schemes 1 and 2, and runs the whole grid through the parallel campaign
engine.  Each run lowers its own pack's statechart through codegen and
verifies its own timing requirement; the aggregate stays bit-for-bit
reproducible at any worker count.

Run with:  python examples/multi_system_sweep.py
"""

from __future__ import annotations

from repro.campaign import (
    CampaignRunner,
    CampaignSpec,
    CasePoint,
    SchemePoint,
    default_worker_count,
)
from repro.systems import get_pack, iter_packs

SAMPLES = 4
WORKERS = min(4, default_worker_count())

#: One representative scenario per pack (every pack ships more; see
#: ``repro systems`` on the command line for the full inventory).
SCENARIOS = (
    ("gpca", "bolus-request"),
    ("pacemaker", "sense-inhibit"),
    ("cruise", "engage"),
)


def build_spec() -> CampaignSpec:
    return CampaignSpec(
        name="example-multi-system",
        schemes=(SchemePoint(1), SchemePoint(2)),
        cases=tuple(
            CasePoint(case, samples=SAMPLES, system=system)
            for system, case in SCENARIOS
        ),
        base_seed=7,
        m_test="violations",
    )


def main() -> None:
    print("registered system packs:")
    for pack in iter_packs():
        print(
            f"  {pack.system_id:<10} {pack.title} "
            f"({len(pack.case_builders)} scenarios, model {pack.default_model})"
        )
    print()

    spec = build_spec()
    print(f"running {spec.size} campaign runs on {WORKERS} worker(s) ...")
    result = CampaignRunner(spec, workers=WORKERS).run()

    print()
    print(result.render_summary())
    print(f"wall clock: {result.wall_seconds:.2f} s")

    # Group verdicts by system: each pack's requirement speaks for itself.
    print()
    for system in sorted({record.spec.system for record in result.records}):
        pack = get_pack(system)
        records = [r for r in result.records if r.spec.system == system]
        passed = sum(1 for r in records if r.passed)
        print(f"{pack.title}: {passed}/{len(records)} runs conform")
        for record in records:
            requirement = record.spec.test_case().requirement
            verdict = "PASS" if record.passed else "FAIL"
            print(
                f"  [{verdict}] {record.spec.label:<32} "
                f"{requirement.requirement_id}: {requirement.description}"
            )


if __name__ == "__main__":
    main()
