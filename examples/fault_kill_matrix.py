"""A small end-to-end fault-injection / mutation-analysis kill matrix.

Runs a deliberately tiny grid — three platform fault plans and two model
mutants against implementation schemes 1 and 3 on two GPCA scenarios — and
prints the scored kill matrix.  Three things are worth noticing in the
output:

* platform faults are *detected* (and mutants *killed*) only at coordinates
  whose clean baseline passes — scheme 3's baselines fail on their own (that
  is the paper's Table I result), so nothing can be attributed there and the
  cells read ``(base fails)``;
* the queue fault ends up *undetected* in this tiny grid: it is a structural
  no-op on scheme 1 (no queues), and on scheme 3 — where it would bite — the
  failing baseline blocks attribution.  Fault detection needs a conformant
  reference scheme, which is why the default ``repro faults`` matrix runs the
  fault axis on schemes 1 *and* 2;
* dropping the ``t_clear_alarm`` buzzer action is invisible to REQ1's
  bolus-request scenario and only dies to the alarm-clear scenario — the
  kill matrix is exactly the map of *which requirement sees which defect*.

Run with ``PYTHONPATH=src python examples/fault_kill_matrix.py`` (or after
``pip install -e .``).
"""

from __future__ import annotations

from repro.faults import (
    ExecutionInflationFault,
    FaultMatrixSpec,
    FaultPlan,
    QueueFault,
    SensorStuckFault,
    generate_mutants,
    run_kill_matrix,
)
from repro.gpca.model import build_fig2_statechart

# Three fault plans: WCET inflation, a stuck bolus button, lossy IPC.
FAULTS = (
    FaultPlan((ExecutionInflationFault(factor=3.0),), name="exec-inflation"),
    FaultPlan((SensorStuckFault(device="bolus_button"),), name="stuck-button"),
    FaultPlan((QueueFault(queue="i_events", drop_probability=0.7),), name="queue-loss"),
)

# Two mutants picked from the generated set: one on the REQ1 path, one on REQ4's.
WANTED_MUTANTS = ("drop:t_start_infusion:0:o-MotorState", "drop:t_clear_alarm:0:o-BuzzerState")


def main() -> None:
    mutants = tuple(
        mutant
        for mutant in generate_mutants(build_fig2_statechart())
        if mutant.mutant_id in WANTED_MUTANTS
    )
    spec = FaultMatrixSpec(
        name="example-kill-matrix",
        fault_plans=FAULTS,
        mutants=mutants,
        fault_schemes=(1, 3),
        mutant_schemes=(1, 3),
        cases=("bolus-request", "alarm-clear"),
        samples=2,
    )
    print(f"kill matrix: {spec.size} runs ({len(FAULTS)} faults x {len(mutants)} mutants "
          f"x schemes 1/3 x {len(spec.cases)} scenarios)\n")
    matrix = run_kill_matrix(spec)
    print(matrix.render())


if __name__ == "__main__":
    main()
