#!/usr/bin/env python3
"""Quickstart: the complete layered timing-testing workflow in one script.

Walks the whole model-based implementation flow of the paper:

1. build the infusion-pump statechart (Fig. 2) and verify REQ1 on the model;
2. generate CODE(M) from it;
3. integrate the code with the simulated platform using implementation
   scheme 1 (the single-threaded 25 ms loop);
4. R-test the implemented system against REQ1 (m/c events only);
5. because R-testing fails, M-test the violating samples and print the
   delay-segment diagnosis.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.codegen import generate_code
from repro.core import MTestAnalyzer, RTestRunner, render_layered_summary, render_m_report, render_r_report
from repro.gpca import (
    bolus_request_test_case,
    build_fig2_statechart,
    build_pump_interface,
    req1_bolus_start,
    scheme_factory,
)
from repro.model.verification import BoundedResponseChecker


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Model and model-level verification (Fig. 1-(1))
    # ------------------------------------------------------------------
    chart = build_fig2_statechart()
    requirement = req1_bolus_start()
    verification = BoundedResponseChecker(chart).check(requirement.to_model_requirement())
    print("== Model-level verification ==")
    print(verification.summary())
    print()

    # ------------------------------------------------------------------
    # 2. Code generation (Fig. 1-(2))
    # ------------------------------------------------------------------
    artifacts = generate_code(chart)
    print("== Code generation ==")
    print(artifacts.summary())
    print("first lines of the generated C translation unit:")
    for line in artifacts.c_source.splitlines()[:6]:
        print("   ", line)
    print()

    # ------------------------------------------------------------------
    # 3-4. Platform integration + R-testing (Fig. 1-(3))
    # ------------------------------------------------------------------
    test_case = bolus_request_test_case(samples=10, seed=7)
    runner = RTestRunner(scheme_factory(1, seed=11))
    r_report = runner.run(test_case)
    print("== R-testing (m/c events only) ==")
    print(render_r_report(r_report))
    print()

    # ------------------------------------------------------------------
    # 5. M-testing of the violating samples
    # ------------------------------------------------------------------
    m_report = None
    if not r_report.passed:
        analyzer = MTestAnalyzer(build_pump_interface(), requirement)
        m_report = analyzer.analyze_violations(r_report)
        print("== M-testing (delay segments of the violating samples) ==")
        print(render_m_report(m_report))
        print()

    print("== Layered summary ==")
    print(render_layered_summary(r_report, m_report))


if __name__ == "__main__":
    main()
