"""Persistent result store, incremental campaigns and the serving layer.

PR 1–4 built execution power — the parallel campaign runner, the trace query
engine, coverage-guided scenario generation, fault/mutation kill matrices —
but every result was ephemeral.  This package gives the repo *memory*:

* :mod:`repro.store.keys` — deterministic, content-addressed run coordinates
  (model fingerprint + full configuration + seeds, **not** grid position);
* :mod:`repro.store.store` — :class:`RunStore`, the SQLite-backed store of
  run records and campaign snapshots (stdlib-only, thread-safe);
* :mod:`repro.store.diff` — :class:`SnapshotDiff`, regression analysis
  between any two stored campaigns (verdict flips, new violations,
  latency/segment-delay drift);
* :mod:`repro.store.server` — :class:`StoreServer`, the ``repro serve``
  ThreadingHTTPServer JSON API with ETag caching.

Because run keys are content-addressed and campaign aggregation is already
byte-reproducible, a store-backed :class:`repro.campaign.CampaignRunner`
with ``resume=True`` executes only the grid points the store has never seen
and reassembles a ``CampaignResult`` whose ``to_json()`` is byte-identical
to a cold execution — re-running a fully stored campaign performs **zero**
run executions (``benchmarks/bench_store.py`` records the speedup).
"""

from .diff import DRIFT_THRESHOLD_US, RunDelta, SnapshotDiff, diff_snapshots, semantic_key
from .keys import campaign_key, run_coordinate, run_key
from .server import ENDPOINTS, StoreHTTPServer, StoreRequestHandler, StoreServer
from .store import STORE_SCHEMA_VERSION, RunStore, StoreError

__all__ = [
    "DRIFT_THRESHOLD_US",
    "ENDPOINTS",
    "RunDelta",
    "RunStore",
    "STORE_SCHEMA_VERSION",
    "SnapshotDiff",
    "StoreError",
    "StoreHTTPServer",
    "StoreRequestHandler",
    "StoreServer",
    "campaign_key",
    "diff_snapshots",
    "run_coordinate",
    "run_key",
    "semantic_key",
]
