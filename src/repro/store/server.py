"""``repro serve`` — a JSON query API over a persistent run store.

A stdlib-only ``ThreadingHTTPServer`` that turns a :class:`RunStore` file
into cheap-to-poll endpoints::

    GET /               endpoint index
    GET /healthz        liveness + store counts
    GET /runs           stored run summaries (?scheme=&case=&model=&limit=)
    GET /campaigns      stored campaign snapshots
    GET /campaigns/<id> one snapshot's full canonical payload
    GET /table1         the paper's Table I from a snapshot (?campaign=&case=)
    GET /diff           regression diff of two snapshots (?old=&new=&name=)

Every response carries an ``ETag`` derived from the store's state token and
the request, and ``If-None-Match`` requests answer ``304 Not Modified``
without recomputing — many dashboards can poll the same endpoints for the
price of one computation per store change.  Responses are additionally
memoised per (request, state token), so concurrent cold requests compute a
payload once and share it.
"""

from __future__ import annotations

import hashlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from .diff import diff_snapshots
from .store import RunStore, StoreError

#: Routes listed by the index endpoint.
ENDPOINTS = {
    "/healthz": "liveness and store counts",
    "/runs": "stored run summaries (?scheme=&case=&model=&limit=)",
    "/campaigns": "stored campaign snapshots",
    "/campaigns/<id>": "one snapshot's full canonical payload",
    "/table1": "Table I from a snapshot (?campaign=<id|latest|prev>&case=)",
    "/diff": "regression diff between snapshots (?old=&new=&name=)",
}


class _BadRequest(Exception):
    """A malformed query (rendered as HTTP 400)."""


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes GET requests into the attached :class:`RunStore`."""

    server_version = "repro-store/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover - manual serving
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        parsed = urlparse(self.path)
        query = {name: values[-1] for name, values in parse_qs(parsed.query).items()}
        status, body, etag = self.server.respond(parsed.path, query)
        if status == 200 and self.headers.get("If-None-Match") == etag:
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("Content-Length", "0")
            self.end_headers()
            return
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("ETag", etag)
        self.end_headers()
        self.wfile.write(body)


class StoreHTTPServer(ThreadingHTTPServer):
    """The threading HTTP server bound to one run store."""

    daemon_threads = True

    #: Hard bound on cached responses; query strings are client-controlled,
    #: so the cache must not grow with the number of distinct URLs seen.
    MAX_CACHED_RESPONSES = 256

    def __init__(self, store: RunStore, address: Tuple[str, int], *, verbose: bool = False) -> None:
        super().__init__(address, StoreRequestHandler)
        self.store = store
        self.verbose = verbose
        self._cache_lock = threading.Lock()
        #: normalized (path, sorted query) -> (state token, body, etag).
        self._response_cache: Dict[str, Tuple[str, bytes, str]] = {}

    # ------------------------------------------------------------------
    # Response construction (cached per store state)
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(payload: Dict[str, Any]) -> Tuple[bytes, str]:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        etag = '"' + hashlib.sha256(body).hexdigest()[:32] + '"'
        return body, etag

    def respond(self, path: str, query: Dict[str, str]) -> Tuple[int, bytes, str]:
        """The (status, encoded body, ETag) for one request, memoised.

        Successful responses are cached under the normalized request and the
        store's current state token; a cache hit returns the already-encoded
        bytes.  Error responses are computed fresh (they are cheap and should
        not occupy cache slots).
        """
        token = self.store.state_token()
        cache_key = path + "?" + json.dumps(query, sort_keys=True)
        with self._cache_lock:
            cached = self._response_cache.get(cache_key)
            if cached is not None and cached[0] == token:
                return 200, cached[1], cached[2]
        try:
            payload = self._route(path, query)
        except _BadRequest as error:
            body, etag = self._encode({"error": str(error)})
            return 400, body, etag
        except (StoreError, LookupError) as error:
            body, etag = self._encode({"error": str(error)})
            return 404, body, etag
        body, etag = self._encode(payload)
        with self._cache_lock:
            if len(self._response_cache) >= self.MAX_CACHED_RESPONSES:
                stale = [
                    key for key, entry in self._response_cache.items() if entry[0] != token
                ]
                for key in stale:
                    del self._response_cache[key]
                while len(self._response_cache) >= self.MAX_CACHED_RESPONSES:
                    # Still full of current-token entries: drop the oldest.
                    self._response_cache.pop(next(iter(self._response_cache)))
            self._response_cache[cache_key] = (token, body, etag)
        return 200, body, etag

    # ------------------------------------------------------------------
    def _route(self, path: str, query: Dict[str, str]) -> Dict[str, Any]:
        if path in ("", "/"):
            return {"service": "repro store", "endpoints": ENDPOINTS}
        if path == "/healthz":
            return {"status": "ok", "counts": self.store.counts()}
        if path == "/runs":
            return self._runs(query)
        if path == "/campaigns":
            return {"campaigns": self.store.campaign_rows(name=query.get("name"))}
        if path.startswith("/campaigns/"):
            campaign_id = path[len("/campaigns/"):]
            result = self.store.load_campaign(campaign_id)
            return {"campaign_id": campaign_id, "result": result.to_dict()}
        if path == "/table1":
            return self._table1(query)
        if path == "/diff":
            return self._diff(query)
        raise StoreError(f"unknown endpoint {path!r} (see / for the index)")

    def _runs(self, query: Dict[str, str]) -> Dict[str, Any]:
        scheme: Optional[int] = None
        limit: Optional[int] = None
        try:
            if "scheme" in query:
                scheme = int(query["scheme"])
            if "limit" in query:
                limit = int(query["limit"])
        except ValueError as error:
            raise _BadRequest(f"bad integer parameter: {error}") from None
        rows = self.store.run_rows(
            scheme=scheme, case=query.get("case"), model=query.get("model"), limit=limit
        )
        return {"count": len(rows), "runs": rows}

    def _table1(self, query: Dict[str, str]) -> Dict[str, Any]:
        campaign_id = self.store.resolve_campaign_id(
            query.get("campaign", "latest"), name=query.get("name")
        )
        result = self.store.load_campaign(campaign_id)
        case = query.get("case", "bolus-request")
        table = result.table_one(case)
        return {
            "campaign_id": campaign_id,
            "case": case,
            "schemes": table.summary_rows(),
            "rows": table.rows(),
            "render": table.render(),
        }

    def _diff(self, query: Dict[str, str]) -> Dict[str, Any]:
        if "old" not in query or "new" not in query:
            raise _BadRequest("diff needs ?old=<id|latest|prev>&new=<id|latest|prev>")
        diff = diff_snapshots(self.store, query["old"], query["new"], name=query.get("name"))
        payload = diff.to_dict()
        payload["render"] = diff.render()
        return payload


class StoreServer:
    """Lifecycle wrapper: serve a store file on a background thread.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port` after
    construction) — the test suite and the examples use that to avoid
    clashing with anything else on the machine.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.store = store
        self._server = StoreHTTPServer(store, (host, port), verbose=verbose)
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StoreServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:  # pragma: no cover - interactive serving
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
