"""``repro serve`` — a JSON query API over a persistent run store.

A stdlib-only ``ThreadingHTTPServer`` that turns a :class:`RunStore` file
into cheap-to-poll endpoints::

    GET /                endpoint index
    GET /healthz         liveness + store counts
    GET /runs            stored run summaries (?scheme=&case=&model=&system=
                         &limit=&offset=&order=)
    GET /campaigns       stored campaign snapshots
    GET /campaigns/<id>  one snapshot's full canonical payload
    GET /table1          the paper's Table I from a snapshot (?campaign=&case=)
    GET /diff            regression diff of two snapshots (?old=&new=&name=)
    GET /metrics         process telemetry (Prometheus text; ?format=json)
    GET /progress/<name> live progress of a store-backed campaign

Every response carries an ``ETag`` derived from the store's state token and
the request, and ``If-None-Match`` requests answer ``304 Not Modified``
without recomputing — many dashboards can poll the same endpoints for the
price of one computation per store change.  Responses are additionally
memoised per (request, state token), so concurrent cold requests compute a
payload once and share it.  ``/metrics`` and ``/progress`` deliberately
bypass that memo cache: both change without the store generation moving (a
scrape bumps its own counters; progress writes are generation-neutral by
design), so caching them against the token would serve stale telemetry.

Request handling is itself telemetry: every response lands in the
process-local registry (latency histogram per endpoint, status counters,
304-vs-200 split) — which is exactly what ``/metrics`` then serves.
Structured request logging (one JSON line per request: method, path, status,
duration, cache outcome) replaces the stock ``BaseHTTPRequestHandler``
stderr noise and is switchable with ``repro serve --quiet``.
"""

from __future__ import annotations

import hashlib
import json
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, TextIO, Tuple
from urllib.parse import parse_qs, urlparse

from ..obs import REGISTRY
from .diff import diff_snapshots
from .store import RunStore, StoreError

#: Routes listed by the index endpoint.
ENDPOINTS = {
    "/healthz": "liveness and store counts",
    "/runs": "stored run summaries (?scheme=&case=&model=&system=&limit=&offset=&order=)",
    "/campaigns": "stored campaign snapshots",
    "/campaigns/<id>": "one snapshot's full canonical payload",
    "/table1": "Table I from a snapshot (?campaign=<id|latest|prev>&case=)",
    "/diff": "regression diff between snapshots (?old=&new=&name=)",
    "/metrics": "process telemetry (Prometheus text exposition; ?format=json)",
    "/progress/<name>": "live progress of a store-backed campaign",
}

_JSON_TYPE = "application/json; charset=utf-8"
_PROMETHEUS_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class _BadRequest(Exception):
    """A malformed query (rendered as HTTP 400)."""


def _endpoint_label(path: str) -> str:
    """The metrics label for a request path: dynamic segments collapsed.

    Label values must stay low-cardinality — one series per *route*, never
    one per campaign id or snapshot hash.
    """
    if path.startswith("/campaigns/"):
        return "/campaigns/<id>"
    if path.startswith("/progress/"):
        return "/progress/<name>"
    if path in ("", "/"):
        return "/"
    return path


class StoreRequestHandler(BaseHTTPRequestHandler):
    """Routes GET requests into the attached :class:`RunStore`."""

    server_version = "repro-store/1"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:  # noqa: A002
        # The stock handler logs an unstructured line per request to stderr;
        # the structured JSON log in do_GET replaces it entirely.
        return None

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server naming
        started = time.perf_counter()
        parsed = urlparse(self.path)
        query = {name: values[-1] for name, values in parse_qs(parsed.query).items()}
        status, body, etag, content_type = self.server.respond(parsed.path, query)
        not_modified = status == 200 and self.headers.get("If-None-Match") == etag
        if not_modified:
            sent_status = 304
            self.send_response(304)
            self.send_header("ETag", etag)
            self.send_header("Content-Length", "0")
            self.end_headers()
        else:
            sent_status = status
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.send_header("ETag", etag)
            self.end_headers()
            self.wfile.write(body)
        duration = time.perf_counter() - started
        endpoint = _endpoint_label(parsed.path)
        REGISTRY.histogram(
            "http_request_seconds",
            labels={"endpoint": endpoint},
            help="serve request latency by endpoint",
        ).observe(duration)
        REGISTRY.counter(
            "http_responses_total",
            labels={"status": str(sent_status)},
            help="serve responses by status code",
        ).inc()
        self.server.log_request_line(
            method="GET",
            path=self.path,
            status=sent_status,
            duration_s=duration,
            cached=not_modified,
        )


class StoreHTTPServer(ThreadingHTTPServer):
    """The threading HTTP server bound to one run store."""

    daemon_threads = True

    #: Hard bound on cached responses; query strings are client-controlled,
    #: so the cache must not grow with the number of distinct URLs seen.
    MAX_CACHED_RESPONSES = 256

    def __init__(
        self,
        store: RunStore,
        address: Tuple[str, int],
        *,
        verbose: bool = False,
        log_stream: Optional[TextIO] = None,
    ) -> None:
        super().__init__(address, StoreRequestHandler)
        self.store = store
        #: When true, every request emits one structured JSON log line.
        self.verbose = verbose
        self._log_stream = log_stream
        self._log_lock = threading.Lock()
        self._cache_lock = threading.Lock()
        #: normalized (path, sorted query) -> (state token, body, etag).
        self._response_cache: Dict[str, Tuple[str, bytes, str]] = {}

    # ------------------------------------------------------------------
    # Structured request logging
    # ------------------------------------------------------------------
    def log_request_line(
        self, *, method: str, path: str, status: int, duration_s: float, cached: bool
    ) -> None:
        """One JSON line per request: who asked what, how it went, how long."""
        if not self.verbose:
            return
        stream = self._log_stream if self._log_stream is not None else sys.stderr
        line = json.dumps(
            {
                "method": method,
                "path": path,
                "status": status,
                "duration_ms": round(duration_s * 1000.0, 3),
                "cache": "304" if cached else "200",
            },
            sort_keys=True,
        )
        with self._log_lock:
            print(line, file=stream, flush=True)

    # ------------------------------------------------------------------
    # Response construction (cached per store state)
    # ------------------------------------------------------------------
    @staticmethod
    def _encode(payload: Dict[str, Any]) -> Tuple[bytes, str]:
        body = (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")
        etag = '"' + hashlib.sha256(body).hexdigest()[:32] + '"'
        return body, etag

    def respond(self, path: str, query: Dict[str, str]) -> Tuple[int, bytes, str, str]:
        """The (status, encoded body, ETag, content type) for one request.

        Successful responses are cached under the normalized request and the
        store's current state token; a cache hit returns the already-encoded
        bytes.  Error responses are computed fresh (they are cheap and should
        not occupy cache slots).  The telemetry endpoints skip the cache —
        their content moves independently of the store generation.
        """
        if path == "/metrics":
            return self._metrics(query)
        if path.startswith("/progress/"):
            return self._progress(path[len("/progress/"):])
        token = self.store.state_token()
        cache_key = path + "?" + json.dumps(query, sort_keys=True)
        with self._cache_lock:
            cached = self._response_cache.get(cache_key)
            if cached is not None and cached[0] == token:
                return 200, cached[1], cached[2], _JSON_TYPE
        try:
            payload = self._route(path, query)
        except _BadRequest as error:
            body, etag = self._encode({"error": str(error)})
            return 400, body, etag, _JSON_TYPE
        except (StoreError, LookupError) as error:
            body, etag = self._encode({"error": str(error)})
            return 404, body, etag, _JSON_TYPE
        body, etag = self._encode(payload)
        with self._cache_lock:
            if len(self._response_cache) >= self.MAX_CACHED_RESPONSES:
                stale = [
                    key for key, entry in self._response_cache.items() if entry[0] != token
                ]
                for key in stale:
                    del self._response_cache[key]
                while len(self._response_cache) >= self.MAX_CACHED_RESPONSES:
                    # Still full of current-token entries: drop the oldest.
                    self._response_cache.pop(next(iter(self._response_cache)))
            self._response_cache[cache_key] = (token, body, etag)
        return 200, body, etag, _JSON_TYPE

    # ------------------------------------------------------------------
    # Telemetry endpoints (never memoised)
    # ------------------------------------------------------------------
    def _metrics(self, query: Dict[str, str]) -> Tuple[int, bytes, str, str]:
        format_name = query.get("format", "prometheus")
        if format_name == "json":
            body, etag = self._encode(REGISTRY.to_dict())
            return 200, body, etag, _JSON_TYPE
        if format_name != "prometheus":
            body, etag = self._encode(
                {"error": f"unknown metrics format {format_name!r} (prometheus|json)"}
            )
            return 400, body, etag, _JSON_TYPE
        body = REGISTRY.render_prometheus().encode("utf-8")
        etag = '"' + hashlib.sha256(body).hexdigest()[:32] + '"'
        return 200, body, etag, _PROMETHEUS_TYPE

    def _progress(self, name: str) -> Tuple[int, bytes, str, str]:
        if not name:
            body, etag = self._encode({"error": "progress needs a campaign name"})
            return 400, body, etag, _JSON_TYPE
        snapshot = self.store.load_progress(name)
        if snapshot is None:
            body, etag = self._encode(
                {"error": f"no progress recorded for campaign {name!r}"}
            )
            return 404, body, etag, _JSON_TYPE
        body, etag = self._encode(snapshot)
        return 200, body, etag, _JSON_TYPE

    # ------------------------------------------------------------------
    def _route(self, path: str, query: Dict[str, str]) -> Dict[str, Any]:
        if path in ("", "/"):
            return {"service": "repro store", "endpoints": ENDPOINTS}
        if path == "/healthz":
            return {"status": "ok", "counts": self.store.counts()}
        if path == "/runs":
            return self._runs(query)
        if path == "/campaigns":
            return {"campaigns": self.store.campaign_rows(name=query.get("name"))}
        if path.startswith("/campaigns/"):
            campaign_id = path[len("/campaigns/"):]
            result = self.store.load_campaign(campaign_id)
            return {"campaign_id": campaign_id, "result": result.to_dict()}
        if path == "/table1":
            return self._table1(query)
        if path == "/diff":
            return self._diff(query)
        raise StoreError(f"unknown endpoint {path!r} (see / for the index)")

    def _runs(self, query: Dict[str, str]) -> Dict[str, Any]:
        scheme: Optional[int] = None
        limit: Optional[int] = None
        offset = 0
        try:
            if "scheme" in query:
                scheme = int(query["scheme"])
            if "limit" in query:
                limit = int(query["limit"])
            if "offset" in query:
                offset = int(query["offset"])
        except ValueError as error:
            raise _BadRequest(f"bad integer parameter: {error}") from None
        if limit is not None and limit < 0:
            raise _BadRequest("limit cannot be negative")
        if offset < 0:
            raise _BadRequest("offset cannot be negative")
        order = query.get("order", "newest")
        filters = {
            "scheme": scheme,
            "case": query.get("case"),
            "model": query.get("model"),
            "system": query.get("system"),
        }
        try:
            rows = self.store.run_rows(limit=limit, offset=offset, order=order, **filters)
        except ValueError as error:
            raise _BadRequest(str(error)) from None
        # ``total`` counts every match (ignoring the page window), so pagers
        # know when to stop; ``count`` is this page's size.
        return {
            "count": len(rows),
            "total": self.store.run_count(**filters),
            "offset": offset,
            "runs": rows,
        }

    def _table1(self, query: Dict[str, str]) -> Dict[str, Any]:
        campaign_id = self.store.resolve_campaign_id(
            query.get("campaign", "latest"), name=query.get("name")
        )
        result = self.store.load_campaign(campaign_id)
        case = query.get("case", "bolus-request")
        table = result.table_one(case)
        return {
            "campaign_id": campaign_id,
            "case": case,
            "schemes": table.summary_rows(),
            "rows": table.rows(),
            "render": table.render(),
        }

    def _diff(self, query: Dict[str, str]) -> Dict[str, Any]:
        if "old" not in query or "new" not in query:
            raise _BadRequest("diff needs ?old=<id|latest|prev>&new=<id|latest|prev>")
        diff = diff_snapshots(self.store, query["old"], query["new"], name=query.get("name"))
        payload = diff.to_dict()
        payload["render"] = diff.render()
        return payload


class StoreServer:
    """Lifecycle wrapper: serve a store file on a background thread.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port` after
    construction) — the test suite and the examples use that to avoid
    clashing with anything else on the machine.
    """

    def __init__(
        self,
        store: RunStore,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        log_stream: Optional[TextIO] = None,
    ) -> None:
        self.store = store
        self._server = StoreHTTPServer(
            store, (host, port), verbose=verbose, log_stream=log_stream
        )
        self._thread: Optional[threading.Thread] = None

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "StoreServer":
        """Serve on a daemon thread; returns self for chaining."""
        self._thread = threading.Thread(target=self._server.serve_forever, daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:  # pragma: no cover - interactive serving
        self._server.serve_forever()

    def shutdown(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "StoreServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
