"""Deterministic, content-addressed coordinates for stored results.

A stored run is keyed by everything that determines its outcome and *nothing*
that does not:

* the structural **fingerprint** of the model it executed (from
  :func:`repro.campaign.cache.model_fingerprint`), so editing a statechart
  silently invalidates every result computed from the old structure;
* the full run configuration — scheme, period/interference overrides,
  scenario (name, samples, and the complete DSL program when one backs the
  run), fault plan, mutant, M-testing policy;
* every seed (``sut_seed``, ``case_seed``).

The grid ``index`` and the derived ``label`` are deliberately **excluded**:
they describe a run's *position* in one particular campaign, not its content,
so the same configuration is shared between campaigns that place it at
different grid positions.

Keys are SHA-256 over a canonical JSON rendering — stable across processes,
interpreter invocations, and platforms.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List

from ..campaign.cache import model_fingerprint
from ..campaign.spec import RunSpec


def _canonical(payload: Any) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def run_coordinate(spec: RunSpec) -> Dict[str, Any]:
    """The index-free, content-addressed coordinate dict of one run spec.

    The system id rides in via ``spec.to_dict()`` for non-default packs only:
    ``RunSpec.to_dict`` omits the default system, so every coordinate (and
    store key) minted before the systems registry existed is reproduced
    byte-identically, while runs of other packs get distinct keys.
    """
    coordinate = spec.to_dict()
    coordinate.pop("index")
    coordinate.pop("label")
    coordinate["model_fingerprint"] = model_fingerprint(spec.model)
    return coordinate


def run_key(spec: RunSpec) -> str:
    """The store key of one run spec (SHA-256 of its canonical coordinate)."""
    return hashlib.sha256(_canonical(run_coordinate(spec)).encode("utf-8")).hexdigest()


def campaign_key(spec_payload: Dict[str, Any], ordered_run_keys: List[str]) -> str:
    """The snapshot id of one stored campaign.

    Content-derived — the campaign spec plus the grid-ordered key list the
    store passes in (record ids, which hash coordinate *and* payload) — so
    re-saving an identical campaign lands on the same row, a re-run whose
    results changed gets its own snapshot, and a snapshot id doubles as a
    cache validator for the serving layer.
    """
    payload = {"campaign": spec_payload, "runs": ordered_run_keys}
    return hashlib.sha256(_canonical(payload).encode("utf-8")).hexdigest()[:24]
