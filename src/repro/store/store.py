"""The SQLite-backed persistent run store.

One :class:`RunStore` file accumulates every result a machine ever computes:

* the ``runs`` table holds one row per distinct ``(coordinate, payload)``
  pair: the *coordinate* key (see :mod:`repro.store.keys`) addresses what
  was executed, the *record id* additionally hashes the result payload.
  Incremental execution looks up the **latest** record at a coordinate
  (re-running the same configuration is a lookup, not a computation), while
  snapshots reference exact record ids — so re-running a grid after a code
  change appends new rows instead of silently rewriting the records an
  older snapshot points at;
* the ``campaigns`` table holds campaign *snapshots*: the campaign spec plus
  the grid-ordered list of record ids, enough to reassemble the exact
  :class:`~repro.campaign.results.CampaignResult` (byte-identical
  ``to_json()``) without re-executing anything.

The store is stdlib-only (``sqlite3``) and thread-safe: a single connection
guarded by an ``RLock``, which the serving layer's request threads share.
Writes are transactional per batch, so a campaign's records land atomically.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Union

from ..campaign.results import CampaignResult, RunRecord
from ..campaign.spec import RunSpec
from ..obs import REGISTRY
from .keys import campaign_key, run_coordinate, run_key

#: Bumped when the table layout changes incompatibly.
STORE_SCHEMA_VERSION = 1

_META_SCHEMA = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    record_id         TEXT PRIMARY KEY,
    coord_key         TEXT NOT NULL,
    model             TEXT NOT NULL,
    model_fingerprint TEXT NOT NULL,
    scheme            INTEGER NOT NULL,
    case_name         TEXT NOT NULL,
    samples           INTEGER NOT NULL,
    sut_seed          INTEGER NOT NULL,
    case_seed         INTEGER NOT NULL,
    fault_plan        TEXT,
    mutant            TEXT,
    system            TEXT,
    passed            INTEGER NOT NULL,
    violations        INTEGER NOT NULL,
    timeouts          INTEGER NOT NULL,
    spec_json         TEXT NOT NULL,
    r_json            TEXT NOT NULL,
    m_json            TEXT,
    created_at        TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_runs_coord ON runs (coord_key);
CREATE INDEX IF NOT EXISTS idx_runs_shape ON runs (scheme, case_name, model);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign_id   TEXT PRIMARY KEY,
    name          TEXT NOT NULL,
    size          INTEGER NOT NULL,
    spec_json     TEXT NOT NULL,
    run_keys_json TEXT NOT NULL,
    created_at    TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS idx_campaigns_name ON campaigns (name);
CREATE TABLE IF NOT EXISTS run_timings (
    record_id TEXT PRIMARY KEY,
    elapsed_s REAL NOT NULL,
    codegen_s REAL,
    execute_s REAL,
    analyze_s REAL
);
CREATE TABLE IF NOT EXISTS campaign_progress (
    name          TEXT PRIMARY KEY,
    snapshot_json TEXT NOT NULL,
    updated_at    TEXT NOT NULL
);
"""


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds")


def _index_free_spec_json(spec: RunSpec) -> str:
    payload = spec.to_dict()
    payload.pop("index")
    payload.pop("label")
    return json.dumps(payload, sort_keys=True)


class StoreError(Exception):
    """A run-store invariant was violated (bad schema, unknown snapshot, ...)."""


class RunStore:
    """Content-addressed persistence for campaign runs and snapshots."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._lock = threading.RLock()
        # One shared connection: request-handler threads of the serving layer
        # funnel through the lock, which SQLite's serialized mode tolerates.
        self._connection = sqlite3.connect(str(self.path), check_same_thread=False)
        self._connection.row_factory = sqlite3.Row
        try:
            self._initialise()
        except StoreError:
            self._connection.close()
            raise
        except sqlite3.DatabaseError as error:
            self._connection.close()
            raise StoreError(f"{self.path} is not a usable run store: {error}") from error

    def _initialise(self) -> None:
        with self._lock, self._connection:
            # Version check strictly before touching the data tables: a file
            # written by an incompatible build must fail with StoreError, not
            # with whatever sqlite error its old table shapes produce.
            self._connection.executescript(_META_SCHEMA)
            row = self._connection.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                self._connection.execute(
                    "INSERT INTO store_meta (key, value) VALUES ('schema_version', ?)",
                    (str(STORE_SCHEMA_VERSION),),
                )
            elif int(row["value"]) != STORE_SCHEMA_VERSION:
                raise StoreError(
                    f"store {self.path} has schema version {row['value']}, "
                    f"this build expects {STORE_SCHEMA_VERSION}"
                )
            self._connection.execute(
                "INSERT OR IGNORE INTO store_meta (key, value) VALUES ('generation', '0')"
            )
            self._connection.executescript(_SCHEMA)
            # Additive migration, same schema version: stores written before
            # the system column / timing tables gain them in place.  Pre-
            # migration coordinate keys are untouched (default-system specs
            # omit the field from their key by design), so old and new rows
            # keep addressing the same runs.
            columns = {
                row["name"]
                for row in self._connection.execute("PRAGMA table_info(runs)")
            }
            if "system" not in columns:
                self._connection.execute("ALTER TABLE runs ADD COLUMN system TEXT")

    def _bump_generation(self) -> None:
        """Advance the write generation (callers hold the lock + transaction)."""
        self._connection.execute(
            "UPDATE store_meta SET value = CAST(value AS INTEGER) + 1 "
            "WHERE key = 'generation'"
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            self._connection.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Run records
    # ------------------------------------------------------------------
    @staticmethod
    def record_id(record: RunRecord) -> str:
        """The content id of one record: coordinate **and** payload.

        Distinct from the coordinate key on purpose: two executions of the
        same configuration that disagree (a code change between them) keep
        separate rows, so older snapshots stay reassemblable bit for bit.
        """
        r_json = json.dumps(record.r_payload, sort_keys=True, separators=(",", ":"))
        m_json = "" if record.m_payload is None else json.dumps(
            record.m_payload, sort_keys=True, separators=(",", ":")
        )
        payload = f"{run_key(record.spec)}|{r_json}|{m_json}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    def put_record(self, record: RunRecord) -> str:
        """Persist one record; returns its record id (idempotent per content)."""
        return self.put_records([record])[0]

    def put_records(self, records: Iterable[RunRecord]) -> List[str]:
        """Persist a batch of records in one transaction; returns record ids."""
        rows = []
        record_ids = []
        timing_rows = []
        created = _utc_now()
        for record in records:
            spec = record.spec
            record_id = self.record_id(record)
            record_ids.append(record_id)
            rows.append(
                (
                    record_id,
                    run_key(spec),
                    spec.model,
                    run_coordinate(spec)["model_fingerprint"],
                    spec.scheme,
                    spec.case,
                    spec.samples,
                    spec.sut_seed,
                    spec.case_seed,
                    None if spec.faults is None else spec.faults.name,
                    None if spec.mutant is None else spec.mutant.mutant_id,
                    spec.system,
                    1 if record.passed else 0,
                    record.violation_count,
                    record.timeout_count,
                    _index_free_spec_json(spec),
                    json.dumps(record.r_payload, sort_keys=True),
                    None if record.m_payload is None else json.dumps(record.m_payload, sort_keys=True),
                    created,
                )
            )
            phases = record.phase_seconds
            if record.elapsed_s or phases:
                phases = phases or {}
                timing_rows.append(
                    (
                        record_id,
                        record.elapsed_s,
                        phases.get("codegen"),
                        phases.get("execute"),
                        phases.get("analyze"),
                    )
                )
        with self._lock, self._connection:
            before = self._connection.total_changes
            self._connection.executemany(
                "INSERT OR IGNORE INTO runs (record_id, coord_key, model, "
                "model_fingerprint, scheme, case_name, samples, sut_seed, case_seed, "
                "fault_plan, mutant, system, passed, violations, timeouts, spec_json, "
                "r_json, m_json, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                rows,
            )
            inserted = self._connection.total_changes - before
            # Idempotent re-puts leave the generation (and every ETag) alone.
            if inserted:
                self._bump_generation()
            # Timing rows are a non-canonical side channel: first write wins,
            # and they never bump the generation (they cannot change a
            # verdict, so they must not churn every cached response).
            if timing_rows:
                self._connection.executemany(
                    "INSERT OR IGNORE INTO run_timings "
                    "(record_id, elapsed_s, codegen_s, execute_s, analyze_s) "
                    "VALUES (?, ?, ?, ?, ?)",
                    timing_rows,
                )
        if inserted:
            REGISTRY.counter("store_inserts_total").inc(inserted)
        return record_ids

    def _record_from_row(self, row: sqlite3.Row, *, index: int = 0) -> RunRecord:
        payload = json.loads(row["spec_json"])
        payload["index"] = index
        return RunRecord(
            spec=RunSpec.from_dict(payload),
            r_payload=json.loads(row["r_json"]),
            m_payload=None if row["m_json"] is None else json.loads(row["m_json"]),
        )

    def get(self, key: str, *, index: int = 0) -> Optional[RunRecord]:
        """The stored record under ``key``: a record id, or a coordinate key
        (resolving to the newest record at that coordinate)."""
        with self._lock:
            row = self._connection.execute(
                "SELECT * FROM runs WHERE record_id = ? OR coord_key = ? "
                "ORDER BY rowid DESC LIMIT 1",
                (key, key),
            ).fetchone()
        return None if row is None else self._record_from_row(row, index=index)

    def lookup(self, spec: RunSpec) -> Optional[RunRecord]:
        """The newest stored record at ``spec``'s coordinate, carrying ``spec``.

        Returning the *caller's* spec (rather than the stored copy) keeps the
        reassembled campaign bit-for-bit equal to a cold execution: the grid
        index is the one position-dependent field, and it comes from the
        caller's expansion.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT r_json, m_json FROM runs WHERE coord_key = ? "
                "ORDER BY rowid DESC LIMIT 1",
                (run_key(spec),),
            ).fetchone()
        REGISTRY.counter(
            "store_lookups_total", labels={"outcome": "hit" if row else "miss"}
        ).inc()
        if row is None:
            return None
        return RunRecord(
            spec=spec,
            r_payload=json.loads(row["r_json"]),
            m_payload=None if row["m_json"] is None else json.loads(row["m_json"]),
        )

    def has(self, spec: RunSpec) -> bool:
        with self._lock:
            row = self._connection.execute(
                "SELECT 1 FROM runs WHERE coord_key = ?", (run_key(spec),)
            ).fetchone()
        return row is not None

    def delete_run(self, key: str) -> bool:
        """Drop stored runs by record id or coordinate key; True if any existed."""
        with self._lock, self._connection:
            cursor = self._connection.execute(
                "DELETE FROM runs WHERE record_id = ? OR coord_key = ?", (key, key)
            )
            if cursor.rowcount > 0:
                self._bump_generation()
        return cursor.rowcount > 0

    def run_rows(
        self,
        *,
        scheme: Optional[int] = None,
        case: Optional[str] = None,
        model: Optional[str] = None,
        system: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
        order: str = "newest",
    ) -> List[Dict[str, Any]]:
        """Compact summary rows of the stored runs.

        ``order`` is ``"newest"`` (insertion order, newest first — the
        default) or ``"slowest"`` (worker wall-clock, slowest first; rows
        without timings sort last).  Timing columns ride along when the run
        has a persisted timing profile, so ``repro store runs --slowest``
        answers which coordinates are slow and in which phase.
        """
        if order not in ("newest", "slowest"):
            raise ValueError(f"unknown run ordering {order!r}")
        clauses = []
        parameters: List[Any] = []
        for column, value in (
            ("scheme", scheme),
            ("case_name", case),
            ("model", model),
            ("system", system),
        ):
            if value is not None:
                clauses.append(f"runs.{column} = ?")
                parameters.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        if order == "slowest":
            suffix = " ORDER BY run_timings.elapsed_s IS NULL, run_timings.elapsed_s DESC, runs.rowid DESC"
        else:
            suffix = " ORDER BY runs.rowid DESC"
        if limit is not None or offset:
            # SQLite requires LIMIT before OFFSET; -1 means "no limit".
            suffix += " LIMIT ?"
            parameters.append(-1 if limit is None else limit)
            if offset:
                suffix += " OFFSET ?"
                parameters.append(offset)
        with self._lock:
            rows = self._connection.execute(
                "SELECT runs.record_id, runs.coord_key, runs.model, "
                "runs.model_fingerprint, runs.scheme, runs.case_name, runs.samples, "
                "runs.sut_seed, runs.case_seed, runs.fault_plan, runs.mutant, "
                "runs.system, runs.passed, runs.violations, runs.timeouts, "
                "runs.created_at, run_timings.elapsed_s, run_timings.codegen_s, "
                "run_timings.execute_s, run_timings.analyze_s "
                "FROM runs LEFT JOIN run_timings "
                f"ON run_timings.record_id = runs.record_id{where}{suffix}",
                parameters,
            ).fetchall()
        summaries = []
        for row in rows:
            summary = {
                "key": row["record_id"],
                "coordinate": row["coord_key"],
                "model": row["model"],
                "model_fingerprint": row["model_fingerprint"],
                "scheme": row["scheme"],
                "case": row["case_name"],
                "samples": row["samples"],
                "sut_seed": row["sut_seed"],
                "case_seed": row["case_seed"],
                "fault_plan": row["fault_plan"],
                "mutant": row["mutant"],
                "system": row["system"],
                "passed": bool(row["passed"]),
                "violations": row["violations"],
                "timeouts": row["timeouts"],
                "created_at": row["created_at"],
            }
            if row["elapsed_s"] is not None:
                summary["timing"] = {
                    "elapsed_s": row["elapsed_s"],
                    "codegen_s": row["codegen_s"],
                    "execute_s": row["execute_s"],
                    "analyze_s": row["analyze_s"],
                }
            summaries.append(summary)
        return summaries

    def run_count(
        self,
        *,
        scheme: Optional[int] = None,
        case: Optional[str] = None,
        model: Optional[str] = None,
        system: Optional[str] = None,
    ) -> int:
        """How many stored runs match the filters (drives /runs pagination)."""
        clauses = []
        parameters: List[Any] = []
        for column, value in (
            ("scheme", scheme),
            ("case_name", case),
            ("model", model),
            ("system", system),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                parameters.append(value)
        where = (" WHERE " + " AND ".join(clauses)) if clauses else ""
        with self._lock:
            return self._connection.execute(
                f"SELECT COUNT(*) AS n FROM runs{where}", parameters
            ).fetchone()["n"]

    # ------------------------------------------------------------------
    # Campaign snapshots
    # ------------------------------------------------------------------
    def save_campaign(self, result: CampaignResult) -> str:
        """Snapshot a campaign (records included); returns the snapshot id.

        Self-contained: any record the ``runs`` table is missing is inserted
        from the result itself, so a snapshot can always be reassembled.
        Snapshot ids hash the spec plus every record's content, so re-saving
        an identical campaign is a no-op while a re-run whose *results*
        changed (same grid, new code) gets its own snapshot — that pair is
        exactly what ``repro store diff`` compares.
        """
        keys = self.put_records(result.records)
        spec_payload = result.spec.to_dict()
        campaign_id = campaign_key(spec_payload, keys)
        with self._lock, self._connection:
            before = self._connection.total_changes
            self._connection.execute(
                "INSERT OR IGNORE INTO campaigns "
                "(campaign_id, name, size, spec_json, run_keys_json, created_at) "
                "VALUES (?, ?, ?, ?, ?, ?)",
                (
                    campaign_id,
                    result.spec.name,
                    len(result.records),
                    json.dumps(spec_payload, sort_keys=True),
                    json.dumps(keys),
                    _utc_now(),
                ),
            )
            if self._connection.total_changes != before:
                self._bump_generation()
                REGISTRY.counter("store_snapshots_total").inc()
        return campaign_id

    def load_campaign(self, campaign_id: str) -> CampaignResult:
        """Reassemble a snapshot into a full, byte-identical campaign result."""
        with self._lock:
            row = self._connection.execute(
                "SELECT spec_json, run_keys_json FROM campaigns WHERE campaign_id = ?",
                (campaign_id,),
            ).fetchone()
        if row is None:
            raise StoreError(f"store {self.path} has no campaign snapshot {campaign_id!r}")
        keys = json.loads(row["run_keys_json"])
        runs = []
        for index, key in enumerate(keys):
            record = self.get(key, index=index)
            if record is None:
                raise StoreError(f"campaign {campaign_id!r} references missing run {key!r}")
            runs.append(record.to_dict())
        return CampaignResult.from_dict(
            {"campaign": json.loads(row["spec_json"]), "runs": runs}
        )

    def campaign_rows(self, *, name: Optional[str] = None) -> List[Dict[str, Any]]:
        """Summary rows of the stored snapshots (newest first)."""
        where, parameters = ("", [])
        if name is not None:
            where, parameters = (" WHERE name = ?", [name])
        with self._lock:
            rows = self._connection.execute(
                "SELECT campaign_id, name, size, created_at, rowid FROM campaigns"
                f"{where} ORDER BY rowid DESC",
                parameters,
            ).fetchall()
        return [
            {
                "campaign_id": row["campaign_id"],
                "name": row["name"],
                "size": row["size"],
                "created_at": row["created_at"],
            }
            for row in rows
        ]

    def latest_campaign_id(self, *, name: Optional[str] = None, offset: int = 0) -> Optional[str]:
        """The id of the most recently saved snapshot (``offset`` steps back)."""
        rows = self.campaign_rows(name=name)
        return rows[offset]["campaign_id"] if offset < len(rows) else None

    def resolve_campaign_id(self, reference: str, *, name: Optional[str] = None) -> str:
        """Resolve a snapshot reference: an explicit id, ``latest`` or ``prev``."""
        if reference == "latest":
            resolved = self.latest_campaign_id(name=name)
        elif reference == "prev":
            resolved = self.latest_campaign_id(name=name, offset=1)
        else:
            resolved = reference
        if resolved is None:
            raise StoreError(f"store {self.path} cannot resolve campaign reference {reference!r}")
        return resolved

    # ------------------------------------------------------------------
    # Live campaign progress
    # ------------------------------------------------------------------
    def save_progress(self, snapshot: Dict[str, Any]) -> None:
        """Persist a live progress snapshot, keyed by campaign name.

        Deliberately does **not** bump the write generation: progress is an
        advisory side channel written many times per campaign, and churning
        every cached response (and every client's ETag) once per shard would
        defeat the serving layer's 304 path.  ``/progress`` responses bypass
        the generation-keyed cache for the same reason.
        """
        name = snapshot["campaign"]
        with self._lock, self._connection:
            self._connection.execute(
                "INSERT OR REPLACE INTO campaign_progress "
                "(name, snapshot_json, updated_at) VALUES (?, ?, ?)",
                (name, json.dumps(snapshot, sort_keys=True), _utc_now()),
            )
        REGISTRY.counter("store_progress_writes_total").inc()

    def load_progress(self, name: str) -> Optional[Dict[str, Any]]:
        """The latest progress snapshot for campaign ``name`` (with its
        ``updated_at`` write stamp), or ``None``."""
        with self._lock:
            row = self._connection.execute(
                "SELECT snapshot_json, updated_at FROM campaign_progress WHERE name = ?",
                (name,),
            ).fetchone()
        if row is None:
            return None
        snapshot = json.loads(row["snapshot_json"])
        snapshot["updated_at"] = row["updated_at"]
        return snapshot

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counts(self) -> Dict[str, int]:
        with self._lock:
            runs = self._connection.execute("SELECT COUNT(*) AS n FROM runs").fetchone()["n"]
            campaigns = self._connection.execute(
                "SELECT COUNT(*) AS n FROM campaigns"
            ).fetchone()["n"]
        return {"runs": runs, "campaigns": campaigns}

    def state_token(self) -> str:
        """A cheap token that changes whenever the store's content changes.

        Reads the monotonic write-generation counter, which every mutating
        method bumps inside its own transaction — unlike row counts or max
        rowids, it cannot collide after a delete-then-insert.  The serving
        layer keys its response cache on it: identical token → identical
        responses, so ETags stay valid exactly as long as the data.
        """
        with self._lock:
            row = self._connection.execute(
                "SELECT value FROM store_meta WHERE key = 'generation'"
            ).fetchone()
        generation = "0" if row is None else row["value"]
        return hashlib.sha256(f"gen:{generation}".encode("utf-8")).hexdigest()[:16]
