"""Regression analysis between two stored campaign snapshots.

:class:`SnapshotDiff` pairs the runs of two campaigns by *semantic
coordinate* — scheme, configuration overrides, scenario, samples, fault plan
and mutant, but **not** seeds or model fingerprints — so two snapshots of the
same grid remain comparable after a model edit or a seed change, which is
exactly when a regression diff is interesting.  Per paired run it reports:

* **verdict flips** — PASS → FAIL (a regression) or FAIL → PASS (a fix);
* **new violations** — the violation/timeout count grew without necessarily
  flipping the aggregate verdict;
* **drift** — mean R-latency and mean per-segment (input/code/output) delay
  movement, computed from the stored payloads alone.

Runs present in only one snapshot are listed as added/removed rather than
silently dropped.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..campaign.results import CampaignResult, RunRecord

#: Mean drift below this many microseconds is noise, not a finding.
DRIFT_THRESHOLD_US = 1.0


def semantic_key(record: RunRecord) -> str:
    """The seed-free pairing coordinate of one run."""
    spec = record.spec
    return json.dumps(
        {
            "scheme": spec.scheme,
            "case": spec.case,
            "samples": spec.samples,
            "model": spec.model,
            "period_us": spec.period_us,
            "interference_scale": spec.interference_scale,
            "m_test": spec.m_test,
            "faults": None if spec.faults is None else spec.faults.name,
            "mutant": None if spec.mutant is None else spec.mutant.mutant_id,
        },
        sort_keys=True,
    )


def _mean(values: List[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


def _mean_latency_us(record: RunRecord) -> Optional[float]:
    latencies = [
        sample["latency_us"]
        for sample in record.r_payload.get("samples", [])
        if sample.get("latency_us") is not None
    ]
    return _mean(latencies)


def _segment_means_us(record: RunRecord) -> Dict[str, Optional[float]]:
    segments = (record.m_payload or {}).get("segments", [])
    means = {}
    for name in ("input_delay_us", "code_delay_us", "output_delay_us"):
        means[name.replace("_delay_us", "")] = _mean(
            [segment[name] for segment in segments if segment.get(name) is not None]
        )
    return means


def _delta(old: Optional[float], new: Optional[float]) -> Optional[float]:
    if old is None or new is None:
        return None
    return new - old


@dataclass(frozen=True)
class RunDelta:
    """The comparison of one run coordinate across the two snapshots."""

    label: str
    scheme: int
    case: str
    old_passed: bool
    new_passed: bool
    old_violations: int
    new_violations: int
    old_timeouts: int
    new_timeouts: int
    #: Mean R-latency movement in µs (None when either side lacks latencies).
    latency_drift_us: Optional[float]
    #: Mean per-segment delay movement in µs (only segments both sides have).
    segment_drift_us: Dict[str, float]

    @property
    def verdict_flipped(self) -> bool:
        return self.old_passed != self.new_passed

    @property
    def regressed(self) -> bool:
        """New snapshot is worse: verdict lost, or more violations/timeouts."""
        if self.old_passed and not self.new_passed:
            return True
        return (
            self.new_violations > self.old_violations or self.new_timeouts > self.old_timeouts
        )

    @property
    def improved(self) -> bool:
        if not self.old_passed and self.new_passed:
            return True
        return (
            self.new_violations < self.old_violations or self.new_timeouts < self.old_timeouts
        )

    @property
    def drifted(self) -> bool:
        if self.latency_drift_us is not None and abs(self.latency_drift_us) >= DRIFT_THRESHOLD_US:
            return True
        return any(abs(delta) >= DRIFT_THRESHOLD_US for delta in self.segment_drift_us.values())

    @property
    def changed(self) -> bool:
        return self.verdict_flipped or self.regressed or self.improved or self.drifted

    def to_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "scheme": self.scheme,
            "case": self.case,
            "old_passed": self.old_passed,
            "new_passed": self.new_passed,
            "verdict_flipped": self.verdict_flipped,
            "regressed": self.regressed,
            "improved": self.improved,
            "old_violations": self.old_violations,
            "new_violations": self.new_violations,
            "old_timeouts": self.old_timeouts,
            "new_timeouts": self.new_timeouts,
            "latency_drift_us": self.latency_drift_us,
            "segment_drift_us": self.segment_drift_us,
        }


def _pair(record_old: RunRecord, record_new: RunRecord) -> RunDelta:
    old_segments = _segment_means_us(record_old)
    new_segments = _segment_means_us(record_new)
    segment_drift = {}
    for name in old_segments:
        delta = _delta(old_segments[name], new_segments[name])
        if delta is not None:
            segment_drift[name] = delta
    return RunDelta(
        label=record_new.spec.label,
        scheme=record_new.spec.scheme,
        case=record_new.spec.case,
        old_passed=record_old.passed,
        new_passed=record_new.passed,
        old_violations=record_old.violation_count,
        new_violations=record_new.violation_count,
        old_timeouts=record_old.timeout_count,
        new_timeouts=record_new.timeout_count,
        latency_drift_us=_delta(_mean_latency_us(record_old), _mean_latency_us(record_new)),
        segment_drift_us=segment_drift,
    )


@dataclass
class SnapshotDiff:
    """The full regression report between two campaign snapshots."""

    old_id: str
    new_id: str
    deltas: List[RunDelta] = field(default_factory=list)
    #: Labels only the new snapshot has.
    added: List[str] = field(default_factory=list)
    #: Labels only the old snapshot has.
    removed: List[str] = field(default_factory=list)

    # ------------------------------------------------------------------
    @classmethod
    def between(
        cls,
        old: CampaignResult,
        new: CampaignResult,
        *,
        old_id: str = "old",
        new_id: str = "new",
    ) -> "SnapshotDiff":
        """Pair the two campaigns' runs by semantic coordinate and compare.

        Duplicate coordinates (the same configuration appearing several times
        in one grid) pair positionally, in grid order.
        """
        old_buckets: Dict[str, List[RunRecord]] = {}
        for record in old.records:
            old_buckets.setdefault(semantic_key(record), []).append(record)

        diff = cls(old_id=old_id, new_id=new_id)
        for record in new.records:
            bucket = old_buckets.get(semantic_key(record))
            if bucket:
                diff.deltas.append(_pair(bucket.pop(0), record))
            else:
                diff.added.append(record.spec.label)
        for bucket in old_buckets.values():
            diff.removed.extend(record.spec.label for record in bucket)
        return diff

    # ------------------------------------------------------------------
    def regressions(self) -> List[RunDelta]:
        return [delta for delta in self.deltas if delta.regressed]

    def improvements(self) -> List[RunDelta]:
        return [delta for delta in self.deltas if delta.improved]

    def changed(self) -> List[RunDelta]:
        return [delta for delta in self.deltas if delta.changed]

    @property
    def clean(self) -> bool:
        """True when nothing changed between the snapshots."""
        return not (self.changed() or self.added or self.removed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "old": self.old_id,
            "new": self.new_id,
            "compared": len(self.deltas),
            "added": self.added,
            "removed": self.removed,
            "regressions": [delta.label for delta in self.regressions()],
            "improvements": [delta.label for delta in self.improvements()],
            "clean": self.clean,
            "deltas": [delta.to_dict() for delta in self.changed()],
        }

    def render(self) -> str:
        """Plain-text regression report."""
        lines = [
            f"snapshot diff: {self.old_id} -> {self.new_id} "
            f"({len(self.deltas)} paired runs)"
        ]
        changed = self.changed()
        if not changed and not self.added and not self.removed:
            lines.append("  no changes: verdicts, violation counts and delays all stable")
            return "\n".join(lines)
        for delta in changed:
            flags = []
            if delta.regressed:
                flags.append("REGRESSED")
            elif delta.improved:
                flags.append("improved")
            if delta.verdict_flipped:
                flags.append(
                    f"verdict {'PASS' if delta.old_passed else 'FAIL'}"
                    f"->{'PASS' if delta.new_passed else 'FAIL'}"
                )
            if delta.new_violations != delta.old_violations:
                flags.append(f"violations {delta.old_violations}->{delta.new_violations}")
            if delta.new_timeouts != delta.old_timeouts:
                flags.append(f"MAX {delta.old_timeouts}->{delta.new_timeouts}")
            if delta.latency_drift_us is not None and abs(delta.latency_drift_us) >= DRIFT_THRESHOLD_US:
                flags.append(f"latency {delta.latency_drift_us / 1000:+.3f} ms")
            for segment, drift in sorted(delta.segment_drift_us.items()):
                if abs(drift) >= DRIFT_THRESHOLD_US:
                    flags.append(f"{segment} {drift / 1000:+.3f} ms")
            lines.append(f"  {delta.label:<44} {', '.join(flags)}")
        for label in self.added:
            lines.append(f"  {label:<44} only in {self.new_id}")
        for label in self.removed:
            lines.append(f"  {label:<44} only in {self.old_id}")
        lines.append(
            f"  summary: {len(self.regressions())} regression(s), "
            f"{len(self.improvements())} improvement(s), "
            f"{len(self.added)} added, {len(self.removed)} removed"
        )
        return "\n".join(lines)


def diff_snapshots(store, old_reference: str, new_reference: str, *, name: Optional[str] = None) -> SnapshotDiff:
    """Load two snapshots from ``store`` (ids or latest/prev) and diff them."""
    old_id = store.resolve_campaign_id(old_reference, name=name)
    new_id = store.resolve_campaign_id(new_reference, name=name)
    return SnapshotDiff.between(
        store.load_campaign(old_id), store.load_campaign(new_id), old_id=old_id, new_id=new_id
    )


__all__: Tuple[str, ...] = (
    "DRIFT_THRESHOLD_US",
    "RunDelta",
    "SnapshotDiff",
    "diff_snapshots",
    "semantic_key",
)
