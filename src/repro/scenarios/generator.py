"""Seeded random sampling and mutation of scenario programs.

A :class:`ScenarioSpace` bounds the universe of programs a case study admits:
which requirements can be targeted, which monitored variables may appear as
setup/teardown steps, and the numeric ranges of every knob (sample counts,
spacing, jitter, bursts, offsets).  A :class:`ScenarioSampler` draws programs
from that space — and *mutates* existing programs one knob at a time — using
named random streams derived from a single seed, so program ``i`` of a
sampler is a pure function of ``(space, seed, i)`` no matter how many draws
earlier programs consumed.

Sampling alone is blind; the exploration loop in
:mod:`repro.scenarios.explore` feeds executed-trace coverage back into the
sampler's choices (keep-and-mutate what uncovered new behaviour, resample
what didn't).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple

from ..core.requirements import TimingRequirement
from ..platform.kernel.random import RandomSource
from ..platform.kernel.time import ms, seconds
from .dsl import ROLE_SETUP, ROLE_TEARDOWN, CycleSpacing, ScenarioProgram, StimulusPattern, StimulusStep

#: An inclusive ``(low, high)`` integer range.
Range = Tuple[int, int]


@dataclass(frozen=True)
class ScenarioSpace:
    """The bounded universe of scenario programs for one case study."""

    requirements: Tuple[TimingRequirement, ...]
    #: Monitored variables that may appear as per-cycle setup steps.
    setup_variables: Tuple[str, ...]
    #: Monitored variables that may appear as per-cycle teardown steps.
    teardown_variables: Tuple[str, ...]
    samples: Range = (2, 5)
    start_offset_us: Range = (ms(100), ms(900))
    #: Baseline inter-cycle spacing range (clamped per requirement).
    cycle_spacing_us: Range = (ms(800), seconds(8))
    #: Extra jitter width added on top of the spacing minimum when jittered.
    jitter_width_us: Range = (ms(100), ms(1500))
    jitter_probability: float = 0.5
    max_setup_steps: int = 2
    max_teardown_steps: int = 2
    #: Offset of the measured stimulus when the cycle has setup steps.
    measured_offset_us: Range = (ms(300), seconds(2))
    #: Gap between setup steps and before the measured stimulus.
    setup_lead_us: Range = (ms(50), ms(600))
    #: Delay of teardown steps after the measured stimulus.
    teardown_lag_us: Range = (ms(500), seconds(3))
    max_burst: int = 2
    burst_gap_us: Range = (ms(300), seconds(1))

    def __post_init__(self) -> None:
        if not self.requirements:
            raise ValueError("scenario space needs at least one requirement")
        for low, high in (
            self.samples,
            self.start_offset_us,
            self.cycle_spacing_us,
            self.jitter_width_us,
            self.measured_offset_us,
            self.setup_lead_us,
            self.teardown_lag_us,
            self.burst_gap_us,
        ):
            if low > high:
                raise ValueError(f"range ({low}, {high}) is inverted")
        if not 0.0 <= self.jitter_probability <= 1.0:
            raise ValueError("jitter probability must be in [0, 1]")
        if self.max_burst < 1:
            raise ValueError("max burst must be at least 1")


class ScenarioSampler:
    """Draws (and mutates) scenario programs from a space, deterministically.

    Every program draws from its own named stream
    (``RandomSource(seed).stream(f"program:{index}")``), so the ``index``-th
    sampled program depends only on the space, the seed and the index.
    """

    def __init__(self, space: ScenarioSpace, seed: int = 0) -> None:
        self.space = space
        self.seed = seed
        self._source = RandomSource(seed)
        self._counter = 0

    # ------------------------------------------------------------------
    def sample(
        self, *, min_setup_steps: int = 0, min_teardown_steps: int = 0
    ) -> ScenarioProgram:
        """Draw the next fresh program from the space.

        ``min_setup_steps`` / ``min_teardown_steps`` floor the structural
        richness of the draw (clamped to the space's caps and pools) — the
        exploration loop raises them during coverage plateaus, because
        reaching guarded model behaviour takes multi-variable scenarios, not
        retimed single-stimulus ones.
        """
        index = self._counter
        self._counter += 1
        rng = self._source.stream(f"program:{index}")
        space = self.space

        requirement = rng.choice(list(space.requirements))
        samples = rng.randint(*space.samples)
        start_offset = rng.randint(*space.start_offset_us)

        setup_pool = [
            variable
            for variable in space.setup_variables
            if variable != requirement.stimulus.variable
        ]
        setup_cap = min(space.max_setup_steps, len(setup_pool))
        setup_count = rng.randint(min(min_setup_steps, setup_cap), setup_cap)
        setup: Tuple[StimulusStep, ...] = ()
        measured_offset = 0
        if setup_count:
            measured_offset = rng.randint(*space.measured_offset_us)
            offsets = sorted(
                rng.randint(0, max(0, measured_offset - rng.randint(*space.setup_lead_us)))
                for _ in range(setup_count)
            )
            variables = rng.sample(setup_pool, setup_count)
            setup = tuple(
                StimulusStep(variable, offset, ROLE_SETUP)
                for variable, offset in zip(variables, offsets)
            )

        burst = rng.randint(1, space.max_burst)
        burst_gap = 0
        if burst > 1:
            burst_gap = max(
                requirement.min_stimulus_separation_us, rng.randint(*space.burst_gap_us)
            )
        pattern = StimulusPattern(offset_us=measured_offset, burst=burst, burst_gap_us=burst_gap)

        teardown_pool = [
            variable
            for variable in space.teardown_variables
            if variable != requirement.stimulus.variable
        ]
        teardown_cap = min(space.max_teardown_steps, len(teardown_pool))
        teardown_count = rng.randint(min(min_teardown_steps, teardown_cap), teardown_cap)
        teardown: Tuple[StimulusStep, ...] = ()
        if teardown_count:
            lags = sorted(rng.randint(*space.teardown_lag_us) for _ in range(teardown_count))
            variables = rng.sample(teardown_pool, teardown_count)
            teardown = tuple(
                StimulusStep(variable, measured_offset + pattern.span_us + lag, ROLE_TEARDOWN)
                for variable, lag in zip(variables, lags)
            )

        spacing = self._draw_spacing(rng, requirement, pattern, (*setup, *teardown))
        return ScenarioProgram(
            name=f"gen-{requirement.requirement_id.lower()}-{index:03d}",
            requirement=requirement,
            spacing=spacing,
            samples=samples,
            start_offset_us=start_offset,
            setup=setup,
            stimulus=pattern,
            teardown=teardown,
            description=(
                f"generated scenario #{index} targeting {requirement.requirement_id}"
            ),
        )

    def mutate(self, program: ScenarioProgram) -> ScenarioProgram:
        """Vary one knob of an existing program (same seeded-stream scheme).

        Structural mutations — adding or dropping a setup step — are what let
        the exploration loop escape coverage plateaus: reaching a guarded
        transition usually needs a *different stimulus combination*, not just
        different timing.
        """
        index = self._counter
        self._counter += 1
        rng = self._source.stream(f"mutate:{index}")
        space = self.space
        setup_pool = [
            variable
            for variable in space.setup_variables
            if variable != program.requirement.stimulus.variable
            and variable not in {step.variable for step in program.setup}
        ]
        choices = ["samples", "start", "spacing"]
        if program.setup:
            choices.append("drop-setup")
        if setup_pool and len(program.setup) < space.max_setup_steps + 2:
            # Twice so structural exploration wins ties against timing tweaks.
            choices.extend(["add-setup", "add-setup"])
        mutation = rng.choice(choices)
        mutated = program
        if mutation == "samples":
            mutated = replace(program, samples=rng.randint(*space.samples))
        elif mutation == "start":
            mutated = replace(program, start_offset_us=rng.randint(*space.start_offset_us))
        elif mutation == "spacing":
            mutated = replace(
                program,
                spacing=self._draw_spacing(
                    rng,
                    program.requirement,
                    program.stimulus,
                    (*program.setup, *program.teardown),
                ),
            )
        elif mutation == "drop-setup":
            mutated = replace(program, setup=program.setup[:-1])
        elif mutation == "add-setup":
            offset_ceiling = max(0, program.spacing.min_us - ms(200))
            step = StimulusStep(
                rng.choice(setup_pool), rng.randint(0, offset_ceiling), ROLE_SETUP
            )
            setup = tuple(
                sorted((*program.setup, step), key=lambda entry: entry.offset_us)
            )
            mutated = replace(program, setup=setup)
        # Name from the base program, not the parent: chained mutation of
        # archived programs must not accrete one suffix per generation.
        base_name = program.name.split("~", 1)[0]
        return replace(mutated, name=f"{base_name}~m{index:03d}")

    # ------------------------------------------------------------------
    def _draw_spacing(
        self,
        rng,
        requirement: TimingRequirement,
        pattern: StimulusPattern,
        steps: Tuple[StimulusStep, ...],
    ) -> CycleSpacing:
        """Draw an inter-cycle spacing that keeps the program valid.

        The floor honours (a) the requirement's minimum measured-stimulus
        separation across cycle boundaries and (b) the last event of the
        cycle — measured burst, setup or teardown step, whichever is latest —
        so consecutive cycles never interleave.
        """
        space = self.space
        cycle_end = pattern.offset_us + pattern.span_us
        if steps:
            cycle_end = max(cycle_end, max(step.offset_us for step in steps))
        floor = max(
            space.cycle_spacing_us[0],
            pattern.span_us + requirement.min_stimulus_separation_us,
            cycle_end + ms(100),
        )
        minimum = rng.randint(floor, max(floor, space.cycle_spacing_us[1]))
        if rng.random() < space.jitter_probability:
            return CycleSpacing(minimum, minimum + rng.randint(*space.jitter_width_us))
        return CycleSpacing(minimum)
