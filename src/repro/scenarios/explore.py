"""Coverage-guided scenario exploration.

The explorer closes the loop the paper's conclusion leaves as future work —
"test coverage and test sufficiency from which test cases can be
systematically generated".  Each *episode*:

1. picks a scenario program — either a fresh draw from the space, or a
   mutation of an archived program that previously uncovered new behaviour
   (seeded epsilon-greedy choice);
2. compiles it to an :class:`RTestCase` and executes it against a fresh
   system from the factory (:func:`repro.core.r_testing.execute_r_test`);
3. feeds the executed trace into :class:`repro.core.coverage`'s transition
   and state coverage, and archives the program if it covered generated
   transitions no earlier episode had reached.

The bias is what makes the loop *guided*: programs that reach unexplored
model behaviour are kept and varied, programs that retread known ground are
discarded.  Everything — sampling, mutation, archive selection — draws from
named streams of one :class:`RandomSource` seed, so a whole exploration is a
pure function of ``(space, factory, seed)`` and can be replayed exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..codegen.ir import CodeModel
from ..core.coverage import StateCoverage, TransitionCoverage
from ..core.r_testing import RTestReport, execute_r_test
from ..core.sut import SutFactory
from ..platform.kernel.random import RandomSource
from .dsl import ScenarioProgram
from .generator import ScenarioSampler, ScenarioSpace

#: Probability of mutating an archived productive program instead of
#: sampling a fresh one (when the archive is non-empty).
EXPLOIT_PROBABILITY = 0.5

#: After this many consecutive episodes without new coverage, exploitation
#: is suspended and every pick is a fresh draw until coverage grows again —
#: mutating a long-exhausted archive is how exploration plateaus.
DRY_STREAK_FRESH_THRESHOLD = 4


@dataclass(frozen=True)
class Episode:
    """The outcome of one exploration episode."""

    index: int
    program: ScenarioProgram
    #: How the program was picked: "fresh" (new sample), "mutation" (varied
    #: archive program) or "rich" (plateau-forced structurally-rich sample).
    source: str
    passes: int
    failures: int
    timeouts: int
    #: Generated transitions this episode covered for the first time.
    new_transitions: List[str]
    transition_ratio_after: float

    @property
    def productive(self) -> bool:
        return bool(self.new_transitions)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "program": self.program.name,
            "requirement": self.program.requirement.requirement_id,
            "source": self.source,
            "samples": self.passes + self.failures + self.timeouts,
            "passes": self.passes,
            "failures": self.failures,
            "timeouts": self.timeouts,
            "new_transitions": list(self.new_transitions),
            "transition_ratio_after": self.transition_ratio_after,
        }

    def summary(self) -> str:
        gained = ", ".join(self.new_transitions) or "-"
        return (
            f"episode {self.index:>2} [{self.source:<8}] {self.program.name:<24} "
            f"{self.program.requirement.requirement_id:<5} "
            f"pass/fail/MAX {self.passes}/{self.failures}/{self.timeouts}  "
            f"new: {gained}"
        )


@dataclass
class ExplorationReport:
    """Aggregate of one coverage-guided exploration."""

    seed: int
    episodes: List[Episode] = field(default_factory=list)
    transition_coverage: Optional[TransitionCoverage] = None
    state_coverage: Optional[StateCoverage] = None

    @property
    def productive_episodes(self) -> List[Episode]:
        return [episode for episode in self.episodes if episode.productive]

    def summary(self) -> str:
        lines = [f"coverage-guided exploration (seed {self.seed}, {len(self.episodes)} episodes)"]
        lines.extend(episode.summary() for episode in self.episodes)
        if self.transition_coverage is not None:
            lines.append(self.transition_coverage.summary())
        if self.state_coverage is not None:
            lines.append(self.state_coverage.summary())
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "seed": self.seed,
            "episodes": [episode.to_dict() for episode in self.episodes],
        }
        if self.transition_coverage is not None:
            payload["transition_coverage"] = {
                "covered": sorted(self.transition_coverage.covered),
                "uncovered": self.transition_coverage.uncovered,
                "ratio": self.transition_coverage.ratio,
            }
        if self.state_coverage is not None:
            payload["state_coverage"] = {
                "covered": sorted(self.state_coverage.covered),
                "uncovered": self.state_coverage.uncovered,
                "ratio": self.state_coverage.ratio,
            }
        return payload


class CoverageGuidedExplorer:
    """Runs seeded exploration episodes against one implemented system kind."""

    def __init__(
        self,
        space: ScenarioSpace,
        sut_factory: SutFactory,
        code_model: CodeModel,
        *,
        seed: int = 0,
    ) -> None:
        self.space = space
        self.sut_factory = sut_factory
        self.seed = seed
        self.sampler = ScenarioSampler(space, seed=seed)
        self.transition_coverage = TransitionCoverage.for_code_model(code_model)
        self.state_coverage = StateCoverage.for_code_model(code_model)
        self._source = RandomSource(seed)
        #: Productive programs with the number of transitions they uncovered.
        self._archive: List[tuple] = []
        #: Consecutive episodes without coverage gain (plateau detector).
        self._dry_streak = 0

    # ------------------------------------------------------------------
    def explore(self, episodes: int = 8) -> ExplorationReport:
        """Run ``episodes`` exploration episodes and aggregate the report."""
        report = ExplorationReport(seed=self.seed)
        for index in range(episodes):
            report.episodes.append(self._run_episode(index))
        report.transition_coverage = self.transition_coverage
        report.state_coverage = self.state_coverage
        return report

    # ------------------------------------------------------------------
    def _run_episode(self, index: int) -> Episode:
        rng = self._source.stream(f"episode:{index}")
        program, source = self._pick_program(rng)
        compile_seed = self._source.fork(f"compile:{index}").seed
        test_case = program.compile(compile_seed)
        r_report = execute_r_test(self.sut_factory, test_case)

        before = set(self.transition_coverage.covered)
        if r_report.trace is not None:
            self.transition_coverage.add_trace(r_report.trace)
            self.state_coverage.add_trace(r_report.trace)
        gained = sorted(self.transition_coverage.covered - before)
        if gained:
            self._archive.append((program, len(gained)))
            self._dry_streak = 0
        else:
            self._dry_streak += 1
        return Episode(
            index=index,
            program=program,
            source=source,
            passes=self._count(r_report, "pass"),
            failures=self._count(r_report, "fail"),
            timeouts=r_report.timeout_count,
            new_transitions=gained,
            transition_ratio_after=self.transition_coverage.ratio,
        )

    def _pick_program(self, rng) -> tuple:
        """Epsilon-greedy choice: mutate a productive program, or go fresh.

        During a coverage plateau (no gain for
        :data:`DRY_STREAK_FRESH_THRESHOLD` episodes) exploitation is
        suspended — the archive's neighbourhood is exhausted — and fresh
        draws are forced to be structurally *rich* (at least one setup and
        one teardown step): the transitions still uncovered at that point
        are the guarded ones that only multi-variable scenarios reach.
        """
        plateaued = self._dry_streak >= DRY_STREAK_FRESH_THRESHOLD
        if self._archive and not plateaued and rng.random() < EXPLOIT_PROBABILITY:
            programs = [entry[0] for entry in self._archive]
            weights = [entry[1] for entry in self._archive]
            parent = rng.choices(programs, weights=weights, k=1)[0]
            return self.sampler.mutate(parent), "mutation"
        if plateaued:
            return self.sampler.sample(min_setup_steps=1, min_teardown_steps=1), "rich"
        return self.sampler.sample(), "fresh"

    @staticmethod
    def _count(report: RTestReport, verdict: str) -> int:
        return sum(1 for sample in report.samples if sample.verdict.value == verdict)
