"""Coverage-guided scenario generation on top of the R-/M-testing core.

The paper's evaluation exercises four hand-written GPCA scenarios; this
package generalises them into a declarative scenario *language* plus a
seeded, coverage-guided *generator*:

* :mod:`repro.scenarios.dsl` — :class:`ScenarioProgram`, the declarative
  description of a scenario (setup phase, measured stimulus pattern,
  teardown phase, spacing distribution, target requirement) that compiles to
  plain :class:`repro.core.test_generation.RTestCase` schedules;
* :mod:`repro.scenarios.generator` — :class:`ScenarioSpace` (the bounded
  universe of programs a case study admits) and :class:`ScenarioSampler`
  (seeded sampling and one-knob mutation);
* :mod:`repro.scenarios.explore` — :class:`CoverageGuidedExplorer`, the
  episode loop that executes compiled programs and biases sampling toward
  programs that reach uncovered model transitions, using
  :mod:`repro.core.coverage` as the feedback signal.

Programs are frozen and picklable, so the campaign engine can use them
directly as scenario-axis points (``repro campaign --grid scenarios``), and
``repro explore`` drives the loop from the command line.

See ``docs/architecture.md`` for how this layer relates to the rest of the
stack.
"""

from .dsl import (
    ROLE_SETUP,
    ROLE_TEARDOWN,
    CycleSpacing,
    ScenarioProgram,
    StimulusPattern,
    StimulusStep,
)
from .explore import EXPLOIT_PROBABILITY, CoverageGuidedExplorer, Episode, ExplorationReport
from .generator import ScenarioSampler, ScenarioSpace

__all__ = [
    "CoverageGuidedExplorer",
    "CycleSpacing",
    "EXPLOIT_PROBABILITY",
    "Episode",
    "ExplorationReport",
    "ROLE_SETUP",
    "ROLE_TEARDOWN",
    "ScenarioProgram",
    "ScenarioSampler",
    "ScenarioSpace",
    "StimulusPattern",
    "StimulusStep",
]
