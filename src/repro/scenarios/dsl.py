"""The declarative scenario DSL.

A :class:`ScenarioProgram` describes a whole R-testing scenario — not just a
stimulus schedule, but the *shape* of the scenario: per-sample **setup** steps
that steer the system into the state the requirement talks about, the measured
**stimulus pattern** (single event or burst, with a per-cycle offset), and
**teardown** steps that recover the system so the next sample again starts
from a known state.  Inter-sample spacing is either fixed or drawn from a
seeded jitter distribution.

Programs *compile* to plain :class:`repro.core.test_generation.RTestCase`
schedules, so everything downstream — R-testing, M-testing, the campaign
engine — consumes them unchanged.  Programs whose cycle is a bare measured
stimulus lower through :class:`repro.core.test_generation.RTestGenerator`, so
their compiled cases are *byte-identical* to the generator's output (this is
what lets the hand-written GPCA scenarios be re-expressed as programs without
changing a single pinned test case).

Programs are frozen, hashable and picklable, which is what allows the
campaign grid to use them directly as scenario-axis points, and they have a
canonical dict encoding (:meth:`ScenarioProgram.to_dict`) for JSON artefacts.

See ``docs/architecture.md`` for where the scenario layer sits in the stack.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Tuple

from ..core.requirements import TimingRequirement
from ..core.serialization import requirement_from_dict, requirement_to_dict
from ..core.test_generation import (
    RTestCase,
    RTestGenerator,
    Stimulus,
    TestGenerationConfig,
)
from ..platform.kernel.random import RandomSource
from ..platform.kernel.time import ms

#: Roles a scenario step can play within one sample cycle.
ROLE_SETUP = "setup"
ROLE_TEARDOWN = "teardown"


@dataclass(frozen=True)
class StimulusStep:
    """One setup/teardown stimulus within a sample cycle.

    ``offset_us`` is relative to the cycle's base time.  Setup steps use
    monitored variables *different* from the requirement's stimulus variable,
    so they steer the system without ever influencing the R-testing verdict.
    """

    variable: str
    offset_us: int
    role: str = ROLE_SETUP

    def __post_init__(self) -> None:
        if self.offset_us < 0:
            raise ValueError("step offset must be non-negative")
        if self.role not in (ROLE_SETUP, ROLE_TEARDOWN):
            raise ValueError(f"unknown step role {self.role!r}")

    def to_dict(self) -> Dict[str, Any]:
        return {"variable": self.variable, "offset_us": self.offset_us, "role": self.role}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StimulusStep":
        return cls(
            variable=payload["variable"],
            offset_us=payload["offset_us"],
            role=payload.get("role", ROLE_SETUP),
        )


@dataclass(frozen=True)
class StimulusPattern:
    """The measured-stimulus pattern of one sample cycle.

    A pattern is ``burst`` injections of the requirement's stimulus variable,
    the first at ``offset_us`` into the cycle, subsequent ones separated by
    ``burst_gap_us``.  The default is the classic single stimulus at the
    cycle base.
    """

    offset_us: int = 0
    burst: int = 1
    burst_gap_us: int = 0

    def __post_init__(self) -> None:
        if self.offset_us < 0:
            raise ValueError("stimulus offset must be non-negative")
        if self.burst < 1:
            raise ValueError("burst size must be at least 1")
        if self.burst > 1 and self.burst_gap_us <= 0:
            raise ValueError("bursts of more than one stimulus need a positive gap")

    @property
    def span_us(self) -> int:
        """Time from the first to the last stimulus of the pattern."""
        return (self.burst - 1) * self.burst_gap_us

    def to_dict(self) -> Dict[str, Any]:
        return {"offset_us": self.offset_us, "burst": self.burst, "burst_gap_us": self.burst_gap_us}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "StimulusPattern":
        return cls(
            offset_us=payload.get("offset_us", 0),
            burst=payload.get("burst", 1),
            burst_gap_us=payload.get("burst_gap_us", 0),
        )


@dataclass(frozen=True)
class CycleSpacing:
    """Inter-cycle spacing distribution: fixed, or seeded uniform jitter.

    With ``max_us`` ``None`` the spacing is exactly ``min_us`` every cycle;
    otherwise each gap is drawn uniformly from ``[min_us, max_us]`` using the
    compile seed's named stream, reproducing
    :meth:`repro.core.test_generation.RTestGenerator.randomized` draw for
    draw.
    """

    min_us: int
    max_us: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_us <= 0:
            raise ValueError("cycle spacing must be positive")
        if self.max_us is not None and self.max_us < self.min_us:
            raise ValueError("maximum spacing cannot be below the minimum")

    @property
    def jittered(self) -> bool:
        return self.max_us is not None and self.max_us > self.min_us

    def draw(self, rng) -> int:
        if self.jittered:
            return rng.randint(self.min_us, self.max_us)
        return self.min_us

    def to_dict(self) -> Dict[str, Any]:
        return {"min_us": self.min_us, "max_us": self.max_us}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CycleSpacing":
        return cls(min_us=payload["min_us"], max_us=payload.get("max_us"))


@dataclass(frozen=True)
class ScenarioProgram:
    """A declarative scenario: setup -> stimulus pattern -> teardown, per cycle.

    Each of the ``samples`` cycles emits the setup steps, the measured
    stimulus pattern and the teardown steps at their offsets from the cycle
    base; cycle bases advance by the (possibly jittered) spacing.  The
    program validates at construction time that consecutive measured stimuli
    can never be closer than the requirement's minimum stimulus separation —
    a generated schedule is correct by construction, never by luck.
    """

    name: str
    requirement: TimingRequirement
    spacing: CycleSpacing
    samples: int = 10
    start_offset_us: int = ms(10)
    setup: Tuple[StimulusStep, ...] = ()
    stimulus: StimulusPattern = field(default_factory=StimulusPattern)
    teardown: Tuple[StimulusStep, ...] = ()
    description: str = ""
    #: Named random stream the jittered spacing draws from.  The default is
    #: the stream :meth:`RTestGenerator.randomized` has always used, which is
    #: what keeps legacy scenarios byte-identical.
    seed_stream: str = "rtest"

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("program needs a name")
        if self.samples <= 0:
            raise ValueError("sample count must be positive")
        if self.start_offset_us < 0:
            raise ValueError("start offset must be non-negative")
        minimum = self.requirement.min_stimulus_separation_us
        if self.stimulus.burst > 1 and self.stimulus.burst_gap_us < minimum:
            raise ValueError(
                "burst gap is below the requirement's minimum stimulus separation "
                f"({self.stimulus.burst_gap_us} < {minimum})"
            )
        # Checked even for single-sample programs: the pure-stimulus path
        # feeds the spacing to RTestGenerator, which validates it against the
        # requirement unconditionally — failing here keeps programs correct
        # by construction instead of deferring the error to compile().
        if self.spacing.min_us - self.stimulus.span_us < minimum:
            raise ValueError(
                "cycle spacing minus the burst span is below the requirement's "
                f"minimum stimulus separation ({self.spacing.min_us} - "
                f"{self.stimulus.span_us} < {minimum})"
            )
        for step in (*self.setup, *self.teardown):
            if step.variable == self.requirement.stimulus.variable:
                raise ValueError(
                    f"step on {step.variable!r} would collide with the measured "
                    "stimulus variable; setup/teardown must use other variables"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_pure_stimulus(self) -> bool:
        """No setup/teardown, single stimulus at the cycle base.

        Pure programs lower through :class:`RTestGenerator`, the paper's
        original generation path.
        """
        return (
            not self.setup
            and not self.teardown
            and self.stimulus.burst == 1
            and self.stimulus.offset_us == 0
        )

    @property
    def stimuli_per_cycle(self) -> int:
        return len(self.setup) + self.stimulus.burst + len(self.teardown)

    def with_samples(self, samples: int) -> "ScenarioProgram":
        """A copy of this program with a different sample count."""
        return replace(self, samples=samples)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, seed: int = 0) -> RTestCase:
        """Lower this program to a concrete :class:`RTestCase` schedule.

        ``seed`` only matters when the spacing is jittered; fixed-spacing
        programs compile to the same schedule for every seed.
        """
        if self.is_pure_stimulus:
            return self._compile_via_generator(seed)
        rng = RandomSource(seed).stream(self.seed_stream)
        stimuli: List[Stimulus] = []
        base = self.start_offset_us
        for index in range(self.samples):
            if index:
                base += self.spacing.draw(rng)
            for step in self.setup:
                stimuli.append(Stimulus(base + step.offset_us, step.variable))
            for burst_index in range(self.stimulus.burst):
                stimuli.append(
                    Stimulus(
                        base + self.stimulus.offset_us + burst_index * self.stimulus.burst_gap_us,
                        self.requirement.stimulus.variable,
                    )
                )
            for step in self.teardown:
                stimuli.append(Stimulus(base + step.offset_us, step.variable))
        stimuli.sort(key=lambda stimulus: stimulus.at_us)
        return RTestCase(
            name=self.name,
            requirement=self.requirement,
            stimuli=tuple(stimuli),
            description=self.description
            or (
                f"{len(stimuli)} stimuli on {self.requirement.stimulus.variable} "
                f"for {self.requirement.requirement_id}"
            ),
        )

    def _compile_via_generator(self, seed: int) -> RTestCase:
        """Pure programs go through the core generator (byte-identical path)."""
        config = TestGenerationConfig(
            sample_count=self.samples,
            start_offset_us=self.start_offset_us,
            min_separation_us=self.spacing.min_us,
            max_separation_us=self.spacing.max_us,
            seed=seed,
        )
        generator = RTestGenerator(self.requirement, config)
        if self.spacing.jittered:
            case = generator.randomized(name=self.name, stream=self.seed_stream)
        else:
            case = generator.uniform(name=self.name)
        if self.description:
            case = replace(case, description=self.description)
        return case

    # ------------------------------------------------------------------
    # Canonical encoding
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable rendering (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "requirement": requirement_to_dict(self.requirement),
            "spacing": self.spacing.to_dict(),
            "samples": self.samples,
            "start_offset_us": self.start_offset_us,
            "setup": [step.to_dict() for step in self.setup],
            "stimulus": self.stimulus.to_dict(),
            "teardown": [step.to_dict() for step in self.teardown],
            "description": self.description,
            "seed_stream": self.seed_stream,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ScenarioProgram":
        return cls(
            name=payload["name"],
            requirement=requirement_from_dict(payload["requirement"]),
            spacing=CycleSpacing.from_dict(payload["spacing"]),
            samples=payload["samples"],
            start_offset_us=payload["start_offset_us"],
            setup=tuple(StimulusStep.from_dict(step) for step in payload.get("setup", ())),
            stimulus=StimulusPattern.from_dict(payload.get("stimulus", {})),
            teardown=tuple(
                StimulusStep.from_dict(step) for step in payload.get("teardown", ())
            ),
            description=payload.get("description", ""),
            seed_stream=payload.get("seed_stream", "rtest"),
        )
