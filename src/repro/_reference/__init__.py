"""Frozen seed-path implementations kept as equivalence oracles.

The runtime engine (the discrete-event kernel and the trace recording path)
was rebuilt for throughput; the byte-identity guarantee — same seeds, same
reports, bit for bit — is proven against the *seed* implementations captured
here verbatim.  ``seed_engine`` holds the pre-optimisation ``Simulator`` and
the object-per-event ``Trace``/``TraceRecorder``; the property tests in
``tests/test_runtime_engine.py`` and ``benchmarks/bench_runtime.py`` build
whole systems on top of them via the ``engine`` injection point of
:func:`repro.gpca.hardware.build_platform_bundle` and compare serialized
reports against the optimised engine.

Nothing here is part of the public API and nothing outside tests and
benchmarks should import it.
"""

from .seed_engine import (  # noqa: F401
    SEED_ENGINE,
    EngineProfile,
    SeedSimulator,
    SeedTrace,
    SeedTraceRecorder,
)
