"""Verbatim seed-path kernel and trace implementations (equivalence oracle).

These classes are byte-for-byte the implementations the repository shipped
before the hot-loop runtime engine rebuild, renamed ``Seed*`` and kept under
``repro._reference`` so that:

* the byte-identity property tests can run a whole implemented system on the
  *seed* engine and assert the optimised engine produces ``to_json()``-
  identical R-/M-reports, and
* ``benchmarks/bench_runtime.py`` can measure honest before/after numbers in
  one process, against the actual seed code rather than a reconstruction.

Do not "fix" or optimise anything in this module: its whole value is that it
does not change.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.four_variables import Event, EventKind
from ..integration.base import EngineProfile
from ..platform.devices.device import EventInputDevice, OutputDevice, StateInputDevice
from ..platform.kernel.simulator import SimulationError
from ..platform.kernel.time import SimClock, format_us
from ..platform.rtos.directives import Compute, Delay, Give, Receive, Send, Take
from ..platform.rtos.scheduler import RTOSScheduler, SchedulerError
from ..platform.rtos.task import Job, Task, TaskState


@dataclass(order=True)
class _QueueEntry:
    time_us: int
    priority: int
    sequence: int
    handle: "SeedEventHandle" = field(compare=False)


class SeedEventHandle:
    """Handle to a scheduled event; supports cancellation and inspection."""

    __slots__ = ("time_us", "priority", "callback", "label", "_cancelled", "_fired", "_owner")

    def __init__(
        self,
        time_us: int,
        priority: int,
        callback: Callable[[], None],
        label: str,
        owner: "Optional[SeedSimulator]" = None,
    ) -> None:
        self.time_us = time_us
        self.priority = priority
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._fired = False
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is harmless."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True when the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"SeedEventHandle({self.label!r} @ {format_us(self.time_us)}, {state})"


class SeedSimulator:
    """The seed discrete-event simulator (one event dispatched per ``step``)."""

    _COMPACTION_MIN_STALE = 64

    def __init__(self, start_us: int = 0) -> None:
        self._clock = SimClock(start_us)
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._processed = 0
        self._running = False
        self._stop_requested = False
        self._stale = 0  # cancelled entries still sitting in the heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._clock.now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (diagnostic)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue."""
        return len(self._queue) - self._stale

    def _note_cancelled(self) -> None:
        self._stale += 1
        if self._stale >= self._COMPACTION_MIN_STALE and self._stale * 2 > len(self._queue):
            self._queue = [entry for entry in self._queue if not entry.handle.cancelled]
            heapq.heapify(self._queue)
            self._stale = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    # The only permitted deviation from the shipped seed code: ``priority``
    # and ``label`` are positional-or-keyword (the shipped code made them
    # keyword-only) and the optimised kernel's ``reuse`` recycling hint is
    # accepted and ignored.  Both changes are call-signature compatibility
    # shims for the shared device/scheduler layers; neither affects a single
    # scheduled event.
    def schedule_at(
        self,
        time_us: int,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
        reuse: Optional[SeedEventHandle] = None,
    ) -> SeedEventHandle:
        if time_us < self._clock.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {format_us(time_us)} "
                f"in the past (now={format_us(self._clock.now)})"
            )
        handle = SeedEventHandle(time_us, priority, callback, label, owner=self)
        entry = _QueueEntry(time_us, priority, self._sequence, handle)
        self._sequence += 1
        heapq.heappush(self._queue, entry)
        return handle

    def schedule(
        self,
        delay_us: int,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
        reuse: Optional[SeedEventHandle] = None,
    ) -> SeedEventHandle:
        if delay_us < 0:
            raise SimulationError(f"negative delay {delay_us} for event {label!r}")
        return self.schedule_at(self._clock.now + delay_us, callback, priority=priority, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        self._stop_requested = True

    def step(self) -> bool:
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                self._stale -= 1
                continue
            self._clock.advance_to(entry.time_us)
            handle._fired = True
            self._processed += 1
            handle.callback()
            return True
        return False

    def run_until(self, time_us: int) -> None:
        if time_us < self._clock.now:
            raise SimulationError(
                f"run_until target {format_us(time_us)} is in the past "
                f"(now={format_us(self._clock.now)})"
            )
        self._running = True
        self._stop_requested = False
        try:
            while self._queue and not self._stop_requested:
                entry = self._queue[0]
                if entry.handle.cancelled:
                    heapq.heappop(self._queue)
                    self._stale -= 1
                    continue
                if entry.time_us > time_us:
                    break
                self.step()
            if not self._stop_requested and self._clock.now < time_us:
                self._clock.advance_to(time_us)
        finally:
            self._running = False

    def run(self, max_events: int = 1_000_000) -> None:
        self._running = True
        self._stop_requested = False
        fired = 0
        try:
            while not self._stop_requested:
                if fired >= max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely a livelock"
                    )
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SeedSimulator(now={format_us(self.now)}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )


class _IndexBucket:
    """Trace positions of one index slice plus their (sorted) timestamps."""

    __slots__ = ("positions", "times")

    def __init__(self) -> None:
        self.positions: List[int] = []
        self.times: List[int] = []

    def add(self, position: int, time_us: int) -> None:
        self.positions.append(position)
        self.times.append(time_us)

    def window(self, after_us: Optional[int], before_us: Optional[int]) -> Tuple[int, int]:
        lo = 0 if after_us is None else bisect_left(self.times, after_us)
        hi = len(self.times) if before_us is None else bisect_right(self.times, before_us)
        return lo, hi


_EMPTY_BUCKET = _IndexBucket()


class SeedTrace:
    """The seed object-per-event trace with lazily built bisect indexes."""

    __slots__ = (
        "_events",
        "_timestamps",
        "_by_kind",
        "_by_variable",
        "_by_kind_variable",
        "_indexed_upto",
        "_events_view",
    )

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._events: List[Event] = []
        self._timestamps: List[int] = []
        self._by_kind: Dict[EventKind, _IndexBucket] = {}
        self._by_variable: Dict[str, _IndexBucket] = {}
        self._by_kind_variable: Dict[Tuple[EventKind, str], _IndexBucket] = {}
        self._indexed_upto = 0
        self._events_view: Optional[Tuple[Event, ...]] = None
        if events is not None:
            self.extend(events)

    @classmethod
    def from_sorted(cls, events: Iterable[Event]) -> "SeedTrace":
        trace = cls()
        trace._events = list(events)
        trace._timestamps = [event.timestamp_us for event in trace._events]
        return trace

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def append(self, event: Event) -> None:
        timestamps = self._timestamps
        if timestamps and event.timestamp_us < timestamps[-1]:
            raise ValueError(
                "events must be appended in non-decreasing timestamp order: "
                f"{event.timestamp_us} < {timestamps[-1]}"
            )
        self._events.append(event)
        timestamps.append(event.timestamp_us)
        self._events_view = None

    def extend(self, events: Iterable[Event]) -> None:
        own_events = self._events
        timestamps = self._timestamps
        last = timestamps[-1] if timestamps else None
        for event in events:
            if last is not None and event.timestamp_us < last:
                raise ValueError(
                    "events must be appended in non-decreasing timestamp order: "
                    f"{event.timestamp_us} < {last}"
                )
            last = event.timestamp_us
            own_events.append(event)
            timestamps.append(last)
        self._events_view = None

    def _ensure_index(self) -> None:
        events = self._events
        upto = self._indexed_upto
        count = len(events)
        if upto == count:
            return
        by_kind = self._by_kind
        by_variable = self._by_variable
        by_kind_variable = self._by_kind_variable
        for position in range(upto, count):
            event = events[position]
            time_us = event.timestamp_us
            kind = event.kind
            variable = event.variable
            bucket = by_kind.get(kind)
            if bucket is None:
                bucket = by_kind[kind] = _IndexBucket()
            bucket.add(position, time_us)
            bucket = by_variable.get(variable)
            if bucket is None:
                bucket = by_variable[variable] = _IndexBucket()
            bucket.add(position, time_us)
            key = (kind, variable)
            bucket = by_kind_variable.get(key)
            if bucket is None:
                bucket = by_kind_variable[key] = _IndexBucket()
            bucket.add(position, time_us)
        self._indexed_upto = count

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Sequence[Event]:
        if self._events_view is None:
            self._events_view = tuple(self._events)
        return self._events_view

    @property
    def duration_us(self) -> int:
        if not self._timestamps:
            return 0
        return self._timestamps[-1] - self._timestamps[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _bucket_for(self, kind: Optional[EventKind], variable: Optional[str]) -> Optional[_IndexBucket]:
        if kind is None and variable is None:
            return None
        self._ensure_index()
        if kind is not None:
            if variable is not None:
                return self._by_kind_variable.get((kind, variable), _EMPTY_BUCKET)
            return self._by_kind.get(kind, _EMPTY_BUCKET)
        return self._by_variable.get(variable, _EMPTY_BUCKET)

    def select(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        bucket = self._bucket_for(kind, variable)
        if bucket is None:
            lo = 0 if after_us is None else bisect_left(self._timestamps, after_us)
            hi = len(self._timestamps) if before_us is None else bisect_right(self._timestamps, before_us)
            selected = self._events[lo:hi]
        else:
            lo, hi = bucket.window(after_us, before_us)
            events = self._events
            selected = [events[position] for position in bucket.positions[lo:hi]]
        if predicate is not None:
            return [event for event in selected if predicate(event)]
        return selected

    def first(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> Optional[Event]:
        bucket = self._bucket_for(kind, variable)
        events = self._events
        if bucket is None:
            lo = 0 if after_us is None else bisect_left(self._timestamps, after_us)
            hi = len(self._timestamps) if before_us is None else bisect_right(self._timestamps, before_us)
            for index in range(lo, hi):
                event = events[index]
                if predicate is None or predicate(event):
                    return event
            return None
        lo, hi = bucket.window(after_us, before_us)
        positions = bucket.positions
        for index in range(lo, hi):
            event = events[positions[index]]
            if predicate is None or predicate(event):
                return event
        return None

    def select_kinds(
        self,
        kinds: Iterable[EventKind],
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        self._ensure_index()
        slices: List[List[int]] = []
        for kind in dict.fromkeys(kinds):
            bucket = self._by_kind.get(kind)
            if bucket is None:
                continue
            lo, hi = bucket.window(after_us, before_us)
            if lo < hi:
                slices.append(bucket.positions[lo:hi])
        events = self._events
        if not slices:
            return []
        if len(slices) == 1:
            return [events[position] for position in slices[0]]
        return [events[position] for position in heapq.merge(*slices)]

    def restricted_to(self, kinds: Iterable[EventKind]) -> "SeedTrace":
        return SeedTrace.from_sorted(self.select_kinds(kinds))

    def value_changes(self, kind: EventKind, variable: str) -> List[Tuple[int, Any]]:
        changes: List[Tuple[int, Any]] = []
        previous: Any = object()
        for event in self.select(kind=kind, variable=variable):
            if event.value != previous:
                changes.append((event.timestamp_us, event.value))
                previous = event.value
        return changes


class SeedTraceRecorder:
    """The seed recorder: one :class:`Event` object constructed per record."""

    def __init__(self, clock: Callable[[], int]) -> None:
        self._clock = clock
        self.trace = SeedTrace()

    @property
    def now(self) -> int:
        return self._clock()

    def _record(self, kind: EventKind, variable: str, value: Any, **meta: Any) -> Event:
        event = Event(kind, variable, value, self._clock(), dict(meta))
        self.trace.append(event)
        return event

    def record_m(self, variable: str, value: Any, **meta: Any) -> Event:
        return self._record(EventKind.M, variable, value, **meta)

    def record_i(self, variable: str, value: Any, **meta: Any) -> Event:
        return self._record(EventKind.I, variable, value, **meta)

    def record_o(self, variable: str, value: Any, **meta: Any) -> Event:
        return self._record(EventKind.O, variable, value, **meta)

    def record_c(self, variable: str, value: Any, **meta: Any) -> Event:
        return self._record(EventKind.C, variable, value, **meta)

    def record_transition_start(self, transition_id: str, **meta: Any) -> Event:
        return self._record(EventKind.TRANSITION_START, transition_id, None, **meta)

    def record_transition_end(self, transition_id: str, **meta: Any) -> Event:
        return self._record(EventKind.TRANSITION_END, transition_id, None, **meta)

    def reset(self) -> None:
        self.trace = SeedTrace()


# ----------------------------------------------------------------------
# Seed RTOS scheduler
# ----------------------------------------------------------------------
class SeedRTOSScheduler(RTOSScheduler):
    """The pre-rebuild scheduler hot path, frozen method for method.

    Construction, task registration, blocking primitives' semantics and every
    invariant are shared with the production scheduler (inherited); the
    methods below are byte-for-byte the bodies the repository shipped before
    the hot-loop rebuild — per-call label formatting, per-segment completion
    closures, the isinstance directive chain and the factored-out dispatch
    round included — so the seed engine measures (and reproduces) the honest
    pre-rebuild cost of the whole platform stack, not just the kernel.
    """

    def activate(self, task: Task, delay_us: int = 0) -> None:
        if delay_us == 0:
            self._release(task)
        else:
            self.simulator.schedule(
                delay_us, lambda: self._release(task), label=f"activate:{task.name}"
            )

    def _schedule_release(self, task: Task, when_us: int) -> None:
        when_us = max(when_us, self.simulator.now)
        self.simulator.schedule_at(
            when_us, lambda: self._periodic_release(task), label=f"release:{task.name}"
        )

    def _periodic_release(self, task: Task) -> None:
        self._release(task)
        assert task.period_us is not None
        self._schedule_release(task, self.simulator.now + task.period_us)

    def _release(self, task: Task) -> None:
        if task.current_job is not None and not task.current_job.finished:
            task.stats.deadline_misses += 1
            return
        job = Job(task, task.job_factory(), self.simulator.now, self._job_sequence)
        self._job_sequence += 1
        task.current_job = job
        task.stats.activations += 1
        task.state = TaskState.READY
        self._make_ready(job)
        self._schedule_dispatch()

    def _pop_ready(self) -> Optional[Job]:
        if not self._ready:
            return None
        best_index = 0
        best_priority = self._ready[0].task.priority
        for index, job in enumerate(self._ready[1:], start=1):
            if job.task.priority > best_priority:
                best_priority = job.task.priority
                best_index = index
        return self._ready.pop(best_index)

    def _higher_priority_ready(self, priority: int) -> bool:
        highest = self._highest_ready_priority()
        return highest is not None and highest > priority

    def _schedule_dispatch(self) -> None:
        if self._in_dispatch:
            self._dispatch_again = True
            return
        self._in_dispatch = True
        try:
            while True:
                self._dispatch_again = False
                self._dispatch_once()
                if not self._dispatch_again:
                    break
        finally:
            self._in_dispatch = False

    def _dispatch_once(self) -> None:
        if self._running is not None:
            if self._higher_priority_ready(self._running.task.priority):
                self._preempt(self._running)
            else:
                return
        while self._running is None:
            job = self._pop_ready()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        task = job.task
        while True:
            if job.pending_compute_us is None:
                status = self._advance(job)
                if status == "finished" or status == "blocked":
                    return
                if status == "continue":
                    if self._higher_priority_ready(task.priority):
                        self._make_ready(job, front=True)
                        return
                    continue
            if job.pending_compute_us == 0:
                job.pending_compute_us = None
                continue
            if self._higher_priority_ready(task.priority):
                self._make_ready(job, front=True)
                return
            self._start_compute(job)
            return

    def _advance(self, job: Job) -> str:
        try:
            directive = job.generator.send(job.send_value)
        except StopIteration:
            self._finish_job(job)
            return "finished"
        job.send_value = None

        if isinstance(directive, Compute):
            job.pending_compute_us = directive.duration_us
            job.pending_label = directive.label
            return "compute"

        if isinstance(directive, Delay):
            self._block_for_delay(job, directive.duration_us)
            return "blocked"

        if isinstance(directive, Send):
            job.send_value = directive.queue.send(directive.item)
            if job.send_value:
                self._wake_queue_waiter(directive.queue)
            return "continue"

        if isinstance(directive, Receive):
            message = directive.queue.receive_nowait()
            if message is not None:
                job.send_value = message
                return "continue"
            if directive.timeout_us == 0:
                job.send_value = None
                return "continue"
            self._block_on_queue(job, directive.queue, directive.timeout_us)
            return "blocked"

        if isinstance(directive, Give):
            job.send_value = directive.semaphore.give()
            if job.send_value:
                self._wake_semaphore_waiter(directive.semaphore)
            return "continue"

        if isinstance(directive, Take):
            if directive.semaphore.try_take():
                job.send_value = True
                return "continue"
            if directive.timeout_us == 0:
                job.send_value = False
                return "continue"
            self._block_on_semaphore(job, directive.semaphore, directive.timeout_us)
            return "blocked"

        raise SchedulerError(
            f"task {job.task.name!r} yielded unsupported directive {directive!r}"
        )

    def _start_compute(self, job: Job) -> None:
        task = job.task
        if self._last_dispatched_task is not task and self.context_switch_us:
            job.pending_compute_us = (job.pending_compute_us or 0) + self.context_switch_us
        job.segment_started_at_us = self.simulator.now
        self._running = job
        task.state = TaskState.RUNNING
        self._last_dispatched_task = task
        job.completion_handle = self.simulator.schedule(
            job.pending_compute_us or 0,
            lambda: self._complete_segment(job),
            label=f"compute:{task.name}",
        )

    def _complete_segment(self, job: Job) -> None:
        task = job.task
        started = (
            job.segment_started_at_us
            if job.segment_started_at_us is not None
            else self.simulator.now
        )
        task.stats.cpu_time_us += self.simulator.now - started
        job.pending_compute_us = None
        job.segment_started_at_us = None
        job.completion_handle = None
        job.send_value = None
        self._running = None
        self._make_ready(job, front=True)
        self._schedule_dispatch()

    def _preempt(self, job: Job) -> None:
        task = job.task
        if job.completion_handle is not None:
            job.completion_handle.cancel()
            job.completion_handle = None
        started = (
            job.segment_started_at_us
            if job.segment_started_at_us is not None
            else self.simulator.now
        )
        elapsed = self.simulator.now - started
        task.stats.cpu_time_us += elapsed
        task.stats.preemptions += 1
        job.pending_compute_us = max(0, (job.pending_compute_us or 0) - elapsed)
        job.segment_started_at_us = None
        self._running = None
        self._make_ready(job, front=True)

    def _block_for_delay(self, job: Job, duration_us: int) -> None:
        job.task.state = TaskState.BLOCKED
        job.blocked_on = "delay"
        job.timeout_handle = self.simulator.schedule(
            duration_us, lambda: self._wake(job, None), label=f"delay:{job.task.name}"
        )

    def _block_on_queue(self, job: Job, queue, timeout_us: Optional[int]) -> None:
        job.task.state = TaskState.BLOCKED
        job.blocked_on = queue
        queue.add_waiter(job)
        if timeout_us is not None:
            job.timeout_handle = self.simulator.schedule(
                timeout_us,
                lambda: self._timeout_queue_wait(job, queue),
                label=f"qtimeout:{job.task.name}",
            )

    def _block_on_semaphore(self, job: Job, semaphore, timeout_us: Optional[int]) -> None:
        job.task.state = TaskState.BLOCKED
        job.blocked_on = semaphore
        semaphore.add_waiter(job)
        if timeout_us is not None:
            job.timeout_handle = self.simulator.schedule(
                timeout_us,
                lambda: self._timeout_semaphore_wait(job, semaphore),
                label=f"stimeout:{job.task.name}",
            )


# ----------------------------------------------------------------------
# Seed device drivers
# ----------------------------------------------------------------------
class _SeedEventInputSampling:
    """Pre-rebuild ``EventInputDevice`` driver loop (per-call label formatting,
    no re-arm handle recycling)."""

    def start(self) -> None:
        if self._sampling_started:
            return
        self._sampling_started = True
        self.simulator.schedule(
            self.sampling_offset_us, self._sample, label=f"sample:{self.name}"
        )

    def _sample(self) -> None:
        if self._pending_edges:
            latency = self.conversion_latency.sample(self._rng)
            self.simulator.schedule(
                latency,
                lambda edges=list(self._pending_edges): self._latch(edges),
                label=f"latch:{self.name}",
            )
            self._pending_edges.clear()
        self.simulator.schedule(self.sampling_period_us, self._sample, label=f"sample:{self.name}")


class _SeedStateInputSampling:
    """Pre-rebuild ``StateInputDevice`` driver loop: every sample schedules a
    latch event, changed value or not."""

    def start(self) -> None:
        if self._sampling_started:
            return
        self._sampling_started = True
        self.simulator.schedule(self.sampling_offset_us, self._sample, label=f"sample:{self.name}")

    def _sample(self) -> None:
        value = self._physical_value
        latency = self.conversion_latency.sample(self._rng)
        self.simulator.schedule(
            latency, lambda v=value: self._latch(v), label=f"latch:{self.name}"
        )
        self.simulator.schedule(self.sampling_period_us, self._sample, label=f"sample:{self.name}")

    def _latch(self, value: Any) -> None:
        self._latched_value = value


class _SeedOutputWrite:
    """Pre-rebuild ``OutputDevice`` write path (per-call label formatting)."""

    def write(self, value: Any) -> None:
        self.writes += 1
        self._commanded_value = value
        latency = self.actuation_latency.sample(self._rng)
        self.simulator.schedule(latency, lambda v=value: self._apply(v), label=f"actuate:{self.name}")


_SEED_DEVICE_CLASSES: Dict[type, type] = {}


def seed_device_class(cls: type) -> type:
    """Map a concrete device class to its seed-behaviour variant (cached).

    The variant subclasses the production class with the pre-rebuild driver
    methods installed ahead of it in the MRO, so construction parameters and
    everything outside the hot loop stay shared.
    """
    wrapped = _SEED_DEVICE_CLASSES.get(cls)
    if wrapped is None:
        if issubclass(cls, EventInputDevice):
            mixin = _SeedEventInputSampling
        elif issubclass(cls, StateInputDevice):
            mixin = _SeedStateInputSampling
        elif issubclass(cls, OutputDevice):
            mixin = _SeedOutputWrite
        else:
            _SEED_DEVICE_CLASSES[cls] = cls
            return cls
        wrapped = type(f"Seed{cls.__name__}", (mixin, cls), {"__module__": __name__})
        _SEED_DEVICE_CLASSES[cls] = wrapped
    return wrapped


#: The seed engine as an injectable profile (see ``build_platform_bundle``):
#: pre-rebuild kernel, trace recorder, RTOS scheduler and device drivers.
SEED_ENGINE = EngineProfile(
    name="seed",
    simulator_factory=SeedSimulator,
    recorder_factory=SeedTraceRecorder,
    scheduler_class=SeedRTOSScheduler,
    device_wrapper=seed_device_class,
)
