"""Model-mutant generation over :mod:`repro.model.statechart`.

Mutation analysis turns the R-/M-testing machinery from "does the correct
implementation conform?" into a measurement of *detection power*: seed a small
behavioural defect into the model, regenerate CODE(M), run the GPCA
requirement tests, and check whether any verdict changes (the mutant is
*killed*).  The operators are the classic timed-automata mutation set,
restricted to what the statechart vocabulary expresses:

* **timing** — scale a temporal trigger's tick bound by ±δ;
* **guard-negate** — replace a transition guard by its negation;
* **retarget** — redirect a transition to a different target state;
* **action-drop** — remove one assignment from a transition's action list.

A :class:`MutantSpec` carries *no callables* — only the operator and its
parameters — so it pickles across campaign worker processes; the mutated
chart (which may contain closures, e.g. negated guards) is rebuilt inside the
worker by :meth:`MutantSpec.apply`.  Generation is deterministic and
structurally deduplicated: candidates whose chart fingerprint equals the
original's or an earlier mutant's are discarded, and timing mutations of
``before`` bounds are excluded by default because generated code resolves
``before`` eagerly — mutating the bound yields a *known-equivalent* mutant
(the standard exclusion in mutation-testing practice).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.cache import chart_fingerprint
from ..model.statechart import Statechart, Transition
from ..model.temporal import Before

#: The operators :func:`generate_mutants` applies, in application order.
ALL_OPERATORS = ("timing", "guard-negate", "retarget", "action-drop")

#: Default relative deltas of the timing operator (new bound = round(ticks * scale)).
DEFAULT_TIMING_SCALES = (0.5, 1.5)


class MutantError(ValueError):
    """Raised when a mutant spec cannot be applied to a chart."""


@dataclass(frozen=True)
class MutantSpec:
    """One model mutation, picklable and re-applicable in any process.

    ``mutant_id`` is a stable human-readable identifier derived from the
    operator and its parameters (never from generation order), so kill-matrix
    rows keep their identity when the operator set changes.
    """

    operator: str
    transition: str
    mutant_id: str
    #: New tick bound (timing operator).
    ticks: Optional[int] = None
    #: New target state (retarget operator).
    target: Optional[str] = None
    #: Index of the dropped action (action-drop operator).
    action_index: Optional[int] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.operator not in ALL_OPERATORS:
            raise ValueError(
                f"unknown mutation operator {self.operator!r} (known: {ALL_OPERATORS})"
            )

    # ------------------------------------------------------------------
    def apply(self, chart: Statechart) -> Statechart:
        """Rebuild ``chart`` with this mutation applied (the chart is untouched)."""
        original = _find_transition(chart, self.transition)
        if self.operator == "timing":
            if original.temporal is None or self.ticks is None:
                raise MutantError(f"{self.mutant_id}: transition has no temporal trigger")
            mutated = replace(original, temporal=replace(original.temporal, ticks=self.ticks))
        elif self.operator == "guard-negate":
            guard = original.guard
            if guard is None:
                raise MutantError(f"{self.mutant_id}: transition has no guard to negate")
            mutated = replace(original, guard=lambda context, _g=guard: not _g(context))
        elif self.operator == "retarget":
            if self.target is None:
                raise MutantError(f"{self.mutant_id}: retarget needs a target state")
            mutated = replace(original, target=self.target)
        elif self.operator == "action-drop":
            index = self.action_index
            if index is None or not 0 <= index < len(original.actions):
                raise MutantError(f"{self.mutant_id}: action index out of range")
            actions = original.actions[:index] + original.actions[index + 1:]
            mutated = replace(original, actions=actions)
        else:  # pragma: no cover - __post_init__ guarantees the operators above
            raise MutantError(f"unknown operator {self.operator!r}")
        return _clone_chart(chart, {original.name: mutated})

    def to_dict(self) -> Dict[str, object]:
        return {
            "operator": self.operator,
            "transition": self.transition,
            "mutant_id": self.mutant_id,
            "ticks": self.ticks,
            "target": self.target,
            "action_index": self.action_index,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "MutantSpec":
        return cls(
            operator=payload["operator"],
            transition=payload["transition"],
            mutant_id=payload["mutant_id"],
            ticks=payload.get("ticks"),
            target=payload.get("target"),
            action_index=payload.get("action_index"),
            description=payload.get("description", ""),
        )


# ----------------------------------------------------------------------
# Chart surgery helpers
# ----------------------------------------------------------------------
def _find_transition(chart: Statechart, name: str) -> Transition:
    try:
        return chart.transition(name)
    except KeyError:
        raise MutantError(f"chart {chart.name!r} has no transition {name!r}") from None


def _clone_chart(chart: Statechart, replacements: Dict[str, Transition]) -> Statechart:
    """A structural copy of ``chart`` with named transitions replaced.

    The clone keeps the chart *name* so fingerprints reflect structure only —
    that is what makes fingerprint-based dedup meaningful (a mutation that
    does not change the structure hashes identically to the original).
    """
    clone = Statechart(chart.name)
    initial = chart.initial_state
    for state in chart.states:
        clone.add_state(state, initial=state.name == initial)
    for event in chart.input_events:
        clone.add_input_event(event)
    for variable in chart.output_variables:
        clone.add_output_variable(variable)
    for variable in chart.local_variables:
        clone.add_local_variable(variable)
    for transition in chart.transitions:
        clone.add_transition(replacements.get(transition.name, transition))
    return clone


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def _retarget_candidate(chart: Statechart, transition: Transition) -> Optional[str]:
    """The deterministic retarget for one transition.

    The replacement target is the state that follows the original target in
    declaration order (wrapping around), skipping the source and the original
    target; ``None`` when the chart is too small to offer one.
    """
    names = chart.state_names
    start = names.index(transition.target)
    for offset in range(1, len(names)):
        candidate = names[(start + offset) % len(names)]
        if candidate not in (transition.source, transition.target):
            return candidate
    return None


def generate_mutants(
    chart: Statechart,
    *,
    operators: Sequence[str] = ALL_OPERATORS,
    timing_scales: Sequence[float] = DEFAULT_TIMING_SCALES,
    include_equivalent: bool = False,
) -> Tuple[MutantSpec, ...]:
    """Generate the deduplicated mutant set of ``chart``.

    Deterministic: the result depends only on the chart structure and the
    options.  Structural dedup discards candidates whose mutated-chart
    fingerprint equals the original's or an earlier candidate's (e.g. a
    timing scale that rounds back to the original bound).

    ``include_equivalent`` re-admits the known-equivalent class excluded by
    default: timing mutations of ``before`` bounds, which generated code
    (eager ``before`` semantics) cannot distinguish from the original.
    """
    for operator in operators:
        if operator not in ALL_OPERATORS:
            raise ValueError(f"unknown mutation operator {operator!r} (known: {ALL_OPERATORS})")

    candidates: List[MutantSpec] = []
    for transition in chart.transitions:
        if "timing" in operators and transition.temporal is not None:
            if include_equivalent or not isinstance(transition.temporal, Before):
                for scale in timing_scales:
                    ticks = max(0, int(round(transition.temporal.ticks * scale)))
                    candidates.append(
                        MutantSpec(
                            operator="timing",
                            transition=transition.name,
                            mutant_id=f"timing:{transition.name}:{ticks}",
                            ticks=ticks,
                            description=(
                                f"{transition.name}: temporal bound "
                                f"{transition.temporal.ticks} -> {ticks} ticks"
                            ),
                        )
                    )
        if "guard-negate" in operators and transition.guard is not None:
            candidates.append(
                MutantSpec(
                    operator="guard-negate",
                    transition=transition.name,
                    mutant_id=f"negate:{transition.name}",
                    description=f"{transition.name}: guard negated",
                )
            )
        if "retarget" in operators:
            target = _retarget_candidate(chart, transition)
            if target is not None:
                candidates.append(
                    MutantSpec(
                        operator="retarget",
                        transition=transition.name,
                        mutant_id=f"retarget:{transition.name}:{target}",
                        target=target,
                        description=(
                            f"{transition.name}: target {transition.target} -> {target}"
                        ),
                    )
                )
        if "action-drop" in operators:
            for index, action in enumerate(transition.actions):
                candidates.append(
                    MutantSpec(
                        operator="action-drop",
                        transition=transition.name,
                        mutant_id=f"drop:{transition.name}:{index}:{action.variable}",
                        action_index=index,
                        description=(
                            f"{transition.name}: drop assignment #{index} "
                            f"({action.variable})"
                        ),
                    )
                )

    original_fingerprint = chart_fingerprint(chart)
    seen = {original_fingerprint}
    unique: List[MutantSpec] = []
    for spec in candidates:
        fingerprint = chart_fingerprint(spec.apply(chart))
        if fingerprint in seen:
            continue
        seen.add(fingerprint)
        unique.append(spec)
    return tuple(unique)
