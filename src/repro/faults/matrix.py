"""The kill-matrix engine: (faults × mutants × schemes × scenarios) campaigns.

A :class:`FaultMatrixSpec` expands a sensitivity-evaluation grid into the same
picklable :class:`repro.campaign.spec.RunSpec` units the stock campaigns use,
so the whole matrix fans through the existing parallel
:class:`repro.campaign.runner.CampaignRunner` unchanged — sharding, the
process-pool fallback and byte-identical aggregation all come for free.

Three kinds of grid point are generated:

* **baseline** — clean platform, original model: the reference verdicts;
* **fault** — one :class:`~repro.faults.models.FaultPlan` instrumented into
  the platform, original model: *is the seeded platform fault detected?*
* **mutant** — clean platform, one :class:`~repro.faults.mutants.MutantSpec`
  applied to the model before code generation: *is the seeded model defect
  killed?*

Baseline and faulted/mutated runs at the same ``(scheme, case)`` coordinate
share every derived seed, so the only difference between them is the injected
defect — a verdict change is attributable to the defect alone.  A fault is
**detected** (a mutant is **killed**) at a coordinate when the baseline run
passes there and the injected run does not; the :class:`KillMatrix` scores
detection/kill across coordinates, computes the mutation score and renders
the matrix tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..campaign.results import CampaignResult, RunRecord
from ..campaign.runner import CampaignRunner
from ..campaign.spec import CASE_BUILDERS, M_TEST_NONE, M_TEST_POLICIES, RunSpec, derive_seed
from ..systems import DEFAULT_SYSTEM, get_pack, model_system
from .models import FaultPlan
from .mutants import MutantSpec, generate_mutants

#: Grid-point roles, recorded per run for the scoring pass.
ROLE_BASELINE = "baseline"
ROLE_FAULT = "fault"
ROLE_MUTANT = "mutant"


@dataclass(frozen=True)
class FaultMatrixSpec:
    """The declarative kill-matrix grid (duck-type of ``CampaignSpec``).

    Implements the ``expand() / to_dict() / name / size`` surface the campaign
    runner and result aggregate consume, so a matrix runs through
    :class:`CampaignRunner` exactly like a stock campaign.
    """

    name: str = "kill-matrix"
    fault_plans: Tuple[FaultPlan, ...] = ()
    mutants: Tuple[MutantSpec, ...] = ()
    #: Schemes the platform-fault axis runs on (queue faults need scheme >= 2).
    fault_schemes: Tuple[int, ...] = (1, 2)
    #: Schemes the mutant axis runs on (a conformant scheme, so kills are
    #: attributable to the mutation rather than to platform timing).
    mutant_schemes: Tuple[int, ...] = (2,)
    cases: Tuple[str, ...] = tuple(sorted(CASE_BUILDERS))
    samples: int = 4
    base_seed: int = 0
    model: str = "fig2"
    m_test: str = M_TEST_NONE
    #: Registered system pack the whole matrix runs against.
    system: str = DEFAULT_SYSTEM

    def __post_init__(self) -> None:
        pack = get_pack(self.system)
        if not self.cases:
            raise ValueError("kill matrix needs at least one scenario")
        for plan in self.fault_plans:
            if plan.empty:
                # An empty plan would be classified as a baseline run and
                # silently vanish from the scoring — reject it up front.
                raise ValueError(f"fault plan {plan.name!r} is empty (baselines are implicit)")
        plan_names = [plan.name for plan in self.fault_plans]
        if len(set(plan_names)) != len(plan_names):
            raise ValueError("fault plan names must be unique (duplicate rows would merge)")
        mutant_ids = [mutant.mutant_id for mutant in self.mutants]
        if len(set(mutant_ids)) != len(mutant_ids):
            raise ValueError("mutant ids must be unique (duplicate rows would merge)")
        for case in self.cases:
            if case not in pack.case_builders:
                known = ", ".join(sorted(pack.case_builders))
                raise ValueError(f"unknown scenario {case!r} (known: {known})")
        for scheme in (*self.fault_schemes, *self.mutant_schemes):
            if scheme not in (1, 2, 3):
                raise ValueError(f"unknown implementation scheme {scheme!r}")
        if self.samples <= 0:
            raise ValueError("sample count must be positive")
        if model_system(self.model) != self.system:
            raise ValueError(
                f"model {self.model!r} does not belong to system {self.system!r}"
            )
        if self.m_test not in M_TEST_POLICIES:
            raise ValueError(f"unknown m_test policy {self.m_test!r}")

    # ------------------------------------------------------------------
    @property
    def baseline_schemes(self) -> Tuple[int, ...]:
        """Every scheme any axis touches (each needs a clean reference run)."""
        return tuple(sorted(set(self.fault_schemes) | set(self.mutant_schemes)))

    @property
    def size(self) -> int:
        baselines = len(self.baseline_schemes) * len(self.cases)
        faults = len(self.fault_plans) * len(self.fault_schemes) * len(self.cases)
        mutants = len(self.mutants) * len(self.mutant_schemes) * len(self.cases)
        return baselines + faults + mutants

    # ------------------------------------------------------------------
    def _seeds(self, scheme: int, case: str) -> Tuple[int, int]:
        """The (sut_seed, case_seed) shared by every run at one coordinate.

        Derivation mirrors :class:`CampaignSpec` — coordinates only (with the
        system folded in for non-default packs), never the injected defect —
        so baseline and injected runs differ *solely* in the defect.
        """
        case_key = case if self.system == DEFAULT_SYSTEM else f"{self.system}:{case}"
        sut_seed = derive_seed(self.base_seed, "sut", scheme, None, None, case_key)
        case_seed = derive_seed(self.base_seed, "case", case_key, self.samples)
        return sut_seed, case_seed

    def _run(self, index: int, scheme: int, case: str, *, faults=None, mutant=None) -> RunSpec:
        sut_seed, case_seed = self._seeds(scheme, case)
        return RunSpec(
            index=index,
            scheme=scheme,
            case=case,
            samples=self.samples,
            case_seed=case_seed,
            sut_seed=sut_seed,
            model=self.model,
            m_test=self.m_test,
            faults=faults,
            mutant=mutant,
            system=self.system,
        )

    def expand(self) -> Tuple[RunSpec, ...]:
        """Expand the matrix in a fixed order: baselines, faults, mutants."""
        runs: List[RunSpec] = []
        for scheme in self.baseline_schemes:
            for case in self.cases:
                runs.append(self._run(len(runs), scheme, case))
        for plan in self.fault_plans:
            for scheme in self.fault_schemes:
                for case in self.cases:
                    runs.append(self._run(len(runs), scheme, case, faults=plan))
        for mutant in self.mutants:
            for scheme in self.mutant_schemes:
                for case in self.cases:
                    runs.append(self._run(len(runs), scheme, case, mutant=mutant))
        return tuple(runs)

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "base_seed": self.base_seed,
            "model": self.model,
            "m_test": self.m_test,
            "samples": self.samples,
            "size": self.size,
            "cases": list(self.cases),
            "fault_schemes": list(self.fault_schemes),
            "mutant_schemes": list(self.mutant_schemes),
            "fault_plans": [plan.to_dict() for plan in self.fault_plans],
            "mutants": [mutant.to_dict() for mutant in self.mutants],
        }
        # The default system is omitted so pre-systems serialized matrices
        # stay byte-identical.
        if self.system != DEFAULT_SYSTEM:
            payload["system"] = self.system
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultMatrixSpec":
        """Rebuild a matrix spec from :meth:`to_dict` output (``size`` is derived)."""
        return cls(
            name=payload["name"],
            base_seed=int(payload.get("base_seed", 0)),
            model=payload.get("model", "fig2"),
            m_test=payload.get("m_test", M_TEST_NONE),
            samples=int(payload.get("samples", 4)),
            cases=tuple(payload.get("cases", ())),
            fault_schemes=tuple(payload.get("fault_schemes", ())),
            mutant_schemes=tuple(payload.get("mutant_schemes", ())),
            fault_plans=tuple(FaultPlan.from_dict(plan) for plan in payload.get("fault_plans", ())),
            mutants=tuple(MutantSpec.from_dict(mutant) for mutant in payload.get("mutants", ())),
            system=payload.get("system", DEFAULT_SYSTEM),
        )


def default_matrix_spec(
    *,
    samples: int = 4,
    base_seed: int = 0,
    model: Optional[str] = None,
    system: str = DEFAULT_SYSTEM,
    fault_schemes: Tuple[int, ...] = (1, 2),
    mutant_schemes: Tuple[int, ...] = (2,),
) -> FaultMatrixSpec:
    """The stock kill matrix: a pack's fault suite × its model's mutants.

    ``model`` defaults to the system's default model.  Mutants are generated
    from — and, inside the workers, re-applied to — the same named model, and
    everything else (fault suite, seeds) is deterministic, so the matrix
    verdicts are a pure function of the arguments.
    """
    pack = get_pack(system)
    if model is None:
        model = pack.default_model
    if model not in pack.model_builders:
        known = ", ".join(sorted(pack.model_builders))
        raise ValueError(f"unknown model {model!r} for system {system!r} (known: {known})")
    chart = pack.model_builders[model]()
    return FaultMatrixSpec(
        name="kill-matrix",
        fault_plans=tuple(pack.fault_suite()),
        mutants=generate_mutants(chart),
        fault_schemes=fault_schemes,
        mutant_schemes=mutant_schemes,
        cases=tuple(sorted(pack.case_builders)),
        samples=samples,
        base_seed=base_seed,
        model=model,
        system=system,
    )


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------
def _record_role(record: RunRecord) -> str:
    if record.spec.mutant is not None:
        return ROLE_MUTANT
    if record.spec.faults is not None and not record.spec.faults.empty:
        return ROLE_FAULT
    return ROLE_BASELINE


@dataclass(frozen=True)
class MatrixCell:
    """One scored (injected run, coordinate) cell of the kill matrix."""

    scheme: int
    case: str
    baseline_passed: bool
    injected_passed: bool
    violations: int
    timeouts: int

    @property
    def killed(self) -> bool:
        """The defect changed a passing verdict at this coordinate."""
        return self.baseline_passed and not self.injected_passed

    @property
    def scoreable(self) -> bool:
        """Only coordinates whose baseline passes can attribute a kill."""
        return self.baseline_passed

    def to_dict(self) -> Dict[str, object]:
        return {
            "scheme": self.scheme,
            "case": self.case,
            "baseline_passed": self.baseline_passed,
            "injected_passed": self.injected_passed,
            "killed": self.killed,
            "violations": self.violations,
            "timeouts": self.timeouts,
        }


@dataclass
class KillMatrix:
    """The scored kill matrix built from one matrix campaign's records."""

    spec: FaultMatrixSpec
    campaign: CampaignResult
    #: fault-plan name -> coordinate cells.
    fault_cells: Dict[str, List[MatrixCell]] = field(default_factory=dict)
    #: mutant id -> coordinate cells.
    mutant_cells: Dict[str, List[MatrixCell]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @classmethod
    def from_campaign(cls, spec: FaultMatrixSpec, campaign: CampaignResult) -> "KillMatrix":
        baselines: Dict[Tuple[int, str], RunRecord] = {}
        for record in campaign.records:
            if _record_role(record) == ROLE_BASELINE:
                baselines[(record.spec.scheme, record.spec.case)] = record

        matrix = cls(spec=spec, campaign=campaign)
        for record in campaign.records:
            role = _record_role(record)
            if role == ROLE_BASELINE:
                continue
            coordinate = (record.spec.scheme, record.spec.case)
            baseline = baselines.get(coordinate)
            cell = MatrixCell(
                scheme=record.spec.scheme,
                case=record.spec.case,
                baseline_passed=baseline.passed if baseline is not None else False,
                injected_passed=record.passed,
                violations=record.violation_count,
                timeouts=record.timeout_count,
            )
            if role == ROLE_FAULT:
                matrix.fault_cells.setdefault(record.spec.faults.name, []).append(cell)
            else:
                matrix.mutant_cells.setdefault(record.spec.mutant.mutant_id, []).append(cell)
        return matrix

    # ------------------------------------------------------------------
    # Fault-side scoring
    # ------------------------------------------------------------------
    def detected_faults(self) -> List[str]:
        return [name for name, cells in self.fault_cells.items() if any(c.killed for c in cells)]

    def undetected_faults(self) -> List[str]:
        detected = set(self.detected_faults())
        return [name for name in self.fault_cells if name not in detected]

    def fault_detecting_cases(self, name: str) -> List[str]:
        """The scenarios (requirements) that detect one fault plan."""
        seen: List[str] = []
        for cell in self.fault_cells.get(name, ()):
            if cell.killed and cell.case not in seen:
                seen.append(cell.case)
        return seen

    # ------------------------------------------------------------------
    # Mutant-side scoring
    # ------------------------------------------------------------------
    def killed_mutants(self) -> List[str]:
        return [mid for mid, cells in self.mutant_cells.items() if any(c.killed for c in cells)]

    def surviving_mutants(self) -> List[str]:
        killed = set(self.killed_mutants())
        return [mid for mid in self.mutant_cells if mid not in killed]

    @property
    def mutation_score(self) -> Optional[float]:
        """Killed mutants over all mutants (``None`` with an empty mutant axis)."""
        if not self.mutant_cells:
            return None
        return len(self.killed_mutants()) / len(self.mutant_cells)

    # ------------------------------------------------------------------
    # Rendering and export
    # ------------------------------------------------------------------
    def _render_table(self, title: str, cells_by_row: Dict[str, List[MatrixCell]]) -> List[str]:
        columns: List[Tuple[int, str]] = []
        for cells in cells_by_row.values():
            for cell in cells:
                key = (cell.scheme, cell.case)
                if key not in columns:
                    columns.append(key)
        columns.sort()
        width = max([len(row) for row in cells_by_row] + [8])
        # Column width follows the longest header so no case name is ever
        # truncated (the two empty-reservoir scenarios would otherwise
        # collide into identical headers).
        headers = [f"s{scheme}:{case}" for scheme, case in columns]
        column_width = max([len(header) for header in headers] + [14])
        header = f"{title:<{width}} | " + " | ".join(
            f"{label:<{column_width}}" for label in headers
        )
        lines = [header, "-" * len(header)]
        for row, cells in cells_by_row.items():
            by_coord = {(c.scheme, c.case): c for c in cells}
            rendered = []
            for key in columns:
                cell = by_coord.get(key)
                if cell is None:
                    label = ""
                elif not cell.scoreable:
                    label = "(base fails)"
                elif cell.killed:
                    label = f"KILL v{cell.violations}/MAX{cell.timeouts}"
                else:
                    label = "-"
                rendered.append(f"{label:<{column_width}}")
            lines.append(f"{row:<{width}} | " + " | ".join(rendered))
        return lines

    def render(self) -> str:
        lines: List[str] = []
        if self.fault_cells:
            lines.extend(self._render_table("fault plan", self.fault_cells))
            detected = self.detected_faults()
            lines.append(
                f"fault classes detected: {len(detected)}/{len(self.fault_cells)}"
                + (
                    f" (undetected: {', '.join(self.undetected_faults())})"
                    if self.undetected_faults()
                    else ""
                )
            )
        if self.mutant_cells:
            if lines:
                lines.append("")
            lines.extend(self._render_table("mutant", self.mutant_cells))
            score = self.mutation_score
            lines.append(
                f"mutation score: {len(self.killed_mutants())}/{len(self.mutant_cells)}"
                f" ({score:.0%})"
                + (
                    f" (surviving: {', '.join(self.surviving_mutants())})"
                    if self.surviving_mutants()
                    else ""
                )
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """The canonical (deterministic) scoring payload."""
        return {
            "spec": self.spec.to_dict(),
            "faults": {
                name: {
                    "detected": any(cell.killed for cell in cells),
                    "detected_by": self.fault_detecting_cases(name),
                    "cells": [cell.to_dict() for cell in cells],
                }
                for name, cells in self.fault_cells.items()
            },
            "mutants": {
                mutant_id: {
                    "killed": any(cell.killed for cell in cells),
                    "cells": [cell.to_dict() for cell in cells],
                }
                for mutant_id, cells in self.mutant_cells.items()
            },
            "mutation_score": self.mutation_score,
            "detected_fault_count": len(self.detected_faults()),
            "fault_plan_count": len(self.fault_cells),
        }


def run_kill_matrix(spec: FaultMatrixSpec, *, workers: int = 1) -> KillMatrix:
    """Execute a kill-matrix grid through the parallel campaign runner.

    Returns the scored :class:`KillMatrix`; the raw per-run campaign aggregate
    stays available as ``matrix.campaign`` (byte-identical for any worker
    count, like every campaign).
    """
    campaign = CampaignRunner(spec, workers=workers).run()
    return KillMatrix.from_campaign(spec, campaign)
