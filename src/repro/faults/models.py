"""Composable, seed-deterministic platform fault models.

A :class:`FaultPlan` is a declarative bundle of fault models injected into an
*implemented system* at the platform layer.  Faults are applied via **wrapper
hooks**: each model wraps an existing platform entry point (the DES kernel's
``schedule``, the scheduler's directive advance, queue ``send``, a device's
``read``/``poll``) on one concrete system instance.  Nothing inside
``repro.platform`` is modified — an empty plan performs no wrapping at all, so
the un-faulted platform stays byte-identical to the stock one (pinned by
``tests/faults/test_noop.py``).

Determinism: every stochastic fault draws from a named stream of one
:class:`repro.platform.kernel.random.RandomSource` seed handed to
:meth:`FaultPlan.instrument`, so a faulted run is a pure function of
``(system seed, fault plan, fault seed)`` — which is what lets the kill-matrix
engine shard faulted runs across worker processes and still aggregate
byte-identically.

The fault classes model the classic timing-fault taxonomy of embedded
platforms:

* :class:`ClockDriftFault` — the platform clock runs slow/fast: every
  *relative* delay scheduled on the DES kernel is scaled, while the physical
  environment's absolute-time stimuli stay put;
* :class:`ExecutionInflationFault` — WCET underestimation: compute segments
  are inflated by a factor and sporadically hit by overruns drawn from a
  :class:`~repro.platform.kernel.random.JitterModel`;
* :class:`QueueFault` — lossy / laggy / reordering IPC on one named RTOS
  queue;
* :class:`PriorityInversionFault` — periodic windows during which a
  top-priority hog runs, emulating an unbounded priority-inversion window
  blocking the CODE(M) thread;
* :class:`SensorStuckFault` / :class:`SensorGlitchFault` — input devices whose
  driver-visible value freezes, or whose detected events are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, ClassVar, Dict, Optional, Tuple

from ..platform.kernel.random import JitterModel, RandomSource
from ..platform.kernel.time import ms


def _jitter_to_dict(model: JitterModel) -> Dict[str, int]:
    return {
        "nominal_us": model.nominal_us,
        "plus_us": model.plus_us,
        "minus_us": model.minus_us,
    }


def _jitter_from_dict(payload: Dict[str, int]) -> JitterModel:
    return JitterModel(
        nominal_us=payload["nominal_us"],
        plus_us=payload.get("plus_us", 0),
        minus_us=payload.get("minus_us", 0),
    )


@dataclass(frozen=True)
class FaultModel:
    """Base class of all platform fault models.

    Subclasses define ``kind`` (a stable string used by serialization and the
    kill-matrix tables) and implement :meth:`instrument`, which wraps the
    relevant hook on one concrete system.  Models are frozen dataclasses of
    built-in types (plus :class:`JitterModel`, itself frozen), so fault plans
    pickle across campaign worker processes unchanged.
    """

    kind: ClassVar[str] = "base"

    def instrument(self, system, rng) -> None:  # pragma: no cover - abstract hook
        """Wrap the fault into ``system``; ``rng`` is this fault's named stream."""
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable description used by CLI listings."""
        return self.kind

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        for spec in fields(self):
            value = getattr(self, spec.name)
            payload[spec.name] = _jitter_to_dict(value) if isinstance(value, JitterModel) else value
        return payload


@dataclass(frozen=True)
class ClockDriftFault(FaultModel):
    """The platform clock runs slow (or fast) by a fractional rate error.

    Implemented as a wrapper on the DES kernel's *relative* ``schedule``:
    every software-side delay (device sampling periods, compute segment
    completions, blocking timeouts, actuation latencies) is scaled by
    ``1 + drift``, while absolute-time events — the environment's m-event
    stimuli, periodic task releases — are untouched.  The net effect is that
    all software activity slows relative to the physical timeline, exactly
    the failure a mis-trimmed oscillator produces.
    """

    kind: ClassVar[str] = "clock-drift"

    #: Fractional rate error; ``1.0`` means relative delays take twice as long.
    drift: float = 0.5

    def __post_init__(self) -> None:
        if self.drift <= -1.0:
            raise ValueError("clock drift must keep delays positive (drift > -1)")

    def instrument(self, system, rng) -> None:
        simulator = system.bundle.simulator
        original = simulator.schedule
        factor = 1.0 + self.drift

        # Mirrors Simulator.schedule's full signature (positional-or-keyword
        # priority/label plus the reuse recycling hint) so the hot-path
        # positional call sites behave identically under drift.
        def drifted_schedule(delay_us, callback, priority=0, label="", reuse=None):
            return original(
                int(round(delay_us * factor)), callback, priority, label, reuse
            )

        simulator.schedule = drifted_schedule

        # The optimised kernel's periodic events (device sampling loops)
        # re-arm inside the kernel with the period stored at registration, so
        # the drift must be applied there: scaling both the initial delay and
        # the period reproduces exactly what per-period drifted ``schedule``
        # re-arms would do (each period adds ``round(period * factor)``).
        original_periodic = getattr(simulator, "schedule_periodic", None)
        if original_periodic is not None:

            def drifted_periodic(delay_us, period_us, callback, priority=0, label=""):
                return original_periodic(
                    int(round(delay_us * factor)),
                    int(round(period_us * factor)),
                    callback,
                    priority,
                    label,
                )

            simulator.schedule_periodic = drifted_periodic

    def describe(self) -> str:
        return f"clock-drift(drift={self.drift:+g}, relative delays x{1 + self.drift:g})"


@dataclass(frozen=True)
class ExecutionInflationFault(FaultModel):
    """Compute segments run longer than budgeted (WCET underestimation).

    Wraps the scheduler's directive advance: whenever a task starts a compute
    segment, the pending duration is multiplied by ``factor`` and, with
    probability ``overrun_probability``, additionally hit by an overrun drawn
    from the ``overrun`` jitter model (seeded, hence reproducible).  ``task``
    restricts the fault to task names carrying that substring (``None`` = all
    tasks).
    """

    kind: ClassVar[str] = "exec-inflation"

    factor: float = 2.0
    task: Optional[str] = None
    overrun: Optional[JitterModel] = None
    overrun_probability: float = 0.0

    def __post_init__(self) -> None:
        if self.factor < 0:
            raise ValueError("inflation factor must be non-negative")
        if not 0.0 <= self.overrun_probability <= 1.0:
            raise ValueError("overrun probability must be in [0, 1]")

    def instrument(self, system, rng) -> None:
        scheduler = system.scheduler
        original = scheduler._advance
        factor = self.factor
        overrun = self.overrun
        overrun_probability = self.overrun_probability
        wanted = self.task

        def inflated_advance(job):
            status = original(job)
            if status == "compute" and (wanted is None or wanted in job.task.name):
                pending = int(round((job.pending_compute_us or 0) * factor))
                if overrun is not None and rng.random() < overrun_probability:
                    pending += overrun.sample(rng)
                job.pending_compute_us = pending
            return status

        scheduler._advance = inflated_advance

    def describe(self) -> str:
        scope = self.task or "all tasks"
        extra = ""
        if self.overrun is not None and self.overrun_probability > 0:
            extra = (
                f", overrun ~{self.overrun.nominal_us / 1000:g}ms "
                f"p={self.overrun_probability:g}"
            )
        return f"exec-inflation(x{self.factor:g} on {scope}{extra})"


@dataclass(frozen=True)
class QueueFault(FaultModel):
    """Lossy, laggy or reordering IPC on one named RTOS message queue.

    Queues are created by the integration scheme during ``build()``, after
    instrumentation time — so this fault wraps the scheduler's
    ``create_queue`` and instruments matching queues as they come into
    existence.  Per message (seeded): with ``drop_probability`` the message is
    silently lost (the sender still sees success — a lossy driver); else with
    ``delay_probability`` it is re-sent ``delay_us`` later through the
    scheduler's ISR path (waking blocked receivers); else with
    ``reorder_probability`` it jumps the FIFO.  Schemes without queues
    (scheme 1) are unaffected.
    """

    kind: ClassVar[str] = "queue"

    #: Substring match against the queue name ("i_events", "o_events").
    queue: str = "i_events"
    drop_probability: float = 0.0
    delay_us: int = 0
    delay_probability: float = 0.0
    reorder_probability: float = 0.0

    def __post_init__(self) -> None:
        for name in ("drop_probability", "delay_probability", "reorder_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1]")
        if self.delay_us < 0:
            raise ValueError("queue delay must be non-negative")
        if self.delay_probability > 0 and self.delay_us == 0:
            # Without this, the delay branch is a silent no-op and the kill
            # matrix would report the misconfigured fault as "undetected".
            raise ValueError("delay_probability > 0 requires a positive delay_us")
        total = self.drop_probability + self.delay_probability + self.reorder_probability
        if total > 1.0:
            # The three outcomes are disjoint slices of one roll; a sum above
            # one silently caps the later slices at a different rate than
            # configured.
            raise ValueError(f"drop+delay+reorder probabilities must sum to <= 1 (got {total:g})")

    def instrument(self, system, rng) -> None:
        scheduler = system.scheduler
        simulator = system.bundle.simulator
        original_create = scheduler.create_queue
        fault = self

        def faulted_create_queue(name, capacity=None):
            queue = original_create(name, capacity)
            if fault.queue in name:
                fault._wrap_queue(queue, scheduler, simulator, rng)
            return queue

        scheduler.create_queue = faulted_create_queue

    def _wrap_queue(self, queue, scheduler, simulator, rng) -> None:
        original_send = queue.send
        fault = self

        def deliver_late(item):
            # Bypass the wrapper on redelivery so a delayed message is not
            # dropped or delayed a second time, then wake blocked receivers
            # the way an ISR-path send would.
            if original_send(item):
                scheduler._wake_queue_waiter(queue)
                scheduler._schedule_dispatch()

        def faulted_send(item):
            roll = rng.random()
            if roll < fault.drop_probability:
                # Silent loss: the sender believes the send succeeded.
                return True
            roll -= fault.drop_probability
            if fault.delay_us > 0 and roll < fault.delay_probability:
                simulator.schedule(
                    fault.delay_us,
                    lambda: deliver_late(item),
                    label=f"fault:queue-delay:{queue.name}",
                )
                return True
            roll -= fault.delay_probability
            accepted = original_send(item)
            if accepted and roll < fault.reorder_probability and len(queue._items) > 1:
                queue._items.appendleft(queue._items.pop())
            return accepted

        queue.send = faulted_send

    def describe(self) -> str:
        parts = []
        if self.drop_probability:
            parts.append(f"drop p={self.drop_probability:g}")
        if self.delay_probability and self.delay_us:
            parts.append(f"delay {self.delay_us / 1000:g}ms p={self.delay_probability:g}")
        if self.reorder_probability:
            parts.append(f"reorder p={self.reorder_probability:g}")
        return f"queue({self.queue!r}: {', '.join(parts) or 'no-op'})"


@dataclass(frozen=True)
class PriorityInversionFault(FaultModel):
    """Periodic windows during which a top-priority hog blocks everything.

    Registers one extra periodic task at priority ``priority`` (above every
    stock task of all three schemes) burning ``window`` of CPU per ``period_us``
    — the observable effect of an unbounded priority-inversion window, where a
    resource-holding peer runs effectively above the CODE(M) thread.
    """

    kind: ClassVar[str] = "priority-inversion"

    period_us: int = ms(80)
    window: JitterModel = field(default_factory=lambda: JitterModel(ms(35), ms(10), ms(10)))
    offset_us: int = ms(5)
    priority: int = 99

    def __post_init__(self) -> None:
        if self.period_us <= 0:
            raise ValueError("inversion period must be positive")

    def instrument(self, system, rng) -> None:
        from ..platform.rtos.directives import Compute

        window = self.window

        def hog_job():
            yield Compute(window.sample(rng), label="fault:inversion-window")

        system.scheduler.create_task(
            "fault_inversion_hog",
            priority=self.priority,
            job_factory=hog_job,
            period_us=self.period_us,
            offset_us=self.offset_us,
        )

    def describe(self) -> str:
        return (
            f"priority-inversion(window ~{self.window.nominal_us / 1000:g}ms "
            f"every {self.period_us / 1000:g}ms)"
        )


@dataclass(frozen=True)
class SensorStuckFault(FaultModel):
    """An input device freezes from ``from_us`` on.

    For level sensors (``read``) the driver-visible value sticks at
    ``stuck_value``; for edge devices (``poll``) detected events are swallowed
    — a stuck button.  ``device`` names the :class:`PumpHardware` attribute
    (``"bolus_button"``, ``"reservoir_sensor"``, ...).
    """

    kind: ClassVar[str] = "sensor-stuck"

    device: str = "bolus_button"
    stuck_value: Any = False
    from_us: int = 0

    def instrument(self, system, rng) -> None:
        simulator = system.bundle.simulator
        device = getattr(system.bundle.hardware, self.device)
        start = self.from_us
        stuck_value = self.stuck_value
        if hasattr(device, "read"):
            original_read = device.read

            def stuck_read():
                if simulator.now >= start:
                    return stuck_value
                return original_read()

            device.read = stuck_read
        if hasattr(device, "poll"):
            original_poll = device.poll

            def stuck_poll():
                events = original_poll()
                if simulator.now >= start:
                    return []
                return events

            device.poll = stuck_poll

    def describe(self) -> str:
        return f"sensor-stuck({self.device} at {self.stuck_value!r} from {self.from_us / 1000:g}ms)"


@dataclass(frozen=True)
class SensorGlitchFault(FaultModel):
    """An input device intermittently loses detections.

    Each polled event (edge devices) or read sample (level sensors) is dropped
    — respectively replaced by the device's inactive value — with the seeded
    ``drop_probability``.
    """

    kind: ClassVar[str] = "sensor-glitch"

    device: str = "clear_alarm_button"
    drop_probability: float = 0.5
    inactive_value: Any = False

    def __post_init__(self) -> None:
        if not 0.0 <= self.drop_probability <= 1.0:
            raise ValueError("drop probability must be in [0, 1]")

    def instrument(self, system, rng) -> None:
        device = getattr(system.bundle.hardware, self.device)
        probability = self.drop_probability
        inactive = self.inactive_value
        if hasattr(device, "poll"):
            original_poll = device.poll

            def glitched_poll():
                return [event for event in original_poll() if rng.random() >= probability]

            device.poll = glitched_poll
        elif hasattr(device, "read"):
            original_read = device.read

            def glitched_read():
                value = original_read()
                if rng.random() < probability:
                    return inactive
                return value

            device.read = glitched_read

    def describe(self) -> str:
        return f"sensor-glitch({self.device}, drop p={self.drop_probability:g})"


#: kind -> fault class, for :func:`fault_from_dict`.
FAULT_KINDS = {
    cls.kind: cls
    for cls in (
        ClockDriftFault,
        ExecutionInflationFault,
        QueueFault,
        PriorityInversionFault,
        SensorStuckFault,
        SensorGlitchFault,
    )
}


def fault_from_dict(payload: Dict[str, Any]) -> FaultModel:
    """Rebuild one fault model from its canonical dict."""
    kind = payload.get("kind")
    try:
        cls = FAULT_KINDS[kind]
    except KeyError:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ValueError(f"unknown fault kind {kind!r} (known: {known})") from None
    kwargs = {}
    for spec in fields(cls):
        if spec.name not in payload:
            continue
        value = payload[spec.name]
        # Convert only fields *declared* as JitterModel: sniffing the value's
        # shape would misread Any-typed fields (e.g. a dict stuck_value).
        if isinstance(value, dict) and "JitterModel" in str(spec.type):
            value = _jitter_from_dict(value)
        kwargs[spec.name] = value
    return cls(**kwargs)


@dataclass(frozen=True)
class FaultPlan:
    """A named, composable bundle of fault models.

    The empty plan is a **strict no-op**: :meth:`instrument` returns without
    touching the system, so traces and R-/M-test reports stay byte-identical
    to the un-instrumented platform (pinned by ``tests/faults/test_noop.py``).
    """

    faults: Tuple[FaultModel, ...] = ()
    name: str = "baseline"

    @property
    def empty(self) -> bool:
        return not self.faults

    def instrument(self, system, *, seed: int = 0):
        """Apply every fault of the plan to ``system`` (returned for chaining).

        Each fault draws from its own named stream of ``seed``, so adding a
        fault to a plan never perturbs the draws of the existing ones.
        """
        if not self.faults:
            return system
        source = RandomSource(seed).fork("faults")
        for index, fault in enumerate(self.faults):
            fault.instrument(system, source.stream(f"{index}:{fault.kind}"))
        return system

    def describe(self) -> str:
        if not self.faults:
            return f"{self.name}: (no faults)"
        return f"{self.name}: " + "; ".join(fault.describe() for fault in self.faults)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "faults": [fault.to_dict() for fault in self.faults]}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "FaultPlan":
        return cls(
            faults=tuple(fault_from_dict(entry) for entry in payload.get("faults", ())),
            name=payload.get("name", "baseline"),
        )


def default_fault_suite() -> Tuple[FaultPlan, ...]:
    """The stock seeded fault suite, one plan per platform fault class.

    Severities are deliberately aggressive — each class is meant to be
    *detectable* by at least one GPCA requirement on at least one
    implementation scheme, which ``benchmarks/bench_faults.py`` records in
    ``BENCH_faults.json`` on every run.
    """
    return (
        FaultPlan((ClockDriftFault(drift=1.5),), name="clock-drift"),
        FaultPlan(
            (
                ExecutionInflationFault(
                    factor=3.0,
                    overrun=JitterModel(ms(30), ms(8), ms(8)),
                    overrun_probability=0.25,
                ),
            ),
            name="exec-inflation",
        ),
        FaultPlan((QueueFault(queue="i_events", drop_probability=0.7),), name="queue-loss"),
        FaultPlan(
            (QueueFault(queue="o_events", delay_us=ms(400), delay_probability=0.8),),
            name="queue-delay",
        ),
        FaultPlan((PriorityInversionFault(),), name="priority-inversion"),
        FaultPlan((SensorStuckFault(device="bolus_button"),), name="sensor-stuck"),
        FaultPlan(
            (SensorGlitchFault(device="clear_alarm_button", drop_probability=0.9),),
            name="sensor-glitch",
        ),
    )
