"""Fault-injection and mutation-analysis subsystem.

The R-/M-testing stack so far only ever tested *correct* implementations —
this package measures the method's **detection power** by seeding defects on
both sides of the model/platform divide and asking which requirement tests
notice:

* :mod:`repro.faults.models` — composable, seed-deterministic **platform
  fault models** (clock drift, execution-time inflation and sporadic
  overruns, queue message drop/delay/reorder, priority-inversion windows,
  stuck/glitching sensors) bundled into declarative :class:`FaultPlan` s and
  applied via wrapper hooks; an empty plan is a strict no-op;
* :mod:`repro.faults.mutants` — a **model-mutant generator** over
  :mod:`repro.model.statechart` (timing-bound ±δ, guard negation, transition
  retarget, action drop) with structural fingerprint dedup and exclusion of
  known-equivalent mutants;
* :mod:`repro.faults.matrix` — the **kill-matrix engine**: expands a
  (faults × mutants × schemes × scenarios) grid into stock campaign
  ``RunSpec`` s, fans it through the parallel campaign runner and scores
  detections/kills against the clean baselines;
* :mod:`repro.faults.hunt` — the :class:`SurvivorHunter`, the coverage-guided
  exploration loop re-aimed at mutants the fixed scenarios cannot kill
  (differential testing over generated scenario programs).

Entry points: ``repro faults`` (CLI), ``benchmarks/bench_faults.py``
(throughput + the recorded detection results in ``BENCH_faults.json``) and
``examples/fault_kill_matrix.py``.  See ``docs/architecture.md`` for where
the layer sits in the stack.
"""

from .hunt import HuntEpisode, HuntReport, SurvivorHunter
from .matrix import (
    FaultMatrixSpec,
    KillMatrix,
    MatrixCell,
    default_matrix_spec,
    run_kill_matrix,
)
from .models import (
    FAULT_KINDS,
    ClockDriftFault,
    ExecutionInflationFault,
    FaultModel,
    FaultPlan,
    PriorityInversionFault,
    QueueFault,
    SensorGlitchFault,
    SensorStuckFault,
    default_fault_suite,
    fault_from_dict,
)
from .mutants import (
    ALL_OPERATORS,
    DEFAULT_TIMING_SCALES,
    MutantError,
    MutantSpec,
    generate_mutants,
)

__all__ = [
    "ALL_OPERATORS",
    "ClockDriftFault",
    "DEFAULT_TIMING_SCALES",
    "ExecutionInflationFault",
    "FAULT_KINDS",
    "FaultMatrixSpec",
    "FaultModel",
    "FaultPlan",
    "HuntEpisode",
    "HuntReport",
    "KillMatrix",
    "MatrixCell",
    "MutantError",
    "MutantSpec",
    "PriorityInversionFault",
    "QueueFault",
    "SensorGlitchFault",
    "SensorStuckFault",
    "SurvivorHunter",
    "default_fault_suite",
    "default_matrix_spec",
    "generate_mutants",
    "run_kill_matrix",
]
