"""Coverage-guided hunting of surviving mutants.

The kill matrix scores mutants against a system pack's *fixed* requirement
scenarios.  Mutants that survive those are exactly the interesting ones — a
behavioural defect the stock test suite cannot see.  The
:class:`SurvivorHunter` turns the scenario-generation subsystem
(:mod:`repro.scenarios`) on them: the coverage-guided exploration loop of
``repro explore``, re-aimed from "cover new transitions" to "distinguish the
mutant from the original".

Each episode:

1. picks one surviving mutant (round-robin, so every survivor gets pressure);
2. picks a scenario program — a seeded epsilon-greedy choice between a fresh
   draw from the space and a mutation of an archived *killer* program (a
   program that already killed some mutant distinguishes behaviour well and
   is a good parent);
3. compiles the program once and executes it against a fresh **original**
   system and a fresh **mutant** system built with the same seeds — a
   differential R-test;
4. compares the two runs at the **m/c boundary** — the per-sample verdict
   vector plus the full c-event sequence (variable, value, timestamp).  Any
   difference kills the mutant, and the program is archived as a killer.

The c-event sequence is a legitimately black-box oracle: it observes exactly
the controlled-variable changes R-testing observes, nothing from inside the
implementation.  Because both systems are built from the same seeds, the two
runs are identical *by construction* until the mutation changes model
behaviour — so any divergence (a missing actuation, an extra one, a shifted
timestamp) is attributable to the mutant alone, and a genuinely equivalent
mutant can never be killed by noise.

Everything draws from named streams of one seed, so a hunt is a pure function
of ``(space, mutants, scheme, seed)`` and replays identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..campaign.cache import process_cache
from ..core.four_variables import EventKind, Trace
from ..core.r_testing import RTestReport, execute_r_test
from ..platform.kernel.random import RandomSource
from ..systems import DEFAULT_SYSTEM, get_pack
from ..scenarios.dsl import ScenarioProgram
from ..scenarios.generator import ScenarioSampler, ScenarioSpace
from .mutants import MutantSpec

#: Probability of mutating an archived killer program instead of sampling fresh.
EXPLOIT_PROBABILITY = 0.5

#: After this many consecutive episodes without a kill, fresh draws are forced
#: to be structurally rich (setup + teardown steps): surviving mutants sit on
#: guarded multi-variable paths that retimed single-stimulus programs never
#: reach — the same plateau rule the coverage-guided explorer uses.
DRY_STREAK_RICH_THRESHOLD = 3


def mc_signature(report: RTestReport) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, object, int], ...]]:
    """The m/c-boundary observables of one R-test execution.

    A pair of (per-sample verdict vector, c-event sequence).  This is what a
    black-box R-tester can see — monitored and controlled variables only —
    and it is the differential kill oracle of the hunter.
    """
    verdicts = tuple(sample.verdict.value for sample in report.samples)
    trace: Optional[Trace] = report.trace
    c_events: Tuple[Tuple[str, object, int], ...] = ()
    if trace is not None:
        c_events = tuple(
            (event.variable, event.value, event.timestamp_us)
            for event in trace.select(kind=EventKind.C)
        )
    return verdicts, c_events


@dataclass(frozen=True)
class HuntEpisode:
    """The outcome of one differential-testing episode."""

    index: int
    mutant_id: str
    program: ScenarioProgram
    source: str
    original_verdicts: Tuple[str, ...]
    mutant_verdicts: Tuple[str, ...]
    #: Number of c-events observed on each side (first divergence kills).
    original_c_events: int = 0
    mutant_c_events: int = 0
    killed: bool = False

    def summary(self) -> str:
        outcome = "KILLED" if self.killed else "survived"
        return (
            f"episode {self.index:>2} [{self.source:<8}] {self.mutant_id:<38} "
            f"{self.program.name:<24} {outcome}  "
            f"verdicts {'/'.join(self.original_verdicts)} vs "
            f"{'/'.join(self.mutant_verdicts)}, "
            f"c-events {self.original_c_events} vs {self.mutant_c_events}"
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "mutant": self.mutant_id,
            "program": self.program.name,
            "source": self.source,
            "killed": self.killed,
            "original_verdicts": list(self.original_verdicts),
            "mutant_verdicts": list(self.mutant_verdicts),
            "original_c_events": self.original_c_events,
            "mutant_c_events": self.mutant_c_events,
        }


@dataclass
class HuntReport:
    """Aggregate of one survivor hunt."""

    seed: int
    survivors: List[str]
    episodes: List[HuntEpisode] = field(default_factory=list)
    #: mutant id -> name of the program that killed it.
    kills: Dict[str, str] = field(default_factory=dict)

    @property
    def remaining(self) -> List[str]:
        return [mutant_id for mutant_id in self.survivors if mutant_id not in self.kills]

    def summary(self) -> str:
        lines = [
            f"survivor hunt (seed {self.seed}): {len(self.survivors)} surviving "
            f"mutant(s), {len(self.episodes)} episodes"
        ]
        lines.extend(episode.summary() for episode in self.episodes)
        lines.append(
            f"hunted down {len(self.kills)}/{len(self.survivors)}"
            + (f"; still surviving: {', '.join(self.remaining)}" if self.remaining else "")
        )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "survivors": list(self.survivors),
            "episodes": [episode.to_dict() for episode in self.episodes],
            "kills": dict(self.kills),
            "remaining": self.remaining,
        }


class SurvivorHunter:
    """Differential, coverage-guided search for mutant-killing scenarios."""

    def __init__(
        self,
        space: ScenarioSpace,
        mutants: Sequence[MutantSpec],
        *,
        scheme: int = 2,
        model: Optional[str] = None,
        system: str = DEFAULT_SYSTEM,
        sut_seed: int = 11,
        seed: int = 0,
        samples: Optional[int] = 3,
    ) -> None:
        self.space = space
        self.mutants = {mutant.mutant_id: mutant for mutant in mutants}
        self.scheme = scheme
        self.system = system
        self.model = get_pack(system).default_model if model is None else model
        self.sut_seed = sut_seed
        self.seed = seed
        self.samples = samples
        self.sampler = ScenarioSampler(space, seed=seed)
        self._source = RandomSource(seed)
        #: Killer programs keyed by name -> [program, kills]; a program that
        #: kills repeatedly gains selection weight (insertion-ordered, so
        #: archive iteration stays deterministic).
        self._archive: Dict[str, List] = {}
        #: Consecutive episodes without a kill (plateau detector).
        self._dry_streak = 0

    # ------------------------------------------------------------------
    def hunt(self, episodes: int = 12) -> HuntReport:
        """Run up to ``episodes`` differential episodes (stops when none survive)."""
        report = HuntReport(seed=self.seed, survivors=sorted(self.mutants))
        for index in range(episodes):
            remaining = report.remaining
            if not remaining:
                break
            mutant_id = remaining[index % len(remaining)]
            episode = self._run_episode(index, self.mutants[mutant_id])
            report.episodes.append(episode)
            if episode.killed:
                report.kills[mutant_id] = episode.program.name
                entry = self._archive.setdefault(episode.program.name, [episode.program, 0])
                entry[1] += 1
                self._dry_streak = 0
            else:
                self._dry_streak += 1
        return report

    # ------------------------------------------------------------------
    def _run_episode(self, index: int, mutant: MutantSpec) -> HuntEpisode:
        rng = self._source.stream(f"episode:{index}")
        program, source = self._pick_program(rng)
        if self.samples is not None:
            program = program.with_samples(self.samples)
        compile_seed = self._source.fork(f"compile:{index}").seed
        test_case = program.compile(compile_seed)

        original = execute_r_test(self._factory(None), test_case)
        mutated = execute_r_test(self._factory(mutant), test_case)
        original_signature = mc_signature(original)
        mutant_signature = mc_signature(mutated)
        return HuntEpisode(
            index=index,
            mutant_id=mutant.mutant_id,
            program=program,
            source=source,
            original_verdicts=original_signature[0],
            mutant_verdicts=mutant_signature[0],
            original_c_events=len(original_signature[1]),
            mutant_c_events=len(mutant_signature[1]),
            killed=original_signature != mutant_signature,
        )

    def _pick_program(self, rng) -> Tuple[ScenarioProgram, str]:
        plateaued = self._dry_streak >= DRY_STREAK_RICH_THRESHOLD
        if self._archive and not plateaued and rng.random() < EXPLOIT_PROBABILITY:
            programs = [entry[0] for entry in self._archive.values()]
            weights = [entry[1] for entry in self._archive.values()]
            parent = rng.choices(programs, weights=weights, k=1)[0]
            return self.sampler.mutate(parent), "mutation"
        if plateaued:
            return self.sampler.sample(min_setup_steps=1, min_teardown_steps=1), "rich"
        return self.sampler.sample(), "fresh"

    def _factory(self, mutant: Optional[MutantSpec]):
        cache = process_cache()
        if mutant is None:
            artifacts = cache.artifacts_for_model(self.model)
        else:
            artifacts = cache.artifacts_for_mutant(self.model, mutant)
        pack = get_pack(self.system)
        scheme = self.scheme
        model = self.model
        sut_seed = self.sut_seed

        def factory():
            return pack.build_system(scheme, model=model, seed=sut_seed, artifacts=artifacts)

        return factory
