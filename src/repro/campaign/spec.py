"""Declarative campaign specifications.

A *campaign* is a cartesian grid of implementation-scheme configurations ×
test scenarios.  Each point of the grid expands to one :class:`RunSpec` — a
frozen, picklable description of a single R-/M-testing execution that a
worker process can carry out without any shared state.  Everything a run
needs (scheme, model, scenario, sample count, every seed) lives in the spec,
so a run is a pure function of its ``RunSpec`` and campaigns aggregate
bit-identically regardless of how the grid is sharded across workers.

Seeds that the user does not pin explicitly are *derived*: a stable hash of
the campaign's base seed and the run's coordinates in the grid.  Derivation
depends only on the coordinates — never on execution order — which is what
keeps a 1-worker and an N-worker campaign byte-identical.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional, Tuple

if TYPE_CHECKING:  # imported lazily to keep campaign free of a faults dependency
    from ..faults.models import FaultPlan
    from ..faults.mutants import MutantSpec

from ..core.requirements import TimingRequirement
from ..core.test_generation import RTestCase, Stimulus
from .cache import MODEL_BUILDERS
from ..gpca.scenarios import gpca_scenario_space
from ..platform.kernel.time import ms
from ..scenarios import ScenarioProgram, ScenarioSampler
from ..systems import DEFAULT_SYSTEM, get_pack, model_system
from ..systems.gpca import EXTENDED_MODEL_SHIFT_US, GPCA_PACK

__all__ = [
    "BACKEND_C",
    "BACKEND_PYTHON",
    "CASE_BUILDERS",
    "CampaignSpec",
    "CasePoint",
    "EXTENDED_MODEL_SHIFT_US",
    "KNOWN_BACKENDS",
    "KNOWN_MODELS",
    "M_TEST_ALL",
    "M_TEST_NONE",
    "M_TEST_POLICIES",
    "M_TEST_VIOLATIONS",
    "PRESETS",
    "RunSpec",
    "SchemePoint",
    "TABLE_ONE_SCHEME_SEEDS",
    "build_case",
    "case_requirement",
    "derive_seed",
    "full_grid_spec",
    "interference_sweep_spec",
    "period_sweep_spec",
    "preset_spec",
    "scenario_grid_spec",
    "table_one_spec",
]

#: M-testing policies a campaign can request per run.
M_TEST_ALL = "all"
M_TEST_VIOLATIONS = "violations"
M_TEST_NONE = "none"
M_TEST_POLICIES = (M_TEST_ALL, M_TEST_VIOLATIONS, M_TEST_NONE)

#: SUT backends a campaign can request per run.  "python" is the default
#: interpreter-executed CODE(M); "c" compiles and executes the emitted C
#: (degrading gracefully to python when no compiler is available — the
#: degradation is recorded in the run record, see repro.codegen.c_backend).
BACKEND_PYTHON = "python"
BACKEND_C = "c"
KNOWN_BACKENDS = (BACKEND_PYTHON, BACKEND_C)

#: Models the grid can target — derived from the artifact cache's builder
#: registry so spec validation and worker resolution share one source of truth.
KNOWN_MODELS = tuple(sorted(MODEL_BUILDERS))


def derive_seed(base_seed: int, *coordinates: object) -> int:
    """A stable 31-bit seed from the campaign seed and grid coordinates.

    Uses SHA-256 rather than ``hash()`` so the value is identical across
    processes and interpreter invocations (``hash()`` is salted per process).
    """
    key = ":".join([str(base_seed), *[repr(coordinate) for coordinate in coordinates]])
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
#: Scenario name -> builder for the default system.  Builders take
#: (samples, seed); scenarios with a fixed deterministic schedule simply
#: ignore the seed.  Kept as a module constant for backwards compatibility —
#: the authoritative per-system registry is ``get_pack(system).case_builders``.
CASE_BUILDERS: Dict[str, Callable[[int, int], RTestCase]] = dict(GPCA_PACK.case_builders)


def _shifted_case(case: RTestCase, delta_us: int) -> RTestCase:
    """A copy of a test case with every stimulus delayed by ``delta_us``."""
    return RTestCase(
        name=case.name,
        requirement=case.requirement,
        stimuli=tuple(
            Stimulus(stimulus.at_us + delta_us, stimulus.variable) for stimulus in case.stimuli
        ),
        description=case.description,
    )


def build_case(
    case: str, samples: int, seed: int, *, model: str = "fig2", system: str = DEFAULT_SYSTEM
) -> RTestCase:
    """Instantiate a named scenario's stimulus schedule (deterministic).

    Models that declare a stimulus shift (e.g. the extended GPCA model, whose
    power-on self test ignores early events) get their whole schedule delayed
    by the pack-declared amount — a stimulus delivered during the self test is
    ignored by the model (and therefore by a conformant implementation), which
    would turn into artifact MAX verdicts.
    """
    pack = get_pack(system)
    try:
        builder = pack.case_builders[case]
    except KeyError:
        known = ", ".join(sorted(pack.case_builders))
        raise ValueError(f"unknown campaign scenario {case!r} (known: {known})") from None
    built = builder(samples, seed)
    shift_us = pack.model_shifts_us.get(model)
    if shift_us:
        built = _shifted_case(built, shift_us)
    return built


def case_requirement(
    case: str, samples: int = 1, seed: int = 0, *, system: str = DEFAULT_SYSTEM
) -> TimingRequirement:
    """The timing requirement a named scenario is judged against."""
    return build_case(case, samples, seed, system=system).requirement


# ----------------------------------------------------------------------
# Grid axes
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemePoint:
    """One scheme configuration on the campaign's scheme axis."""

    scheme: int
    #: Polling-period override of the single-threaded scheme (scheme 1 only).
    period_us: Optional[int] = None
    #: Interference burst scaling of the interfered scheme (scheme 3 only).
    interference_scale: Optional[float] = None
    #: Explicit system seed; derived from the campaign seed when ``None``.
    sut_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.scheme not in (1, 2, 3):
            raise ValueError(f"unknown implementation scheme {self.scheme!r}")
        if self.period_us is not None and self.scheme != 1:
            raise ValueError("period_us only applies to scheme 1")
        if self.interference_scale is not None and self.scheme != 3:
            raise ValueError("interference_scale only applies to scheme 3")

    @property
    def label(self) -> str:
        parts = [f"scheme{self.scheme}"]
        if self.period_us is not None:
            parts.append(f"period={self.period_us / 1000:g}ms")
        if self.interference_scale is not None:
            parts.append(f"interference={self.interference_scale:g}x")
        return ":".join(parts)


@dataclass(frozen=True)
class CasePoint:
    """One scenario on the campaign's test-case axis.

    A point either names a stock scenario from :data:`CASE_BUILDERS` or
    carries a :class:`repro.scenarios.ScenarioProgram` directly — the DSL
    programs are frozen and picklable, so a generated scenario crosses the
    worker boundary exactly like a named one.
    """

    case: str
    samples: int = 10
    #: Explicit generation seed; derived from the campaign seed when ``None``.
    seed: Optional[int] = None
    #: Scenario-DSL program backing this point (``case`` must be its name).
    program: Optional[ScenarioProgram] = None
    #: Registered system pack this scenario exercises.
    system: str = DEFAULT_SYSTEM

    def __post_init__(self) -> None:
        pack = get_pack(self.system)
        if self.program is not None:
            if self.case != self.program.name:
                raise ValueError(
                    f"case point name {self.case!r} does not match its program "
                    f"{self.program.name!r}"
                )
        elif self.case not in pack.case_builders:
            known = ", ".join(sorted(pack.case_builders))
            raise ValueError(f"unknown campaign scenario {self.case!r} (known: {known})")
        if self.samples <= 0:
            raise ValueError("sample count must be positive")

    @classmethod
    def for_program(
        cls,
        program: ScenarioProgram,
        *,
        seed: Optional[int] = None,
        system: str = DEFAULT_SYSTEM,
    ) -> "CasePoint":
        """A case point for a scenario-DSL program (name and samples from it)."""
        return cls(
            case=program.name, samples=program.samples, seed=seed, program=program, system=system
        )


# ----------------------------------------------------------------------
# Run specs and the campaign grid
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One fully-resolved unit of campaign work (picklable, self-contained)."""

    index: int
    scheme: int
    case: str
    samples: int
    case_seed: int
    sut_seed: int
    model: str = "fig2"
    period_us: Optional[int] = None
    interference_scale: Optional[float] = None
    m_test: str = M_TEST_ALL
    #: Scenario-DSL program backing this run (stock named scenario when None).
    program: Optional[ScenarioProgram] = None
    #: Platform fault plan instrumented into the system (clean run when None).
    faults: Optional["FaultPlan"] = None
    #: Model mutation applied before code generation (original model when None).
    mutant: Optional["MutantSpec"] = None
    #: SUT backend executing CODE(M) ("python" or "c").
    backend: str = BACKEND_PYTHON
    #: Registered system pack whose SUT this run executes.
    system: str = DEFAULT_SYSTEM

    @property
    def label(self) -> str:
        point = SchemePoint(self.scheme, self.period_us, self.interference_scale)
        case = self.case if self.system == DEFAULT_SYSTEM else f"{self.system}:{self.case}"
        label = f"{point.label}/{case}"
        if self.faults is not None and not self.faults.empty:
            label += f"+{self.faults.name}"
        if self.mutant is not None:
            label += f"+{self.mutant.mutant_id}"
        return label

    def test_case(self) -> RTestCase:
        """Regenerate this run's stimulus schedule (deterministic)."""
        if self.program is not None:
            built = self.program.with_samples(self.samples).compile(self.case_seed)
            shift_us = get_pack(self.system).model_shifts_us.get(self.model)
            if shift_us:
                built = _shifted_case(built, shift_us)
            return built
        return build_case(
            self.case, self.samples, self.case_seed, model=self.model, system=self.system
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "RunSpec":
        """Rebuild a run spec from :meth:`to_dict` output (JSON round-trip safe).

        The faults/mutant coordinates import lazily so the campaign layer
        keeps its module-level independence from :mod:`repro.faults` (which
        itself imports the campaign layer).
        """
        program = payload.get("program")
        faults = payload.get("faults")
        mutant = payload.get("mutant")
        if faults is not None or mutant is not None:
            from ..faults.models import FaultPlan
            from ..faults.mutants import MutantSpec

            faults = None if faults is None else FaultPlan.from_dict(faults)
            mutant = None if mutant is None else MutantSpec.from_dict(mutant)
        return cls(
            index=int(payload["index"]),
            scheme=int(payload["scheme"]),
            case=payload["case"],
            samples=int(payload["samples"]),
            case_seed=int(payload["case_seed"]),
            sut_seed=int(payload["sut_seed"]),
            model=payload.get("model", "fig2"),
            period_us=payload.get("period_us"),
            interference_scale=payload.get("interference_scale"),
            m_test=payload.get("m_test", M_TEST_ALL),
            program=None if program is None else ScenarioProgram.from_dict(program),
            faults=faults,
            mutant=mutant,
            backend=payload.get("backend", BACKEND_PYTHON),
            system=payload.get("system", DEFAULT_SYSTEM),
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "index": self.index,
            "label": self.label,
            "scheme": self.scheme,
            "case": self.case,
            "samples": self.samples,
            "case_seed": self.case_seed,
            "sut_seed": self.sut_seed,
            "model": self.model,
            "period_us": self.period_us,
            "interference_scale": self.interference_scale,
            "m_test": self.m_test,
            "program": None if self.program is None else self.program.to_dict(),
            "faults": None if self.faults is None else self.faults.to_dict(),
            "mutant": None if self.mutant is None else self.mutant.to_dict(),
        }
        # The default backend is omitted so pre-backend serialized specs (and
        # the store keys derived from them) stay byte-identical.
        if self.backend != BACKEND_PYTHON:
            payload["backend"] = self.backend
        # The default system is omitted so pre-systems serialized specs (and
        # the store keys derived from them) stay byte-identical.
        if self.system != DEFAULT_SYSTEM:
            payload["system"] = self.system
        return payload


@dataclass(frozen=True)
class CampaignSpec:
    """The cartesian test-campaign grid: scheme points × scenario points."""

    name: str
    schemes: Tuple[SchemePoint, ...]
    cases: Tuple[CasePoint, ...]
    base_seed: int = 0
    model: str = "fig2"
    m_test: str = M_TEST_ALL
    backend: str = BACKEND_PYTHON

    def __post_init__(self) -> None:
        if not self.schemes:
            raise ValueError("campaign needs at least one scheme point")
        if not self.cases:
            raise ValueError("campaign needs at least one scenario point")
        if self.model not in KNOWN_MODELS:
            raise ValueError(f"unknown model {self.model!r} (known: {KNOWN_MODELS})")
        if self.m_test not in M_TEST_POLICIES:
            raise ValueError(f"unknown m_test policy {self.m_test!r} (known: {M_TEST_POLICIES})")
        if self.backend not in KNOWN_BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r} (known: {KNOWN_BACKENDS})")

    @property
    def size(self) -> int:
        return len(self.schemes) * len(self.cases)

    def expand(self) -> Tuple[RunSpec, ...]:
        """Expand the grid into one :class:`RunSpec` per (scheme, case) pair.

        Expansion order — and therefore every run's index — is the cartesian
        product order, independent of workers or execution order.  Unpinned
        seeds are derived from the run's coordinates so inserting a new axis
        point never reshuffles the seeds of existing points.
        """
        runs = []
        for index, (scheme_point, case_point) in enumerate(
            itertools.product(self.schemes, self.cases)
        ):
            # Seed coordinates fold the system in only for non-default packs,
            # so every pre-systems campaign derives exactly the seeds it
            # always has.
            if case_point.system == DEFAULT_SYSTEM:
                case_key = case_point.case
            else:
                case_key = f"{case_point.system}:{case_point.case}"
            sut_seed = scheme_point.sut_seed
            if sut_seed is None:
                sut_seed = derive_seed(
                    self.base_seed,
                    "sut",
                    scheme_point.scheme,
                    scheme_point.period_us,
                    scheme_point.interference_scale,
                    case_key,
                )
            case_seed = case_point.seed
            if case_seed is None:
                case_seed = derive_seed(self.base_seed, "case", case_key, case_point.samples)
            # The campaign-level model only applies to runs of the system
            # that owns it; case points from other packs run their pack's
            # default model.
            if model_system(self.model) == case_point.system:
                run_model = self.model
            else:
                run_model = get_pack(case_point.system).default_model
            runs.append(
                RunSpec(
                    index=index,
                    scheme=scheme_point.scheme,
                    case=case_point.case,
                    samples=case_point.samples,
                    case_seed=case_seed,
                    sut_seed=sut_seed,
                    model=run_model,
                    period_us=scheme_point.period_us,
                    interference_scale=scheme_point.interference_scale,
                    m_test=self.m_test,
                    program=case_point.program,
                    backend=self.backend,
                    system=case_point.system,
                )
            )
        return tuple(runs)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "CampaignSpec":
        """Rebuild a campaign spec from :meth:`to_dict` output.

        ``size`` is derived, so it is ignored on input; everything else —
        including scenario-DSL programs on the case points — round-trips, and
        ``spec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()`` holds
        byte for byte (the persistent run store depends on this).
        """
        return cls(
            name=payload["name"],
            base_seed=int(payload.get("base_seed", 0)),
            model=payload.get("model", "fig2"),
            m_test=payload.get("m_test", M_TEST_ALL),
            backend=payload.get("backend", BACKEND_PYTHON),
            schemes=tuple(
                SchemePoint(
                    scheme=int(point["scheme"]),
                    period_us=point.get("period_us"),
                    interference_scale=point.get("interference_scale"),
                    sut_seed=point.get("sut_seed"),
                )
                for point in payload["schemes"]
            ),
            cases=tuple(
                CasePoint(
                    case=point["case"],
                    samples=int(point["samples"]),
                    seed=point.get("seed"),
                    program=None
                    if point.get("program") is None
                    else ScenarioProgram.from_dict(point["program"]),
                    system=point.get("system", DEFAULT_SYSTEM),
                )
                for point in payload["cases"]
            ),
        )

    def to_dict(self) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "name": self.name,
            "base_seed": self.base_seed,
            "model": self.model,
            "m_test": self.m_test,
            "size": self.size,
            "schemes": [
                {
                    "scheme": point.scheme,
                    "period_us": point.period_us,
                    "interference_scale": point.interference_scale,
                    "sut_seed": point.sut_seed,
                }
                for point in self.schemes
            ],
            "cases": [self._case_payload(point) for point in self.cases],
        }
        if self.backend != BACKEND_PYTHON:
            payload["backend"] = self.backend
        return payload

    @staticmethod
    def _case_payload(point: CasePoint) -> Dict[str, object]:
        payload: Dict[str, object] = {
            "case": point.case,
            "samples": point.samples,
            "seed": point.seed,
            "program": None if point.program is None else point.program.to_dict(),
        }
        # The default system is omitted so pre-systems serialized campaigns
        # stay byte-identical.
        if point.system != DEFAULT_SYSTEM:
            payload["system"] = point.system
        return payload


# ----------------------------------------------------------------------
# Preset grids (the paper's evaluation, expressed as campaigns)
# ----------------------------------------------------------------------
#: The per-scheme system seeds the Table I reproduction has always used.
TABLE_ONE_SCHEME_SEEDS = {1: 11, 2: 22, 3: 33}


def table_one_spec(samples: int = 10, case_seed: int = 7) -> CampaignSpec:
    """The Table I grid: all three schemes × the bolus-request scenario."""
    return CampaignSpec(
        name="table1",
        schemes=tuple(
            SchemePoint(scheme, sut_seed=TABLE_ONE_SCHEME_SEEDS[scheme]) for scheme in (1, 2, 3)
        ),
        cases=(CasePoint("bolus-request", samples=samples, seed=case_seed),),
        m_test=M_TEST_ALL,
    )


def period_sweep_spec(
    periods_ms: Tuple[int, ...] = (10, 15, 20, 25, 35, 50),
    samples: int = 6,
    *,
    sut_seed: int = 17,
    case_seed: int = 5,
) -> CampaignSpec:
    """Ablation A1: scheme 1's polling period versus REQ1 violations."""
    return CampaignSpec(
        name="periods",
        schemes=tuple(
            SchemePoint(1, period_us=ms(period_ms), sut_seed=sut_seed) for period_ms in periods_ms
        ),
        cases=(CasePoint("bolus-request", samples=samples, seed=case_seed),),
        m_test=M_TEST_NONE,
    )


def interference_sweep_spec(
    scales: Tuple[float, ...] = (0.0, 0.4, 0.8, 1.0, 1.2),
    samples: int = 6,
    *,
    sut_seed: int = 29,
    case_seed: int = 5,
) -> CampaignSpec:
    """Ablation A2: scheme 3's interference load versus REQ1 violations."""
    return CampaignSpec(
        name="interference",
        schemes=tuple(
            SchemePoint(3, interference_scale=scale, sut_seed=sut_seed) for scale in scales
        ),
        cases=(CasePoint("bolus-request", samples=samples, seed=case_seed),),
        m_test=M_TEST_NONE,
    )


def full_grid_spec(samples: int = 5, base_seed: int = 0) -> CampaignSpec:
    """Every scheme × every GPCA scenario (the widest stock campaign)."""
    return CampaignSpec(
        name="full",
        schemes=tuple(SchemePoint(scheme) for scheme in (1, 2, 3)),
        cases=tuple(CasePoint(case, samples=samples) for case in sorted(CASE_BUILDERS)),
        base_seed=base_seed,
        m_test=M_TEST_VIOLATIONS,
    )


def scenario_grid_spec(
    count: int = 4, samples: Optional[int] = None, base_seed: int = 0
) -> CampaignSpec:
    """Generated-scenario grid: all three schemes × ``count`` sampled programs.

    The programs are drawn from :func:`repro.gpca.scenarios.gpca_scenario_space`
    with a sampler seeded by ``base_seed``, so the grid — including every
    program's shape — is a pure function of ``(count, samples, base_seed)``.
    ``samples`` overrides each program's own sample count when given.
    """
    if count <= 0:
        raise ValueError("scenario count must be positive")
    sampler = ScenarioSampler(gpca_scenario_space(), seed=base_seed)
    programs = [sampler.sample() for _ in range(count)]
    if samples is not None:
        programs = [program.with_samples(samples) for program in programs]
    return CampaignSpec(
        name="scenarios",
        schemes=tuple(SchemePoint(scheme) for scheme in (1, 2, 3)),
        cases=tuple(CasePoint.for_program(program) for program in programs),
        base_seed=base_seed,
        m_test=M_TEST_NONE,
    )


def preset_spec(grid: str, *, samples: Optional[int] = None, seed: Optional[int] = None) -> CampaignSpec:
    """Build one of the stock campaign grids, with optional overrides.

    ``samples``/``seed`` default to each grid's canonical values (the ones
    the benchmarks have always used), so ``preset_spec("table1")`` is exactly
    the Table I reproduction.
    """
    overrides = {}
    if samples is not None:
        overrides["samples"] = samples
    if grid == "table1":
        return table_one_spec(**overrides, **({} if seed is None else {"case_seed": seed}))
    if grid == "periods":
        return period_sweep_spec(**overrides, **({} if seed is None else {"case_seed": seed}))
    if grid == "interference":
        return interference_sweep_spec(
            **overrides, **({} if seed is None else {"case_seed": seed})
        )
    if grid == "full":
        return full_grid_spec(**overrides, **({} if seed is None else {"base_seed": seed}))
    if grid == "scenarios":
        return scenario_grid_spec(**overrides, **({} if seed is None else {"base_seed": seed}))
    raise ValueError(f"unknown campaign grid {grid!r} (known: {sorted(PRESETS)})")


#: The stock grid names accepted by ``repro campaign --grid``.
PRESETS = ("table1", "periods", "interference", "full", "scenarios")
