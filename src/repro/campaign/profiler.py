"""``repro profile``: run one grid coordinate and emit a span timeline.

:func:`profile_run` mirrors :func:`repro.campaign.worker.execute_run` with a
wrapped system factory — the same pattern ``benchmarks/bench_runtime.py``
uses for its reference leg — so the run itself is byte-identical to a
campaign run of the same spec.  The wrapper attaches a scheduler observer
that streams compute segments and deadline misses into the tracer's
simulated-time lane, and the worker phases (codegen → execute → analyze)
land on the wall-clock lane.  The resulting Chrome-trace JSON opens directly
in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..codegen.c_backend import resolve_backend
from ..core.instrumentation import ProbeConfiguration
from ..core.m_testing import MTestAnalyzer
from ..core.r_testing import execute_r_test
from ..core.serialization import m_report_to_dict, r_report_to_dict
from ..obs import SpanTracer, render_self_time_table
from ..obs.spans import SIMULATION_PID
from ..systems import get_pack
from .cache import process_cache
from .results import RunRecord
from .spec import BACKEND_PYTHON, M_TEST_NONE, M_TEST_VIOLATIONS, RunSpec, derive_seed

__all__ = ["ProfileResult", "profile_run"]


class _SegmentCollector:
    """A scheduler observer that streams segments into the simulation lane."""

    def __init__(self, tracer: SpanTracer) -> None:
        self._tracer = tracer
        self._tids: Dict[str, int] = {}

    def _tid(self, task_name: str) -> int:
        tid = self._tids.get(task_name)
        if tid is None:
            tid = self._tids[task_name] = len(self._tids)
            self._tracer.name_thread(SIMULATION_PID, tid, task_name)
        return tid

    def segment(self, task_name: str, start_us: int, end_us: int, preempted: bool) -> None:
        self._tracer.sim_span(
            task_name,
            start_us,
            end_us,
            category="segment",
            tid=self._tid(task_name),
            args={"preempted": True} if preempted else None,
        )

    def deadline_miss(self, task_name: str, at_us: int) -> None:
        self._tracer.sim_instant(
            "deadline miss",
            at_us,
            category="deadline",
            tid=self._tid(task_name),
            args={"task": task_name},
        )


@dataclass
class ProfileResult:
    """Everything ``repro profile`` reports for one coordinate."""

    record: RunRecord
    tracer: SpanTracer
    #: Kernel + scheduler lifetime counters pulled off the profiled system.
    counters: Dict[str, int]

    def timeline(self) -> Dict[str, Any]:
        return self.tracer.to_chrome_trace()

    def write_timeline(self, path) -> None:
        self.tracer.write_timeline(path)

    def self_time_table(self) -> str:
        return render_self_time_table(self.tracer.self_times())


def profile_run(
    spec: RunSpec, *, monotonic: Optional[Callable[[], float]] = None
) -> ProfileResult:
    """Execute one run with span collection; the record stays byte-identical.

    The body mirrors ``execute_run`` step for step — only the observer attach
    and the phase spans differ, and neither feeds anything back into the
    engine (pinned by the obs byte-identity tests).
    """
    tracer = SpanTracer(monotonic)
    collector = _SegmentCollector(tracer)
    systems = []

    with tracer.phase("codegen", args={"scheme": spec.scheme, "case": spec.case}):
        pack = get_pack(spec.system)
        cache = process_cache()
        if spec.mutant is not None:
            artifacts = cache.artifacts_for_mutant(spec.model, spec.mutant)
        else:
            artifacts = cache.artifacts_for_model(spec.model)
        test_case = spec.test_case()
        resolution = resolve_backend(spec.backend, artifacts)

    probes = ProbeConfiguration.r_level() if spec.m_test == M_TEST_NONE else None

    def factory():
        with tracer.phase("build"):
            system = pack.build_system(
                spec.scheme,
                model=spec.model,
                seed=spec.sut_seed,
                period_us=spec.period_us,
                interference_scale=spec.interference_scale,
                artifacts=artifacts,
                probes=probes,
                code_factory=resolution.code_factory,
            )
            if spec.faults is not None and not spec.faults.empty:
                spec.faults.instrument(
                    system,
                    seed=derive_seed(spec.sut_seed, "faults", spec.faults.name, spec.case),
                )
            system.scheduler.observer = collector
            systems.append(system)
        return system

    with tracer.phase("execute"):
        r_report = execute_r_test(factory, test_case)

    with tracer.phase("analyze"):
        m_payload = None
        if spec.m_test != M_TEST_NONE:
            analyzer = MTestAnalyzer(pack.build_interface(), test_case.requirement)
            if spec.m_test == M_TEST_VIOLATIONS:
                m_report = analyzer.analyze_violations(r_report)
            else:
                m_report = analyzer.analyze(r_report.trace, sut_name=r_report.sut_name)
            m_payload = m_report_to_dict(m_report)
        record = RunRecord(
            spec=spec,
            r_payload=r_report_to_dict(r_report),
            m_payload=m_payload,
            backend_payload=(
                None if spec.backend == BACKEND_PYTHON else resolution.to_payload()
            ),
        )

    counters: Dict[str, int] = {}
    for system in systems:
        for name, value in system.telemetry_snapshot().items():
            counters[name] = counters.get(name, 0) + int(value)
    return ProfileResult(record=record, tracer=tracer, counters=counters)
