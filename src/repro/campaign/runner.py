"""The campaign runner: shards the grid across worker processes.

``CampaignRunner(spec, workers=N)`` expands the spec's grid, splits it into
``N`` round-robin shards and executes them on a ``ProcessPoolExecutor``.
With ``workers <= 1`` (or when process pools are unavailable, e.g. in a
restricted sandbox) the same shard function runs in-process — the
*deterministic single-process fallback*.  Because every run is a pure
function of its spec and records are re-ordered by grid index before
aggregation, the resulting :class:`CampaignResult` canonical payload is
byte-identical for any worker count.

Round-robin sharding (``runs[i::N]``) balances the load when the grid is
sorted by configuration: expensive points (e.g. interfered-scheme runs) end
up spread across shards instead of stacked on one worker.

Telemetry (``CampaignRunner(telemetry=...)``) rides alongside, never inside:
the runner keeps a :class:`repro.obs.CampaignProgress` accumulator up to date
as runs and shards complete, persists throttled snapshots into the attached
store (serving ``/progress/<campaign>``), and folds campaign counters into
the telemetry registry — all outside the workers, so enabling it cannot
change a record.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence, Tuple

from ..obs import NULL_TELEMETRY, CampaignProgress
from .results import CampaignResult, RunRecord
from .spec import CampaignSpec, RunSpec
from .worker import execute_shard

#: Minimum seconds between store progress snapshots (final write always lands).
PROGRESS_WRITE_INTERVAL_S = 0.5


def default_worker_count() -> int:
    """The number of CPUs this process may actually be scheduled on.

    Uses ``len(os.sched_getaffinity(0))`` — the *schedulable* CPU count —
    rather than ``os.cpu_count()``, which reports the host's physical count
    even inside a 1-CPU container cgroup.  Auto-detected worker counts based
    on ``cpu_count`` over-shard on such containers and misreport parallel
    speedup (see ``BENCH_campaign.json`` from a 1-CPU dev container).
    Falls back to ``cpu_count`` on platforms without CPU affinity.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def shard_grid(runs: Sequence[RunSpec], shards: int) -> List[Tuple[RunSpec, ...]]:
    """Split the expanded grid into round-robin shards (no empty shards)."""
    if shards <= 0:
        raise ValueError("shard count must be positive")
    shards = min(shards, len(runs)) or 1
    return [tuple(runs[offset::shards]) for offset in range(shards)]


class CampaignRunner:
    """Executes a campaign spec, serially or across a process pool.

    With a :class:`repro.store.RunStore` attached the runner becomes
    *incremental*: every fresh record is persisted, and with ``resume=True``
    it consults the store first and dispatches only the grid points whose
    coordinates have no stored result.  Reused and fresh records reassemble
    in grid order, so a resumed campaign's canonical aggregate is
    byte-identical to a cold one's — the store can never change a verdict,
    only skip recomputing it.
    """

    def __init__(
        self,
        spec: CampaignSpec,
        *,
        workers: int = 1,
        store=None,
        resume: bool = False,
        telemetry=None,
    ) -> None:
        """``workers=0`` means auto-detect: one worker per schedulable CPU.

        ``store`` is a :class:`repro.store.RunStore` (duck-typed: anything
        with ``lookup`` / ``put_records`` / ``save_campaign``); ``resume``
        additionally reuses stored records instead of re-executing them.

        ``telemetry`` is a :class:`repro.obs.Telemetry` (defaults to the null
        sink).  When enabled, campaign counters land in its registry and —
        with a store attached — live progress snapshots are persisted for
        ``/progress/<campaign>``.  Telemetry observes the runner only; the
        records are byte-identical either way.
        """
        if workers < 0:
            raise ValueError("worker count cannot be negative")
        if resume and store is None:
            raise ValueError("resume=True needs a store to resume from")
        self.spec = spec
        self.workers = workers if workers > 0 else default_worker_count()
        self.store = store
        self.resume = resume
        self.telemetry = telemetry if telemetry is not None else NULL_TELEMETRY
        #: Live progress of the current/last :meth:`run` (telemetry-enabled).
        self.progress: Optional[CampaignProgress] = None
        #: Set after :meth:`run` when a pool failure forced the serial path.
        self.fell_back_to_serial = False
        #: The error message of the pool failure, when one occurred.
        self.fallback_reason: Optional[str] = None
        #: Grid points actually dispatched on the last :meth:`run`.
        self.executed_count = 0
        #: Grid points satisfied from the store on the last :meth:`run`.
        self.reused_count = 0
        #: Campaign snapshot id recorded on the last store-backed :meth:`run`.
        self.campaign_id: Optional[str] = None
        self._last_progress_write = 0.0

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute every (missing) run of the grid and aggregate in grid order."""
        runs = self.spec.expand()
        started = time.perf_counter()
        telemetry = self.telemetry
        progress: Optional[CampaignProgress] = None
        if telemetry.enabled:
            progress = CampaignProgress(
                self.spec.name, len(runs), workers=self.workers
            )
            self.progress = progress
            self._last_progress_write = 0.0
        reused: List[RunRecord] = []
        missing: Sequence[RunSpec] = runs
        if self.resume:
            missing = []
            for spec in runs:
                record = self.store.lookup(spec)
                if record is None:
                    missing.append(spec)
                else:
                    reused.append(record)
            if progress is not None and reused:
                progress.record_cached(len(reused))
                self._persist_progress(progress)
        fresh: List[RunRecord] = []
        workers_used = 1
        if missing:
            if progress is not None:
                progress.record_started(len(missing))
            if self.workers <= 1 or len(missing) <= 1:
                fresh = execute_shard(
                    missing,
                    progress=None if progress is None else self._on_run_complete,
                )
            else:
                fresh = self._run_sharded(missing, progress)
                workers_used = 1 if self.fell_back_to_serial else min(self.workers, len(missing))
        self.executed_count = len(fresh)
        self.reused_count = len(reused)
        result = CampaignResult(
            spec=self.spec,
            records=[*reused, *fresh],
            workers=workers_used,
            wall_seconds=time.perf_counter() - started,
        )
        if self.store is not None:
            # save_campaign persists every record (fresh ones included) plus
            # the snapshot in one pass — no separate put_records needed.
            self.campaign_id = self.store.save_campaign(result)
        if progress is not None:
            progress.finish()
            self._persist_progress(progress, force=True)
            telemetry.count("campaign_runs_completed", len(fresh))
            telemetry.count("campaign_runs_cached", len(reused))
            telemetry.observe("campaign_wall_seconds", result.wall_seconds)
        return result

    # ------------------------------------------------------------------
    def _on_run_complete(self, record: RunRecord) -> None:
        """Serial-path progress hook: one record finished in-process."""
        progress = self.progress
        progress.record_completed()
        self._persist_progress(progress)

    def _persist_progress(self, progress: CampaignProgress, force: bool = False) -> None:
        """Write a progress snapshot to the store, throttled to one every
        :data:`PROGRESS_WRITE_INTERVAL_S` (progress is advisory; hammering
        SQLite once per run of a 10k-run campaign is not)."""
        store = self.store
        if store is None:
            return
        save = getattr(store, "save_progress", None)
        if save is None:
            return
        now = time.perf_counter()
        if not force and now - self._last_progress_write < PROGRESS_WRITE_INTERVAL_S:
            return
        self._last_progress_write = now
        save(progress.snapshot())

    # ------------------------------------------------------------------
    def _run_sharded(
        self, runs: Sequence[RunSpec], progress: Optional[CampaignProgress] = None
    ) -> List[RunRecord]:
        shards = shard_grid(runs, self.workers)
        try:
            with ProcessPoolExecutor(max_workers=len(shards)) as executor:
                # Per-shard futures instead of executor.map: progress can be
                # recorded as each shard lands.  Results reassemble in shard
                # order, and CampaignResult re-sorts by grid index anyway, so
                # completion order can never leak into the aggregate.
                futures = {
                    executor.submit(execute_shard, shard): position
                    for position, shard in enumerate(shards)
                }
                shard_results: List[Optional[List[RunRecord]]] = [None] * len(shards)
                for future in as_completed(futures):
                    records = future.result()
                    shard_results[futures[future]] = records
                    if progress is not None:
                        progress.record_completed(len(records))
                        self._persist_progress(progress)
        except (OSError, BrokenProcessPool) as error:  # pool unavailable: run serially
            self.fell_back_to_serial = True
            self.fallback_reason = str(error)
            return execute_shard(
                runs, progress=None if progress is None else self._on_run_complete
            )
        return [record for shard_records in shard_results for record in shard_records]


def run_campaign(
    spec: CampaignSpec, *, workers: int = 1, runner: Optional[CampaignRunner] = None
) -> CampaignResult:
    """Convenience wrapper: build a runner and execute the campaign."""
    runner = runner or CampaignRunner(spec, workers=workers)
    return runner.run()
