"""The campaign runner: shards the grid across worker processes.

``CampaignRunner(spec, workers=N)`` expands the spec's grid, splits it into
``N`` round-robin shards and executes them on a ``ProcessPoolExecutor``.
With ``workers <= 1`` (or when process pools are unavailable, e.g. in a
restricted sandbox) the same shard function runs in-process — the
*deterministic single-process fallback*.  Because every run is a pure
function of its spec and records are re-ordered by grid index before
aggregation, the resulting :class:`CampaignResult` canonical payload is
byte-identical for any worker count.

Round-robin sharding (``runs[i::N]``) balances the load when the grid is
sorted by configuration: expensive points (e.g. interfered-scheme runs) end
up spread across shards instead of stacked on one worker.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import List, Optional, Sequence, Tuple

from .results import CampaignResult, RunRecord
from .spec import CampaignSpec, RunSpec
from .worker import execute_shard


def default_worker_count() -> int:
    """The number of CPUs this process may actually be scheduled on.

    Uses ``len(os.sched_getaffinity(0))`` — the *schedulable* CPU count —
    rather than ``os.cpu_count()``, which reports the host's physical count
    even inside a 1-CPU container cgroup.  Auto-detected worker counts based
    on ``cpu_count`` over-shard on such containers and misreport parallel
    speedup (see ``BENCH_campaign.json`` from a 1-CPU dev container).
    Falls back to ``cpu_count`` on platforms without CPU affinity.
    """
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0)) or 1
    return os.cpu_count() or 1


def shard_grid(runs: Sequence[RunSpec], shards: int) -> List[Tuple[RunSpec, ...]]:
    """Split the expanded grid into round-robin shards (no empty shards)."""
    if shards <= 0:
        raise ValueError("shard count must be positive")
    shards = min(shards, len(runs)) or 1
    return [tuple(runs[offset::shards]) for offset in range(shards)]


class CampaignRunner:
    """Executes a campaign spec, serially or across a process pool.

    With a :class:`repro.store.RunStore` attached the runner becomes
    *incremental*: every fresh record is persisted, and with ``resume=True``
    it consults the store first and dispatches only the grid points whose
    coordinates have no stored result.  Reused and fresh records reassemble
    in grid order, so a resumed campaign's canonical aggregate is
    byte-identical to a cold one's — the store can never change a verdict,
    only skip recomputing it.
    """

    def __init__(self, spec: CampaignSpec, *, workers: int = 1, store=None, resume: bool = False) -> None:
        """``workers=0`` means auto-detect: one worker per schedulable CPU.

        ``store`` is a :class:`repro.store.RunStore` (duck-typed: anything
        with ``lookup`` / ``put_records`` / ``save_campaign``); ``resume``
        additionally reuses stored records instead of re-executing them.
        """
        if workers < 0:
            raise ValueError("worker count cannot be negative")
        if resume and store is None:
            raise ValueError("resume=True needs a store to resume from")
        self.spec = spec
        self.workers = workers if workers > 0 else default_worker_count()
        self.store = store
        self.resume = resume
        #: Set after :meth:`run` when a pool failure forced the serial path.
        self.fell_back_to_serial = False
        #: The error message of the pool failure, when one occurred.
        self.fallback_reason: Optional[str] = None
        #: Grid points actually dispatched on the last :meth:`run`.
        self.executed_count = 0
        #: Grid points satisfied from the store on the last :meth:`run`.
        self.reused_count = 0
        #: Campaign snapshot id recorded on the last store-backed :meth:`run`.
        self.campaign_id: Optional[str] = None

    # ------------------------------------------------------------------
    def run(self) -> CampaignResult:
        """Execute every (missing) run of the grid and aggregate in grid order."""
        runs = self.spec.expand()
        started = time.perf_counter()
        reused: List[RunRecord] = []
        missing: Sequence[RunSpec] = runs
        if self.resume:
            missing = []
            for spec in runs:
                record = self.store.lookup(spec)
                if record is None:
                    missing.append(spec)
                else:
                    reused.append(record)
        fresh: List[RunRecord] = []
        workers_used = 1
        if missing:
            if self.workers <= 1 or len(missing) <= 1:
                fresh = execute_shard(missing)
            else:
                fresh = self._run_sharded(missing)
                workers_used = 1 if self.fell_back_to_serial else min(self.workers, len(missing))
        self.executed_count = len(fresh)
        self.reused_count = len(reused)
        result = CampaignResult(
            spec=self.spec,
            records=[*reused, *fresh],
            workers=workers_used,
            wall_seconds=time.perf_counter() - started,
        )
        if self.store is not None:
            # save_campaign persists every record (fresh ones included) plus
            # the snapshot in one pass — no separate put_records needed.
            self.campaign_id = self.store.save_campaign(result)
        return result

    # ------------------------------------------------------------------
    def _run_sharded(self, runs: Sequence[RunSpec]) -> List[RunRecord]:
        shards = shard_grid(runs, self.workers)
        try:
            with ProcessPoolExecutor(max_workers=len(shards)) as executor:
                shard_results = list(executor.map(execute_shard, shards))
        except (OSError, BrokenProcessPool) as error:  # pool unavailable: run serially
            self.fell_back_to_serial = True
            self.fallback_reason = str(error)
            return execute_shard(runs)
        return [record for shard_records in shard_results for record in shard_records]


def run_campaign(
    spec: CampaignSpec, *, workers: int = 1, runner: Optional[CampaignRunner] = None
) -> CampaignResult:
    """Convenience wrapper: build a runner and execute the campaign."""
    runner = runner or CampaignRunner(spec, workers=workers)
    return runner.run()
