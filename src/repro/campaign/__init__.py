"""Parallel test-campaign engine for R-/M-testing at scale.

The paper's evaluation — many R-test cases across three implementation
schemes and several period/interference configurations — is an
embarrassingly-parallel grid.  This package runs such grids as *campaigns*:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec`, the declarative
  cartesian grid (scheme points × scenario points) that expands to picklable
  :class:`RunSpec` units with deterministically derived seeds;
* :mod:`repro.campaign.cache` — :class:`ArtifactCache`, content-keyed caching
  so statechart build + code generation run once per distinct model per
  process instead of once per configuration;
* :mod:`repro.campaign.worker` — :func:`execute_run`, the pure run function
  dispatched to workers;
* :mod:`repro.campaign.runner` — :class:`CampaignRunner`, which shards the
  grid across a ``ProcessPoolExecutor`` (with a deterministic single-process
  fallback);
* :mod:`repro.campaign.results` — :class:`CampaignResult`, the grid-ordered
  aggregate that feeds :mod:`repro.analysis` (Table I, sweep series) and the
  ``repro campaign`` CLI.

Campaign aggregates are byte-identical for any worker count: every run is a
pure function of its spec, seeds derive from grid coordinates rather than
execution order, and records are re-sorted by grid index before aggregation.

Scenario points either name a stock GPCA scenario or carry a
:class:`repro.scenarios.ScenarioProgram` directly (the ``scenarios`` preset
grid); see ``docs/architecture.md`` for the engine's design notes.
"""

from .cache import ArtifactCache, chart_fingerprint, model_fingerprint, process_cache
from .profiler import ProfileResult, profile_run
from .results import SUMMARY_FIELDS, CampaignResult, RunRecord
from .runner import CampaignRunner, default_worker_count, run_campaign, shard_grid
from .spec import (
    CASE_BUILDERS,
    M_TEST_ALL,
    M_TEST_NONE,
    M_TEST_POLICIES,
    M_TEST_VIOLATIONS,
    PRESETS,
    CampaignSpec,
    CasePoint,
    RunSpec,
    SchemePoint,
    build_case,
    case_requirement,
    derive_seed,
    full_grid_spec,
    interference_sweep_spec,
    period_sweep_spec,
    preset_spec,
    scenario_grid_spec,
    table_one_spec,
)
from .worker import execute_run, execute_shard, execution_count

__all__ = [
    "ArtifactCache",
    "CASE_BUILDERS",
    "SUMMARY_FIELDS",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "CasePoint",
    "M_TEST_ALL",
    "M_TEST_NONE",
    "M_TEST_POLICIES",
    "M_TEST_VIOLATIONS",
    "PRESETS",
    "ProfileResult",
    "RunRecord",
    "RunSpec",
    "SchemePoint",
    "build_case",
    "case_requirement",
    "chart_fingerprint",
    "default_worker_count",
    "derive_seed",
    "execute_run",
    "execute_shard",
    "execution_count",
    "model_fingerprint",
    "full_grid_spec",
    "interference_sweep_spec",
    "period_sweep_spec",
    "preset_spec",
    "process_cache",
    "profile_run",
    "run_campaign",
    "scenario_grid_spec",
    "shard_grid",
    "table_one_spec",
]
