"""Worker-side execution of campaign runs.

:func:`execute_run` is the unit of work the runner dispatches: a module-level
function of one picklable :class:`RunSpec`, returning one picklable
:class:`RunRecord`.  It never touches shared state except the calling
process's artifact cache, which only memoises immutable generated artifacts —
so executing the same spec in any process, in any order, yields the same
record payload bit for bit.

:func:`execute_shard` wraps a whole shard (a list of specs) in one call so a
campaign crosses the process boundary once per shard rather than once per
run.
"""

from __future__ import annotations

import time
from typing import List, Sequence

from ..codegen.c_backend import resolve_backend
from ..core.instrumentation import ProbeConfiguration
from ..core.m_testing import MTestAnalyzer
from ..core.r_testing import execute_r_test
from ..core.serialization import m_report_to_dict, r_report_to_dict
from ..systems import get_pack
from .cache import process_cache
from .results import RunRecord
from .spec import BACKEND_PYTHON, M_TEST_NONE, M_TEST_VIOLATIONS, RunSpec, derive_seed

#: Process-local count of actual run executions.  The store's incremental
#: tests assert on it: resuming a fully stored campaign must leave it
#: untouched (zero *new* executions), which is a stronger statement than
#: "the runner said it reused everything".
_EXECUTED_RUNS = 0


def execution_count() -> int:
    """How many runs :func:`execute_run` has executed in this process."""
    return _EXECUTED_RUNS


def execute_run(spec: RunSpec) -> RunRecord:
    """Execute one campaign run: R-testing, then the spec's M-testing policy.

    Fault-matrix coordinates are honoured here: a ``mutant`` swaps the
    generated artifacts for the mutated model's (cached per mutant id), and a
    non-empty ``faults`` plan instruments every freshly built system with a
    seed derived from the run's coordinates — both without touching the clean
    path, so a spec with neither remains bit-for-bit the pre-faults run.
    """
    global _EXECUTED_RUNS
    _EXECUTED_RUNS += 1
    started = time.perf_counter()
    pack = get_pack(spec.system)
    cache = process_cache()
    if spec.mutant is not None:
        artifacts = cache.artifacts_for_mutant(spec.model, spec.mutant)
    else:
        artifacts = cache.artifacts_for_model(spec.model)
    test_case = spec.test_case()

    # Resolve the SUT backend once per run; the compiled library is cached per
    # chart per process, so repeated runs reuse one compile.  Degradation
    # (e.g. no C compiler) falls back to the Python executor and is recorded
    # in the run record.
    resolution = resolve_backend(spec.backend, artifacts)

    # Runs that skip M-testing only need the R-level (M/C) trace events;
    # recording the i/o/transition probe events costs hot-loop time without
    # affecting the R verdicts (probes never touch M/C events or the RNG), so
    # they are gated off.  M-testing runs keep the full M-level probes.
    probes = ProbeConfiguration.r_level() if spec.m_test == M_TEST_NONE else None

    def factory():
        system = pack.build_system(
            spec.scheme,
            model=spec.model,
            seed=spec.sut_seed,
            period_us=spec.period_us,
            interference_scale=spec.interference_scale,
            artifacts=artifacts,
            probes=probes,
            code_factory=resolution.code_factory,
        )
        if spec.faults is not None and not spec.faults.empty:
            spec.faults.instrument(
                system, seed=derive_seed(spec.sut_seed, "faults", spec.faults.name, spec.case)
            )
        return system

    r_report = execute_r_test(factory, test_case)

    m_payload = None
    if spec.m_test != M_TEST_NONE:
        analyzer = MTestAnalyzer(pack.build_interface(), test_case.requirement)
        if spec.m_test == M_TEST_VIOLATIONS:
            m_report = analyzer.analyze_violations(r_report)
        else:
            m_report = analyzer.analyze(r_report.trace, sut_name=r_report.sut_name)
        m_payload = m_report_to_dict(m_report)

    return RunRecord(
        spec=spec,
        r_payload=r_report_to_dict(r_report),
        m_payload=m_payload,
        elapsed_s=time.perf_counter() - started,
        backend_payload=(
            None if spec.backend == BACKEND_PYTHON else resolution.to_payload()
        ),
    )


def execute_shard(specs: Sequence[RunSpec]) -> List[RunRecord]:
    """Execute one shard of the grid inside a single worker process."""
    return [execute_run(spec) for spec in specs]
