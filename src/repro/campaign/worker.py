"""Worker-side execution of campaign runs.

:func:`execute_run` is the unit of work the runner dispatches: a module-level
function of one picklable :class:`RunSpec`, returning one picklable
:class:`RunRecord`.  It never touches shared state except the calling
process's artifact cache, which only memoises immutable generated artifacts —
so executing the same spec in any process, in any order, yields the same
record payload bit for bit.

:func:`execute_shard` wraps a whole shard (a list of specs) in one call so a
campaign crosses the process boundary once per shard rather than once per
run.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Sequence

from ..codegen.c_backend import resolve_backend
from ..core.instrumentation import ProbeConfiguration
from ..core.m_testing import MTestAnalyzer
from ..core.r_testing import execute_r_test
from ..core.serialization import m_report_to_dict, r_report_to_dict
from ..obs import DEFAULT_PHASE_EDGES_S as _PHASE_EDGES, REGISTRY
from ..systems import get_pack
from .cache import process_cache
from .results import RunRecord
from .spec import BACKEND_PYTHON, M_TEST_NONE, M_TEST_VIOLATIONS, RunSpec, derive_seed

#: Process-local count of actual run executions.  The store's incremental
#: tests assert on it: resuming a fully stored campaign must leave it
#: untouched (zero *new* executions), which is a stronger statement than
#: "the runner said it reused everything".
_EXECUTED_RUNS = 0


def execution_count() -> int:
    """How many runs :func:`execute_run` has executed in this process."""
    return _EXECUTED_RUNS


def execute_run(spec: RunSpec) -> RunRecord:
    """Execute one campaign run: R-testing, then the spec's M-testing policy.

    Fault-matrix coordinates are honoured here: a ``mutant`` swaps the
    generated artifacts for the mutated model's (cached per mutant id), and a
    non-empty ``faults`` plan instruments every freshly built system with a
    seed derived from the run's coordinates — both without touching the clean
    path, so a spec with neither remains bit-for-bit the pre-faults run.
    """
    global _EXECUTED_RUNS
    _EXECUTED_RUNS += 1
    started = time.perf_counter()
    pack = get_pack(spec.system)
    cache = process_cache()
    if spec.mutant is not None:
        artifacts = cache.artifacts_for_mutant(spec.model, spec.mutant)
    else:
        artifacts = cache.artifacts_for_model(spec.model)
    test_case = spec.test_case()

    # Resolve the SUT backend once per run; the compiled library is cached per
    # chart per process, so repeated runs reuse one compile.  Degradation
    # (e.g. no C compiler) falls back to the Python executor and is recorded
    # in the run record.
    resolution = resolve_backend(spec.backend, artifacts)
    codegen_done = time.perf_counter()

    # Runs that skip M-testing only need the R-level (M/C) trace events;
    # recording the i/o/transition probe events costs hot-loop time without
    # affecting the R verdicts (probes never touch M/C events or the RNG), so
    # they are gated off.  M-testing runs keep the full M-level probes.
    probes = ProbeConfiguration.r_level() if spec.m_test == M_TEST_NONE else None

    # The last system the factory built is captured for the post-run counter
    # pull: execute_r_test builds its systems internally, and the kernel /
    # scheduler counters can only be read off the built instance afterwards.
    built = []

    def factory():
        system = pack.build_system(
            spec.scheme,
            model=spec.model,
            seed=spec.sut_seed,
            period_us=spec.period_us,
            interference_scale=spec.interference_scale,
            artifacts=artifacts,
            probes=probes,
            code_factory=resolution.code_factory,
        )
        if spec.faults is not None and not spec.faults.empty:
            spec.faults.instrument(
                system, seed=derive_seed(spec.sut_seed, "faults", spec.faults.name, spec.case)
            )
        built.append(system)
        return system

    r_report = execute_r_test(factory, test_case)
    execute_done = time.perf_counter()

    m_payload = None
    if spec.m_test != M_TEST_NONE:
        analyzer = MTestAnalyzer(pack.build_interface(), test_case.requirement)
        if spec.m_test == M_TEST_VIOLATIONS:
            m_report = analyzer.analyze_violations(r_report)
        else:
            m_report = analyzer.analyze(r_report.trace, sut_name=r_report.sut_name)
        m_payload = m_report_to_dict(m_report)
    r_payload = r_report_to_dict(r_report)
    finished = time.perf_counter()

    # Post-run bookkeeping, outside every simulation loop: fold the engine's
    # lifetime counters and the phase timings into the process-local registry.
    # Pull-collection keeps this off the hot path entirely — it is a handful
    # of dict updates per *run*, not per event.
    REGISTRY.counter("runs_executed_total").inc()
    for system in built:
        snapshot = getattr(system, "telemetry_snapshot", None)
        if snapshot is not None:
            for name, value in snapshot().items():
                if value:
                    REGISTRY.counter(name + "_total").inc(int(value))
    phase_seconds = {
        "codegen": codegen_done - started,
        "execute": execute_done - codegen_done,
        "analyze": finished - execute_done,
    }
    for phase, seconds in phase_seconds.items():
        REGISTRY.histogram(
            "run_phase_seconds", edges=_PHASE_EDGES, labels={"phase": phase}
        ).observe(seconds)

    return RunRecord(
        spec=spec,
        r_payload=r_payload,
        m_payload=m_payload,
        elapsed_s=finished - started,
        backend_payload=(
            None if spec.backend == BACKEND_PYTHON else resolution.to_payload()
        ),
        phase_seconds={k: round(v, 6) for k, v in phase_seconds.items()},
    )


def execute_shard(
    specs: Sequence[RunSpec],
    progress: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Execute one shard of the grid inside a single worker process.

    ``progress`` (serial path only — callables do not cross the process
    boundary) is invoked with each record as it completes, which is how the
    runner feeds live campaign telemetry without touching the workers.
    """
    if progress is None:
        return [execute_run(spec) for spec in specs]
    records: List[RunRecord] = []
    for spec in specs:
        record = execute_run(spec)
        records.append(record)
        progress(record)
    return records
