"""Campaign results: per-run records and the campaign-level aggregate.

A :class:`RunRecord` is the worker's return value for one grid point.  It
carries only built-in types (the JSON-shaped payloads of the existing
serialization module), so it crosses process boundaries cheaply and its
canonical rendering is byte-identical no matter which worker produced it.
Wall-clock timings are kept *outside* the canonical payload — they are the
one legitimately non-deterministic output of a campaign.

:class:`CampaignResult` aggregates the records in grid order and feeds the
existing analysis layer: :meth:`CampaignResult.table_one` rebuilds the
paper's Table I and :meth:`CampaignResult.sweep_points` the Fig.-style
ablation series, both from the serialized payloads alone.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..analysis.figures import SweepPoint, sweep_point
from ..analysis.tables import SchemeResult, TableOne
from ..core.m_testing import MTestReport
from ..core.r_testing import RTestReport
from ..core.serialization import m_report_from_dict, r_report_from_dict
from ..systems import get_pack
from .spec import CampaignSpec, RunSpec, case_requirement

RESULT_FORMAT_VERSION = 1

#: The fixed column schema of :meth:`CampaignResult.summary_rows` /
#: :meth:`CampaignResult.to_csv`.  Declared once so an *empty* campaign CSV
#: still carries the full header row and downstream store/diff exports can
#: rely on a stable schema.
SUMMARY_FIELDS = (
    "index",
    "label",
    "scheme",
    "case",
    "samples",
    "passed",
    "violations",
    "timeouts",
    "max_latency_ms",
)


@dataclass(frozen=True)
class RunRecord:
    """The outcome of one campaign run (picklable, deterministic payload)."""

    spec: RunSpec
    r_payload: Dict[str, Any]
    m_payload: Optional[Dict[str, Any]] = None
    #: Worker-side wall-clock of this run; excluded from the canonical dict.
    elapsed_s: float = 0.0
    #: Backend resolution of this run (requested/effective/reason); ``None``
    #: for default-backend runs, so pre-backend payloads are unchanged.
    backend_payload: Optional[Dict[str, Any]] = None
    #: Worker-side per-phase wall-clock (codegen/execute/analyze seconds).
    #: Timing side channel like ``elapsed_s``: excluded from the canonical
    #: dict, persisted separately by the store so ``repro store runs`` can
    #: answer "which coordinates are slow, and in which phase".
    phase_seconds: Optional[Dict[str, float]] = None

    # ------------------------------------------------------------------
    # Reconstruction of the report objects the analysis layer consumes
    # ------------------------------------------------------------------
    def r_report(self) -> RTestReport:
        """Rebuild the R-test report (test case regenerated from the spec).

        Memoised: the aggregate consumers (summary, table, CSV) each walk the
        records, and regenerating the stimulus schedule per walk is pure
        waste.  The payload is immutable once the record exists, so caching
        is safe; ``object.__setattr__`` is the standard escape hatch for a
        frozen dataclass.
        """
        cached = self.__dict__.get("_r_report_cache")
        if cached is None:
            cached = r_report_from_dict(self.r_payload, self.spec.test_case())
            object.__setattr__(self, "_r_report_cache", cached)
        return cached

    def m_report(self) -> Optional[MTestReport]:
        """Rebuild the M-test report, if this run performed M-testing."""
        if self.m_payload is None:
            return None
        # The requirement is sample-independent; program-backed runs carry it
        # directly, and for stock scenarios case_requirement's one-sample
        # default avoids regenerating the run's full stimulus schedule here.
        if self.spec.program is not None:
            requirement = self.spec.program.requirement
        else:
            requirement = case_requirement(self.spec.case, system=self.spec.system)
        return m_report_from_dict(self.m_payload, requirement)

    # ------------------------------------------------------------------
    @property
    def passed(self) -> bool:
        return bool(self.r_payload.get("passed"))

    @property
    def violation_count(self) -> int:
        return int(self.r_payload.get("violations", 0))

    @property
    def timeout_count(self) -> int:
        return int(self.r_payload.get("timeouts", 0))

    def to_dict(self) -> Dict[str, Any]:
        """The canonical (deterministic) rendering of this record."""
        payload: Dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "r": self.r_payload,
            "m": self.m_payload,
        }
        if self.backend_payload is not None:
            payload["backend"] = self.backend_payload
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from :meth:`to_dict` output (JSON round-trip safe).

        Wall-clock timing is not part of the canonical payload, so a rebuilt
        record reports ``elapsed_s == 0.0``; everything that feeds
        :meth:`to_dict` round-trips byte-identically.
        """
        return cls(
            spec=RunSpec.from_dict(payload["spec"]),
            r_payload=payload["r"],
            m_payload=payload.get("m"),
            backend_payload=payload.get("backend"),
        )


@dataclass
class CampaignResult:
    """Aggregate of a full campaign, ordered by grid index."""

    spec: CampaignSpec
    records: List[RunRecord] = field(default_factory=list)
    workers: int = 1
    wall_seconds: float = 0.0

    def __post_init__(self) -> None:
        self.records = sorted(self.records, key=lambda record: record.spec.index)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def record_for(self, *, scheme: Optional[int] = None, case: Optional[str] = None,
                   period_us: Optional[int] = None,
                   interference_scale: Optional[float] = None) -> RunRecord:
        """The single record matching the given grid coordinates."""
        matches = [
            record
            for record in self.records
            if (scheme is None or record.spec.scheme == scheme)
            and (case is None or record.spec.case == case)
            and (period_us is None or record.spec.period_us == period_us)
            and (interference_scale is None or record.spec.interference_scale == interference_scale)
        ]
        if len(matches) != 1:
            raise LookupError(
                f"expected exactly one matching record, found {len(matches)} "
                f"(scheme={scheme}, case={case}, period_us={period_us}, "
                f"interference_scale={interference_scale})"
            )
        return matches[0]

    # ------------------------------------------------------------------
    # Bridges into repro.analysis
    # ------------------------------------------------------------------
    def table_one(self, case: str = "bolus-request") -> TableOne:
        """Rebuild the paper's Table I from this campaign's records."""
        table = TableOne()
        for record in self.records:
            if record.spec.case != case:
                continue
            # Scheme labels come from the run's own pack, not a hardwired
            # GPCA import — mixed-system campaigns label each row correctly.
            pack = get_pack(record.spec.system)
            table.add(
                SchemeResult(
                    scheme=record.spec.scheme,
                    label=pack.scheme_name(record.spec.scheme),
                    r_report=record.r_report(),
                    m_report=record.m_report(),
                )
            )
        return table

    def sweep_points(self, axis: str) -> List[SweepPoint]:
        """The ablation sweep series along ``axis``.

        ``axis`` is ``"period_ms"`` (scheme 1 polling period) or
        ``"interference_scale"`` (scheme 3 burst scaling).
        """
        points = []
        for record in self.records:
            if axis == "period_ms":
                if record.spec.period_us is None:
                    continue
                parameter = record.spec.period_us / 1000.0
            elif axis == "interference_scale":
                if record.spec.interference_scale is None:
                    continue
                parameter = record.spec.interference_scale
            else:
                raise ValueError(f"unknown sweep axis {axis!r}")
            points.append(sweep_point(parameter, record.r_report()))
        return points

    # ------------------------------------------------------------------
    # Summaries and export
    # ------------------------------------------------------------------
    def summary_rows(self) -> List[Dict[str, Any]]:
        """One compact row per run (used by the CLI listing and the CSV export)."""
        rows = []
        for record in self.records:
            r_report = record.r_report()
            max_latency = r_report.max_latency_us
            rows.append(
                {
                    "index": record.spec.index,
                    "label": record.spec.label,
                    "scheme": record.spec.scheme,
                    "case": record.spec.case,
                    "samples": len(r_report.samples),
                    "passed": record.passed,
                    "violations": record.violation_count,
                    "timeouts": record.timeout_count,
                    "max_latency_ms": None if max_latency is None else round(max_latency / 1000, 1),
                }
            )
        return rows

    def render_summary(self) -> str:
        """Plain-text per-run listing of the campaign."""
        header = (
            f"{'run':>4} | {'configuration':<38} | {'samples':>7} | {'verdict':>7} | "
            f"{'viol':>4} | {'MAX':>4} | {'worst (ms)':>10}"
        )
        lines = [f"campaign {self.spec.name!r}: {len(self.records)} runs", header, "-" * len(header)]
        for row in self.summary_rows():
            worst = "-" if row["max_latency_ms"] is None else f"{row['max_latency_ms']:.1f}"
            lines.append(
                f"{row['index']:>4} | {row['label']:<38} | {row['samples']:>7} | "
                f"{'PASS' if row['passed'] else 'FAIL':>7} | {row['violations']:>4} | "
                f"{row['timeouts']:>4} | {worst:>10}"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """The canonical aggregate: identical for 1 and N workers, by design.

        Timing fields (``wall_seconds``, per-record ``elapsed_s``, worker
        count) are deliberately excluded; use :meth:`timing_dict` for those.
        """
        return {
            "format_version": RESULT_FORMAT_VERSION,
            "campaign": self.spec.to_dict(),
            "runs": [record.to_dict() for record in self.records],
        }

    def to_json(self, *, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CampaignResult":
        """Rebuild a campaign aggregate from :meth:`to_dict` output.

        Dispatches on the campaign payload's shape: a grid with explicit
        ``schemes``/``cases`` axes rebuilds as :class:`CampaignSpec`, a
        kill-matrix payload (``fault_plans``/``mutants`` axes) rebuilds as
        :class:`repro.faults.matrix.FaultMatrixSpec` (imported lazily to keep
        the campaign layer independent of the faults subsystem).  Timing
        fields are not part of the canonical payload, so the rebuilt result
        reports zero wall-clock; its :meth:`to_json` is byte-identical to the
        original's.
        """
        campaign = payload["campaign"]
        if "fault_plans" in campaign:
            from ..faults.matrix import FaultMatrixSpec

            spec = FaultMatrixSpec.from_dict(campaign)
        else:
            spec = CampaignSpec.from_dict(campaign)
        return cls(
            spec=spec,
            records=[RunRecord.from_dict(record) for record in payload.get("runs", [])],
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignResult":
        return cls.from_dict(json.loads(text))

    def to_csv(self) -> str:
        """The per-run summary table as CSV.

        The header always carries the full :data:`SUMMARY_FIELDS` schema —
        even for an empty campaign — so exports have a fixed shape.
        """
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(SUMMARY_FIELDS))
        writer.writeheader()
        writer.writerows(self.summary_rows())
        return buffer.getvalue()

    def timing_dict(self) -> Dict[str, Any]:
        """The non-deterministic side channel: wall-clock and worker count."""
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "run_seconds": {
                str(record.spec.index): record.elapsed_s for record in self.records
            },
            "run_phases": {
                str(record.spec.index): record.phase_seconds
                for record in self.records
                if record.phase_seconds is not None
            },
        }
