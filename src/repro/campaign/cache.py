"""Content-keyed caching of generated CODE(M) artifacts.

A campaign executes many runs that share the same model.  Building the
statechart and generating code for every configuration is pure waste — the
artifacts are immutable and every system instantiates its own runtime via
``GeneratedArtifacts.new_instance()`` — so the cache builds them once per
*distinct model content* and hands the same artifacts to every run.

Keying is two-level:

* model **name** ("fig2", "extended") → memoised (fingerprint, artifacts), so
  repeat lookups skip even the chart construction;
* chart **fingerprint** (a stable hash of the chart's structure) → artifacts,
  so two names — or a caller-supplied chart — that denote structurally
  identical models share one generation run.

Each worker process owns one process-global cache (:func:`process_cache`);
nothing is shared across processes, so no locking is needed and cache state
can never influence results — only how often ``generate_code`` runs.
"""

from __future__ import annotations

import functools
import hashlib
from typing import Dict, Optional

from ..codegen.generator import GeneratedArtifacts, generate_code
from ..model.statechart import Statechart

# Model name -> statechart builder, aggregated across every registered system
# pack (the same live dict object as ``repro.systems.MODEL_BUILDERS``, kept
# under its historical name here).  Model names are globally unique across
# packs, so plain model names remain sufficient cache keys.
from ..systems import MODEL_BUILDERS

__all__ = [
    "MODEL_BUILDERS",
    "ArtifactCache",
    "chart_fingerprint",
    "model_fingerprint",
    "process_cache",
]


def _const_key(const) -> str:
    """A stable key for one code-object constant (primitive, container, code)."""
    if isinstance(const, (int, float, str, bytes, bool, type(None))):
        return repr(const)
    if hasattr(const, "co_code"):  # nested lambda / comprehension
        return _code_key(const)
    if isinstance(const, (tuple, frozenset)):
        items = [_const_key(item) for item in const]
        if isinstance(const, frozenset):
            items = sorted(items)
        return f"{type(const).__name__}({','.join(items)})"
    return f"<{type(const).__name__}>"


def _code_key(code) -> str:
    """A stable key for one code object, covering every kind of constant."""
    const_keys = [_const_key(const) for const in code.co_consts]
    payload = code.co_code + repr((code.co_names, code.co_varnames, const_keys)).encode()
    return hashlib.sha256(payload).hexdigest()[:16]


def _stable_value_key(value) -> str:
    """A process-stable rendering of a transition ingredient.

    Plain values render via ``repr``; callables (guards, computed assignment
    values) render as their qualified name plus a hash of their bytecode,
    captured closure values and keyword defaults — stable across processes
    for the same source, unlike their default ``repr``, which embeds a memory
    address.  Residual limitation: a callable that *references* a global
    helper is keyed by the helper's name, not its definition, so swapping in
    a different same-named global between two charts in one process would
    not change the key.
    """
    if isinstance(value, functools.partial):
        inner = _stable_value_key(value.func)
        args = [_stable_value_key(argument) for argument in value.args]
        kwargs = {name: _stable_value_key(kw) for name, kw in sorted(value.keywords.items())}
        return f"partial:({inner},{args!r},{kwargs!r})"
    if callable(value):
        code = getattr(value, "__code__", None)
        qualname = f"{getattr(value, '__module__', '?')}.{getattr(value, '__qualname__', type(value).__name__)}"
        if code is None:
            # Callable object without bytecode: key by type plus instance
            # state so two differently-configured instances don't collide.
            state = {
                name: _stable_value_key(attr)
                for name, attr in sorted(getattr(value, "__dict__", {}).items())
            }
            return f"callable:{qualname}:{state!r}"
        # Captured state changes behaviour without changing bytecode: two
        # lambdas differing only in a closed-over constant or a keyword
        # default must not collide.
        closure_keys = []
        for cell in getattr(value, "__closure__", None) or ():
            try:
                closure_keys.append(_stable_value_key(cell.cell_contents))
            except ValueError:  # empty cell
                closure_keys.append("<empty-cell>")
        default_keys = [
            _stable_value_key(default) for default in getattr(value, "__defaults__", None) or ()
        ]
        payload = repr((qualname, _code_key(code), closure_keys, default_keys)).encode()
        return "callable:" + hashlib.sha256(payload).hexdigest()[:16]
    return repr(value)


def chart_fingerprint(chart: Statechart) -> str:
    """A stable content hash of a statechart's structure and behaviour.

    Covers every state, the full definition of every transition (trigger
    event, temporal trigger, guard, actions, priority — everything the code
    generator lowers into CODE(M)), and every event/variable declaration.
    Uses SHA-256 over a canonical rendering (never ``hash()``, which is
    process-salted), so the fingerprint is identical across worker processes
    and interpreter runs.
    """
    transition_keys = []
    for transition in chart.transitions:
        actions = ",".join(
            f"{assign.variable}<-{_stable_value_key(assign.value)}"
            for assign in transition.actions
        )
        transition_keys.append(
            f"{transition.name}:{transition.source}->{transition.target}"
            f"@{transition.priority}"
            f"|ev={transition.event}"
            f"|tmp={transition.temporal!r}"
            f"|guard={_stable_value_key(transition.guard) if transition.guard else '-'}"
            f"|act=[{actions}]"
        )
    parts = [
        f"name={chart.name}",
        f"initial={chart.initial_state}",
        "states=" + ",".join(sorted(chart.state_names)),
        "transitions=" + ";".join(transition_keys),
        "inputs=" + ",".join(sorted(event.name for event in chart.input_events)),
        "outputs="
        + ",".join(
            f"{variable.name}={variable.initial!r}" for variable in chart.output_variables
        ),
        "locals="
        + ",".join(
            f"{variable.name}={variable.initial!r}" for variable in chart.local_variables
        ),
    ]
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


#: Model name -> memoised structural fingerprint (building the chart just to
#: fingerprint it costs far more than the hash itself; store keys ask often).
_MODEL_FINGERPRINTS: Dict[str, str] = {}


def model_fingerprint(model: str) -> str:
    """The structural fingerprint of a named model's statechart (memoised).

    This is what makes persistent run-store keys *content*-addressed: a store
    coordinate embeds the fingerprint of the model the run executed, so
    editing a model silently invalidates every stored result computed from
    its previous structure.  Stable across processes and interpreter
    invocations (pinned by ``tests/campaign/test_fingerprint_stability.py``).
    """
    cached = _MODEL_FINGERPRINTS.get(model)
    if cached is None:
        try:
            builder = MODEL_BUILDERS[model]
        except KeyError:
            known = ", ".join(sorted(MODEL_BUILDERS))
            raise ValueError(f"unknown model {model!r} (known: {known})") from None
        cached = chart_fingerprint(builder())
        _MODEL_FINGERPRINTS[model] = cached
    return cached


class ArtifactCache:
    """Builds statecharts and generates CODE(M) at most once per content key."""

    def __init__(self) -> None:
        self._by_fingerprint: Dict[str, GeneratedArtifacts] = {}
        self._by_model: Dict[str, GeneratedArtifacts] = {}
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    @staticmethod
    def _builder_for(model: str):
        try:
            return MODEL_BUILDERS[model]
        except KeyError:
            known = ", ".join(sorted(MODEL_BUILDERS))
            raise ValueError(f"unknown model {model!r} (known: {known})") from None

    def artifacts_for_model(self, model: str) -> GeneratedArtifacts:
        """Artifacts for a named model of any registered pack ("fig2", ...)."""
        cached = self._by_model.get(model)
        if cached is not None:
            self.hits += 1
            return cached
        artifacts = self.artifacts_for_chart(self._builder_for(model)())
        self._by_model[model] = artifacts
        return artifacts

    def artifacts_for_mutant(self, model: str, mutant) -> GeneratedArtifacts:
        """Artifacts for a named model with one mutation applied.

        ``mutant`` is a :class:`repro.faults.mutants.MutantSpec` (duck-typed —
        anything with ``mutant_id`` and ``apply(chart)``).  Memoised per
        ``(model, mutant_id)`` so a kill-matrix campaign rebuilds and
        regenerates each mutant at most once per worker process; structurally
        identical mutants additionally share artifacts via the fingerprint
        level, like any other chart.
        """
        key = f"{model}::{mutant.mutant_id}"
        cached = self._by_model.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        artifacts = self.artifacts_for_chart(mutant.apply(self._builder_for(model)()))
        self._by_model[key] = artifacts
        return artifacts

    def artifacts_for_chart(self, chart: Statechart) -> GeneratedArtifacts:
        """Artifacts for an explicit chart, shared by structural fingerprint."""
        fingerprint = chart_fingerprint(chart)
        cached = self._by_fingerprint.get(fingerprint)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        artifacts = generate_code(chart)
        self._by_fingerprint[fingerprint] = artifacts
        return artifacts

    # ------------------------------------------------------------------
    @property
    def generation_count(self) -> int:
        """How many times ``generate_code`` actually ran."""
        return self.misses

    def clear(self) -> None:
        self._by_fingerprint.clear()
        self._by_model.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "entries": len(self._by_fingerprint)}


#: The per-process cache used by campaign workers.
_PROCESS_CACHE: Optional[ArtifactCache] = None


def process_cache() -> ArtifactCache:
    """The calling process's artifact cache (created on first use)."""
    global _PROCESS_CACHE
    if _PROCESS_CACHE is None:
        _PROCESS_CACHE = ArtifactCache()
    return _PROCESS_CACHE
