"""Analysis and reporting: statistics, Table I rendering, figure data series."""

from .export import (
    sweep_to_csv,
    sweep_to_markdown,
    table_one_to_csv,
    table_one_to_markdown,
)
from .figures import (
    Fig3View,
    ModelTimingView,
    SweepPoint,
    fig3_views,
    model_timing_view,
    render_sweep,
    sweep_point,
)
from .statistics import Summary, percentile, to_milliseconds, violation_rate
from .tables import SchemeResult, TableOne

__all__ = [
    "Fig3View",
    "ModelTimingView",
    "SchemeResult",
    "Summary",
    "SweepPoint",
    "TableOne",
    "fig3_views",
    "model_timing_view",
    "percentile",
    "render_sweep",
    "sweep_point",
    "sweep_to_csv",
    "sweep_to_markdown",
    "table_one_to_csv",
    "table_one_to_markdown",
    "to_milliseconds",
    "violation_rate",
]
