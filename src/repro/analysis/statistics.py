"""Small statistics helpers used by the tables, figures and benchmarks.

Kept dependency-free (plain Python) so the core library does not require
NumPy; the benchmark harness may still use NumPy for its own post-processing.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of a sample of durations (microseconds)."""

    count: int
    minimum: float
    maximum: float
    mean: float
    median: float
    stdev: float
    p95: float

    @classmethod
    def of(cls, values: Sequence[float]) -> Optional["Summary"]:
        values = [float(value) for value in values if value is not None]
        if not values:
            return None
        ordered = sorted(values)
        mean = sum(ordered) / len(ordered)
        variance = sum((value - mean) ** 2 for value in ordered) / len(ordered)
        return cls(
            count=len(ordered),
            minimum=ordered[0],
            maximum=ordered[-1],
            mean=mean,
            median=percentile(ordered, 50.0),
            stdev=math.sqrt(variance),
            p95=percentile(ordered, 95.0),
        )

    def scaled(self, factor: float) -> "Summary":
        """Unit conversion helper (e.g. microseconds to milliseconds)."""
        return Summary(
            count=self.count,
            minimum=self.minimum * factor,
            maximum=self.maximum * factor,
            mean=self.mean * factor,
            median=self.median * factor,
            stdev=self.stdev * factor,
            p95=self.p95 * factor,
        )


def percentile(values: Sequence[float], pct: float) -> float:
    """Linear-interpolation percentile of already-meaningful numeric values."""
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    if not 0.0 <= pct <= 100.0:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(float(value) for value in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    fraction = rank - low
    # Interpolate as base + fraction * span: exact when both bracketing values
    # are equal, and free of the rounding overshoot a*(1-f) + b*f can produce.
    return ordered[low] + fraction * (ordered[high] - ordered[low])


def violation_rate(latencies_us: Sequence[Optional[int]], deadline_us: int) -> float:
    """Fraction of samples that violated the deadline (missing responses count)."""
    if not latencies_us:
        return 0.0
    violations = sum(
        1 for latency in latencies_us if latency is None or latency > deadline_us
    )
    return violations / len(latencies_us)


def to_milliseconds(values_us: Sequence[Optional[int]]) -> List[Optional[float]]:
    """Convert a list of microsecond values to milliseconds, preserving ``None``."""
    return [None if value is None else value / 1000.0 for value in values_us]
