"""Rendering of the paper's Table I from R-testing and M-testing results.

Table I of the paper shows, for each of the three implementation schemes, the
ten measured R-testing delays of the bolus-request scenario (violations in
red, MAX for time-outs) and the M-testing delay segments of the violating
samples.  :class:`TableOne` holds the same data and renders it as a plain-text
table (plus a structured row form the benchmarks and tests consume).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.m_testing import MTestReport
from ..core.r_testing import RTestReport
from .statistics import Summary


def _ms(value_us: Optional[int]) -> str:
    if value_us is None:
        return "MAX"
    return f"{value_us / 1000:.1f}"


@dataclass
class SchemeResult:
    """R-testing and M-testing outcomes of one implementation scheme."""

    scheme: int
    label: str
    r_report: RTestReport
    m_report: Optional[MTestReport] = None

    @property
    def sample_count(self) -> int:
        return len(self.r_report.samples)

    def r_cell(self, sample_index: int) -> str:
        """The R-testing cell for one sample, rendered as the paper renders it."""
        for sample in self.r_report.samples:
            if sample.index == sample_index:
                marker = "" if sample.passed else " *"
                return f"{sample.latency_label()}{marker}"
        return "-"

    def m_cells(self, sample_index: int) -> Dict[str, str]:
        """The M-testing cells (input/code/output delay) for one sample."""
        if self.m_report is None:
            return {"input": "-", "code": "-", "output": "-"}
        for segment in self.m_report.segments:
            if segment.sample_index == sample_index:
                return {
                    "input": _ms(segment.input_delay_us),
                    "code": _ms(segment.code_delay_us),
                    "output": _ms(segment.output_delay_us),
                }
        return {"input": "-", "code": "-", "output": "-"}

    def summary_row(self) -> Dict[str, object]:
        """Aggregate row used by EXPERIMENTS.md and the benchmark output."""
        latencies = self.r_report.observed_latencies_us
        summary = Summary.of(latencies)
        return {
            "scheme": self.scheme,
            "label": self.label,
            "samples": self.sample_count,
            "violations": self.r_report.violation_count,
            "timeouts": self.r_report.timeout_count,
            "passed": self.r_report.passed,
            "max_latency_ms": None if summary is None else round(summary.maximum / 1000, 1),
            "mean_latency_ms": None if summary is None else round(summary.mean / 1000, 1),
            "dominant_segment": None if self.m_report is None else self.m_report.dominant_segment(),
        }


@dataclass
class TableOne:
    """The complete Table I: one column group per implementation scheme."""

    results: List[SchemeResult] = field(default_factory=list)
    title: str = "Measured time-delays for the bolus request scenario in REQ1"

    def add(self, result: SchemeResult) -> None:
        self.results.append(result)

    @property
    def sample_count(self) -> int:
        return max((result.sample_count for result in self.results), default=0)

    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """Structured per-sample rows (used by tests and the bench harness)."""
        rows: List[Dict[str, object]] = []
        for sample_index in range(self.sample_count):
            row: Dict[str, object] = {"sample": sample_index + 1}
            for result in self.results:
                prefix = f"scheme{result.scheme}"
                row[f"{prefix}_r"] = result.r_cell(sample_index)
                m_cells = result.m_cells(sample_index)
                row[f"{prefix}_input"] = m_cells["input"]
                row[f"{prefix}_code"] = m_cells["code"]
                row[f"{prefix}_output"] = m_cells["output"]
            rows.append(row)
        return rows

    def summary_rows(self) -> List[Dict[str, object]]:
        return [result.summary_row() for result in self.results]

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Plain-text rendering of the table (one row per test sample).

        Violating R-testing samples are marked with ``*`` (the paper marks
        them red); ``MAX`` means the c-event was not observed before the
        time-out.
        """
        lines = [f"TABLE I. {self.title}", ""]
        header_1 = f"{'':>7} |"
        header_2 = f"{'sample':>7} |"
        for result in self.results:
            header_1 += f" {result.label:^47} |"
            header_2 += (
                f" {'R (ms)':>9} {'In (ms)':>11} {'Code (ms)':>12} {'Out (ms)':>11} |"
            )
        lines.append(header_1)
        lines.append(header_2)
        lines.append("-" * len(header_2))
        for row in self.rows():
            line = f"{row['sample']:>7} |"
            for result in self.results:
                prefix = f"scheme{result.scheme}"
                line += (
                    f" {row[f'{prefix}_r']:>9} {row[f'{prefix}_input']:>11} "
                    f"{row[f'{prefix}_code']:>12} {row[f'{prefix}_output']:>11} |"
                )
            lines.append(line)
        lines.append("-" * len(header_2))
        for result in self.results:
            summary = result.summary_row()
            lines.append(
                f"  {result.label}: {summary['violations']} violation(s) "
                f"({summary['timeouts']} MAX) out of {summary['samples']} samples; "
                f"R-testing {'PASS' if summary['passed'] else 'FAIL'}"
                + (
                    f"; dominant delay segment: {summary['dominant_segment']}"
                    if summary["dominant_segment"]
                    else ""
                )
            )
        return "\n".join(lines)
