"""Data series behind the paper's figures and the ablation sweeps.

The paper's figures are illustrations rather than measurement plots, but each
one corresponds to concrete data this reproduction can compute:

* **Fig. 3-(a)** — the model-level timing view: the tick at which the model
  emits the response after the trigger, against the verified bound;
* **Fig. 3-(b)** — the R-testing view: m-event and c-event instants;
* **Fig. 3-(c)** — the M-testing I/O view: m, i, o, c instants and the three
  delay segments between them;
* **Fig. 3-(d)** — the M-testing transition view: the execution span of every
  transition between the i-event and the o-event.

:func:`fig3_view` assembles all four views for one test sample; the sweep
helpers produce the series used by the ablation benchmarks (violation rate
versus polling period, versus interference load).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.delays import DelaySegments
from ..core.m_testing import MTestReport
from ..core.r_testing import RTestReport
from ..core.requirements import TimingRequirement
from ..model.simulation import ModelExecutor
from ..model.statechart import Statechart
from .statistics import violation_rate


@dataclass(frozen=True)
class ModelTimingView:
    """Fig. 3-(a): how the model itself times the trigger/response pair."""

    trigger_tick: int
    response_tick: Optional[int]
    deadline_ticks: int

    @property
    def response_latency_ticks(self) -> Optional[int]:
        if self.response_tick is None:
            return None
        return self.response_tick - self.trigger_tick

    @property
    def within_deadline(self) -> bool:
        latency = self.response_latency_ticks
        return latency is not None and latency <= self.deadline_ticks


@dataclass(frozen=True)
class Fig3View:
    """All four timing views of one stimulus/response sample."""

    sample_index: int
    model: ModelTimingView
    segments: DelaySegments

    @property
    def r_view(self) -> Tuple[Optional[int], Optional[int]]:
        """Fig. 3-(b): (m-event time, c-event time) in microseconds."""
        return self.segments.m_time_us, self.segments.c_time_us

    @property
    def io_view(self) -> Dict[str, Optional[int]]:
        """Fig. 3-(c): the four boundary instants in microseconds."""
        return {
            "m": self.segments.m_time_us,
            "i": self.segments.i_time_us,
            "o": self.segments.o_time_us,
            "c": self.segments.c_time_us,
        }

    @property
    def transition_view(self) -> List[Tuple[str, int, int]]:
        """Fig. 3-(d): (transition, start, end) spans in microseconds."""
        return [
            (delay.transition, delay.start_us, delay.end_us)
            for delay in self.segments.transition_delays
        ]

    def render(self) -> str:
        """A compact textual rendering of the four views."""
        lines = [f"Sample {self.sample_index}"]
        latency = self.model.response_latency_ticks
        lines.append(
            f"  (a) model:        response after "
            f"{'unbounded' if latency is None else f'{latency} ticks'} "
            f"(verified bound {self.model.deadline_ticks} ticks)"
        )
        m_time, c_time = self.r_view
        if m_time is not None and c_time is not None:
            lines.append(
                f"  (b) R-testing:    m at {m_time / 1000:.1f} ms, c at {c_time / 1000:.1f} ms "
                f"(latency {(c_time - m_time) / 1000:.1f} ms)"
            )
        else:
            lines.append("  (b) R-testing:    response not observed (MAX)")
        lines.append(
            "  (c) M-testing:    "
            f"input {self._fmt(self.segments.input_delay_us)}, "
            f"code {self._fmt(self.segments.code_delay_us)}, "
            f"output {self._fmt(self.segments.output_delay_us)}"
        )
        spans = ", ".join(
            f"{name}={(end - start) / 1000:.1f} ms" for name, start, end in self.transition_view
        )
        lines.append(f"  (d) transitions:  {spans or 'none recorded'}")
        return "\n".join(lines)

    @staticmethod
    def _fmt(value_us: Optional[int]) -> str:
        return "MAX" if value_us is None else f"{value_us / 1000:.1f} ms"


def model_timing_view(chart: Statechart, requirement: TimingRequirement) -> ModelTimingView:
    """Compute the Fig. 3-(a) view by executing the model on the trigger event."""
    if not requirement.has_model_counterpart:
        raise ValueError("requirement has no model-level counterpart")
    executor = ModelExecutor(chart)
    trigger_tick = 0
    executor.inject(requirement.model_trigger_event)
    executor.advance(requirement.deadline_us // 1000 + 1)
    change = None
    for output_change in executor.output_changes:
        if (
            output_change.variable == requirement.model_response_variable
            and output_change.value == requirement.model_response_value
        ):
            change = output_change
            break
    return ModelTimingView(
        trigger_tick=trigger_tick,
        response_tick=None if change is None else change.tick,
        deadline_ticks=requirement.deadline_us // 1000,
    )


def fig3_views(
    chart: Statechart,
    requirement: TimingRequirement,
    m_report: MTestReport,
) -> List[Fig3View]:
    """One :class:`Fig3View` per segmented sample of an M-testing report."""
    model_view = model_timing_view(chart, requirement)
    return [
        Fig3View(sample_index=segments.sample_index, model=model_view, segments=segments)
        for segments in m_report.segments
    ]


# ----------------------------------------------------------------------
# Ablation sweep series
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    parameter: float
    violation_rate: float
    timeout_count: int
    max_latency_ms: Optional[float]
    mean_latency_ms: Optional[float]


def sweep_point(parameter: float, report: RTestReport) -> SweepPoint:
    """Summarise one R-test report as a sweep point."""
    latencies = [sample.latency_us for sample in report.samples]
    observed = report.observed_latencies_us
    return SweepPoint(
        parameter=parameter,
        violation_rate=violation_rate(latencies, report.requirement.deadline_us),
        timeout_count=report.timeout_count,
        max_latency_ms=(max(observed) / 1000) if observed else None,
        mean_latency_ms=(sum(observed) / len(observed) / 1000) if observed else None,
    )


def render_sweep(points: Sequence[SweepPoint], parameter_name: str) -> str:
    """Plain-text rendering of a sweep series (one row per parameter value)."""
    lines = [
        f"{parameter_name:>14} | {'violation rate':>14} | {'MAX':>4} | {'max (ms)':>9} | {'mean (ms)':>9}"
    ]
    lines.append("-" * len(lines[0]))
    for point in sorted(points, key=lambda p: p.parameter):
        max_latency = "-" if point.max_latency_ms is None else f"{point.max_latency_ms:.1f}"
        mean_latency = "-" if point.mean_latency_ms is None else f"{point.mean_latency_ms:.1f}"
        lines.append(
            f"{point.parameter:>14.2f} | {point.violation_rate:>14.2%} | {point.timeout_count:>4} | "
            f"{max_latency:>9} | {mean_latency:>9}"
        )
    return "\n".join(lines)
