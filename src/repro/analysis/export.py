"""Export of analysis artefacts to Markdown and CSV.

EXPERIMENTS.md and downstream papers want the reproduced Table I and the
ablation sweeps in document-friendly formats; these helpers render the same
structured rows the plain-text renderers use as GitHub-flavoured Markdown
tables and as CSV.
"""

from __future__ import annotations

import csv
import io
from typing import List, Sequence

from .figures import SweepPoint
from .tables import TableOne


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a GitHub-flavoured Markdown table."""
    lines = ["| " + " | ".join(str(header) for header in headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return "\n".join(lines)


def table_one_to_markdown(table: TableOne) -> str:
    """Render Table I as a Markdown table (one row per sample)."""
    headers: List[str] = ["sample"]
    for result in table.results:
        headers.extend(
            [
                f"{result.label} — R (ms)",
                f"{result.label} — In (ms)",
                f"{result.label} — Code (ms)",
                f"{result.label} — Out (ms)",
            ]
        )
    rows = []
    for row in table.rows():
        cells: List[object] = [row["sample"]]
        for result in table.results:
            prefix = f"scheme{result.scheme}"
            cells.extend(
                [
                    row[f"{prefix}_r"],
                    row[f"{prefix}_input"],
                    row[f"{prefix}_code"],
                    row[f"{prefix}_output"],
                ]
            )
        rows.append(cells)
    summary_lines = []
    for summary in table.summary_rows():
        summary_lines.append(
            f"- **{summary['label']}**: {summary['violations']} violation(s) "
            f"({summary['timeouts']} MAX) of {summary['samples']} samples; "
            f"R-testing {'PASS' if summary['passed'] else 'FAIL'}"
        )
    return f"### {table.title}\n\n" + _markdown_table(headers, rows) + "\n\n" + "\n".join(summary_lines)


def table_one_to_csv(table: TableOne) -> str:
    """Render the structured Table I rows as CSV."""
    rows = table.rows()
    buffer = io.StringIO()
    if not rows:
        return ""
    writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()


def sweep_to_markdown(points: Sequence[SweepPoint], parameter_name: str) -> str:
    """Render an ablation sweep as a Markdown table."""
    headers = [parameter_name, "violation rate", "MAX", "max latency (ms)", "mean latency (ms)"]
    rows = []
    for point in sorted(points, key=lambda p: p.parameter):
        rows.append(
            [
                f"{point.parameter:g}",
                f"{point.violation_rate:.0%}",
                point.timeout_count,
                "-" if point.max_latency_ms is None else f"{point.max_latency_ms:.1f}",
                "-" if point.mean_latency_ms is None else f"{point.mean_latency_ms:.1f}",
            ]
        )
    return _markdown_table(headers, rows)


def sweep_to_csv(points: Sequence[SweepPoint], parameter_name: str) -> str:
    """Render an ablation sweep as CSV."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([parameter_name, "violation_rate", "timeouts", "max_latency_ms", "mean_latency_ms"])
    for point in sorted(points, key=lambda p: p.parameter):
        writer.writerow(
            [
                point.parameter,
                point.violation_rate,
                point.timeout_count,
                point.max_latency_ms,
                point.mean_latency_ms,
            ]
        )
    return buffer.getvalue()
