"""Statechart models of the GPCA infusion pump software.

Two charts are provided:

* :func:`build_fig2_statechart` — the exact fragment shown in Fig. 2 of the
  paper (Idle / BolusRequested / Infusion / EmptyAlarm), used by the Table I
  and Fig. 3 reproductions so the measured transition path matches the paper's
  Trans1 / Trans2 narrative.
* :func:`build_extended_statechart` — a superset closer to the full GPCA
  reference model (power-on test, occlusion alarm, door-open pause), used by
  the additional examples and tests to exercise the framework beyond the
  paper's single scenario.

The bolus duration (4000 ms) and the 100 ms bolus-start bound come straight
from Fig. 2 (``At(4000, E_CLK)`` and ``Before(100, E_CLK)``).
"""

from __future__ import annotations

from ..model.builder import StatechartBuilder
from ..model.statechart import Statechart
from ..model.temporal import at, before

#: Bound of the Before() operator on the bolus-start transition (model ticks).
BOLUS_START_BOUND_TICKS = 100
#: Bolus duration of the At() operator on the bolus-completion transition.
BOLUS_DURATION_TICKS = 4000
#: Duration of the power-on self test in the extended chart.
POWER_ON_TEST_TICKS = 500

# Canonical transition names (referenced by the hardware execution profile,
# the traceability queries and several tests).
TRANS_BOLUS_REQUEST = "t_bolus_req"
TRANS_START_INFUSION = "t_start_infusion"
TRANS_BOLUS_DONE = "t_bolus_done"
TRANS_EMPTY_ALARM = "t_empty_alarm"
TRANS_CLEAR_ALARM = "t_clear_alarm"


def build_fig2_statechart() -> Statechart:
    """The infusion-pump statechart of Fig. 2 in the paper."""
    return (
        StatechartBuilder("gpca_fig2")
        .input_events("i-BolusReq", "i-EmptyAlarm", "i-ClearAlarm")
        .output_variable("o-MotorState", initial=0)
        .output_variable("o-BuzzerState", initial=0)
        .state("Idle", initial=True, description="waiting for a patient request")
        .state("BolusRequested", description="request accepted, bolus about to start")
        .state("Infusion", description="pump motor running, bolus being delivered")
        .state("EmptyAlarm", description="reservoir empty, infusion stopped, alarm on")
        .transition(
            TRANS_BOLUS_REQUEST,
            "Idle",
            "BolusRequested",
            event="i-BolusReq",
            description="patient pressed the bolus-request button (function1)",
        )
        .transition(
            TRANS_START_INFUSION,
            "BolusRequested",
            "Infusion",
            temporal=before(BOLUS_START_BOUND_TICKS),
            assign={"o-MotorState": 1},
            description="start the bolus within 100 ms (function2)",
        )
        .transition(
            TRANS_BOLUS_DONE,
            "Infusion",
            "Idle",
            temporal=at(BOLUS_DURATION_TICKS),
            assign={"o-MotorState": 0},
            description="bolus complete after 4000 ms",
        )
        .transition(
            TRANS_EMPTY_ALARM,
            "Infusion",
            "EmptyAlarm",
            event="i-EmptyAlarm",
            assign={"o-MotorState": 0, "o-BuzzerState": 1},
            description="reservoir empty during infusion",
        )
        .transition(
            TRANS_CLEAR_ALARM,
            "EmptyAlarm",
            "Idle",
            event="i-ClearAlarm",
            assign={"o-BuzzerState": 0},
            description="caregiver cleared the alarm",
        )
        .build()
    )


def build_extended_statechart() -> Statechart:
    """A richer GPCA chart: power-on test, occlusion alarm and door-open pause."""
    return (
        StatechartBuilder("gpca_extended")
        .input_events(
            "i-BolusReq",
            "i-EmptyAlarm",
            "i-ClearAlarm",
            "i-Occlusion",
            "i-DoorOpen",
            "i-DoorClose",
        )
        .output_variable("o-MotorState", initial=0)
        .output_variable("o-BuzzerState", initial=0)
        .output_variable("o-AlarmLedState", initial=0)
        .state("PowerOnTest", initial=True, description="start-up self test")
        .state("Idle")
        .state("BolusRequested")
        .state("Infusion")
        .state("EmptyAlarm")
        .state("OcclusionAlarm")
        .state("DoorOpenPause")
        .transition("t_post_done", "PowerOnTest", "Idle", temporal=at(POWER_ON_TEST_TICKS))
        .transition(TRANS_BOLUS_REQUEST, "Idle", "BolusRequested", event="i-BolusReq")
        .transition(
            TRANS_START_INFUSION,
            "BolusRequested",
            "Infusion",
            temporal=before(BOLUS_START_BOUND_TICKS),
            assign={"o-MotorState": 1},
        )
        .transition(
            TRANS_BOLUS_DONE,
            "Infusion",
            "Idle",
            temporal=at(BOLUS_DURATION_TICKS),
            assign={"o-MotorState": 0},
        )
        .transition(
            TRANS_EMPTY_ALARM,
            "Infusion",
            "EmptyAlarm",
            event="i-EmptyAlarm",
            assign={"o-MotorState": 0, "o-BuzzerState": 1, "o-AlarmLedState": 1},
        )
        .transition(
            "t_empty_from_idle",
            "Idle",
            "EmptyAlarm",
            event="i-EmptyAlarm",
            assign={"o-BuzzerState": 1, "o-AlarmLedState": 1},
        )
        .transition(
            "t_occlusion",
            "Infusion",
            "OcclusionAlarm",
            event="i-Occlusion",
            assign={"o-MotorState": 0, "o-BuzzerState": 1, "o-AlarmLedState": 1},
        )
        .transition(
            TRANS_CLEAR_ALARM,
            "EmptyAlarm",
            "Idle",
            event="i-ClearAlarm",
            assign={"o-BuzzerState": 0, "o-AlarmLedState": 0},
        )
        .transition(
            "t_clear_occlusion",
            "OcclusionAlarm",
            "Idle",
            event="i-ClearAlarm",
            assign={"o-BuzzerState": 0, "o-AlarmLedState": 0},
        )
        .transition(
            "t_door_open_idle",
            "Idle",
            "DoorOpenPause",
            event="i-DoorOpen",
            assign={"o-AlarmLedState": 1},
        )
        .transition(
            "t_door_open_infusion",
            "Infusion",
            "DoorOpenPause",
            event="i-DoorOpen",
            assign={"o-MotorState": 0, "o-AlarmLedState": 1},
        )
        .transition(
            "t_door_close",
            "DoorOpenPause",
            "Idle",
            event="i-DoorClose",
            assign={"o-AlarmLedState": 0},
        )
        .build()
    )
