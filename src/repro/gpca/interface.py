"""The four-variable interface of the GPCA infusion pump.

Declares every monitored, input, output and controlled variable of the case
study and the Input-Device / Output-Device pairings between them.  This is the
formal abstraction boundary the paper's testing framework is anchored to.
"""

from __future__ import annotations

from ..core.four_variables import FourVariableInterface


def build_pump_interface() -> FourVariableInterface:
    """The complete four-variable interface of the infusion-pump implementation."""
    interface = FourVariableInterface()

    # Monitored variables: physical changes observed by the hardware platform.
    interface.monitored("m-BolusReq", description="bolus-request button electrical state")
    interface.monitored("m-ClearAlarm", description="clear-alarm button electrical state")
    interface.monitored("m-EmptyReservoir", description="drug reservoir empty condition")
    interface.monitored("m-Occlusion", description="downstream line occlusion condition")
    interface.monitored("m-DoorOpen", description="pump door / syringe holder open condition")

    # Input variables: occurrences read by CODE(M).
    interface.input("i-BolusReq", description="bolus request read by the generated code")
    interface.input("i-ClearAlarm", description="clear-alarm request read by the generated code")
    interface.input("i-EmptyAlarm", description="empty-reservoir condition read by the generated code")
    interface.input("i-Occlusion", description="occlusion condition read by the generated code")
    interface.input("i-DoorOpen", description="door-open condition read by the generated code")
    interface.input("i-DoorClose", description="door-closed condition read by the generated code")

    # Output variables: values written by CODE(M).
    interface.output("o-MotorState", var_type="int", initial=0, description="commanded pump motor state")
    interface.output("o-BuzzerState", var_type="int", initial=0, description="commanded buzzer state")
    interface.output("o-AlarmLedState", var_type="int", initial=0, description="commanded alarm LED state")

    # Controlled variables: physical changes enforced by the hardware platform.
    interface.controlled("c-PumpMotor", var_type="int", initial=0, description="physical pump motor speed")
    interface.controlled("c-Buzzer", var_type="int", initial=0, description="physical buzzer drive")
    interface.controlled("c-AlarmLed", var_type="int", initial=0, description="physical alarm LED drive")

    # Input-Device pairings (m -> i).
    interface.link_input("m-BolusReq", "i-BolusReq")
    interface.link_input("m-ClearAlarm", "i-ClearAlarm")
    interface.link_input("m-EmptyReservoir", "i-EmptyAlarm")
    interface.link_input("m-Occlusion", "i-Occlusion")
    interface.link_input("m-DoorOpen", "i-DoorOpen")

    # Output-Device pairings (o -> c).
    interface.link_output("o-MotorState", "c-PumpMotor")
    interface.link_output("o-BuzzerState", "c-Buzzer")
    interface.link_output("o-AlarmLedState", "c-AlarmLed")

    interface.validate()
    return interface
