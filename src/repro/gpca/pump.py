"""Assembly of complete implemented pump systems (model -> code -> platform).

These factories run the whole model-based implementation pipeline of Fig. 1:
build (or accept) a statechart, generate CODE(M) from it, assemble a fresh
simulated platform and integrate the two with one of the three implementation
schemes.  The returned objects are :class:`SystemUnderTest` instances ready
for R-testing and M-testing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from ..codegen.generator import GeneratedArtifacts, generate_code
from ..core.instrumentation import ProbeConfiguration
from ..core.sut import SutFactory
from ..integration.base import EngineProfile, SchemeConfig
from ..integration.interference import InterferedConfig, InterferedSystem
from ..integration.multi_threaded import MultiThreadedConfig, MultiThreadedSystem
from ..integration.single_threaded import SingleThreadedConfig, SingleThreadedSystem
from .hardware import arm7_execution_model, build_platform_bundle
from .model import build_extended_statechart, build_fig2_statechart

#: The scheme identifiers used throughout the benchmarks and examples.
SCHEME_SINGLE_THREADED = 1
SCHEME_MULTI_THREADED = 2
SCHEME_INTERFERED = 3
ALL_SCHEMES = (SCHEME_SINGLE_THREADED, SCHEME_MULTI_THREADED, SCHEME_INTERFERED)


@dataclass
class PumpBuildOptions:
    """Options shared by the scheme factories."""

    seed: int = 0
    use_extended_model: bool = False
    probes: ProbeConfiguration = None  # defaults to full M-level probes
    artifacts: Optional[GeneratedArtifacts] = None
    #: Runtime engine override (kernel + recorder); None = production engine.
    engine: Optional[EngineProfile] = None
    #: CODE(M) executor factory override; None = ``artifacts.new_instance()``.
    #: The compiled-C backend threads its factory through here.
    code_factory: Optional[Callable[[], Any]] = None

    def resolve_artifacts(self) -> GeneratedArtifacts:
        if self.artifacts is not None:
            return self.artifacts
        chart = build_extended_statechart() if self.use_extended_model else build_fig2_statechart()
        return generate_code(chart)


def _prepare(options: Optional[PumpBuildOptions]) -> tuple:
    options = options or PumpBuildOptions()
    artifacts = options.resolve_artifacts()
    bundle = build_platform_bundle(
        seed=options.seed,
        input_variables=artifacts.code_model.input_names,
        engine=options.engine,
    )
    probes = options.probes or ProbeConfiguration.m_level()
    return options, artifacts, bundle, probes


def _apply_common_config(config: SchemeConfig, options: PumpBuildOptions, probes: ProbeConfiguration) -> None:
    config.execution_model = arm7_execution_model()
    config.probes = probes
    config.seed = options.seed
    config.code_factory = options.code_factory


def make_scheme1_system(
    options: Optional[PumpBuildOptions] = None,
    config: Optional[SingleThreadedConfig] = None,
) -> SingleThreadedSystem:
    """Scheme 1: the single-threaded 25 ms loop."""
    options, artifacts, bundle, probes = _prepare(options)
    config = config or SingleThreadedConfig()
    _apply_common_config(config, options, probes)
    return SingleThreadedSystem(bundle, artifacts, config)


def make_scheme2_system(
    options: Optional[PumpBuildOptions] = None,
    config: Optional[MultiThreadedConfig] = None,
) -> MultiThreadedSystem:
    """Scheme 2: sensing / CODE(M) / actuation threads with FIFO queues."""
    options, artifacts, bundle, probes = _prepare(options)
    config = config or MultiThreadedConfig()
    _apply_common_config(config, options, probes)
    return MultiThreadedSystem(bundle, artifacts, config)


def make_scheme3_system(
    options: Optional[PumpBuildOptions] = None,
    config: Optional[InterferedConfig] = None,
) -> InterferedSystem:
    """Scheme 3: scheme 2 plus the three interfering threads."""
    options, artifacts, bundle, probes = _prepare(options)
    config = config or InterferedConfig()
    _apply_common_config(config, options, probes)
    return InterferedSystem(bundle, artifacts, config)


def make_system(scheme: int, options: Optional[PumpBuildOptions] = None):
    """Build the implemented system for a numeric scheme identifier (1, 2 or 3)."""
    if scheme == SCHEME_SINGLE_THREADED:
        return make_scheme1_system(options)
    if scheme == SCHEME_MULTI_THREADED:
        return make_scheme2_system(options)
    if scheme == SCHEME_INTERFERED:
        return make_scheme3_system(options)
    raise ValueError(f"unknown implementation scheme {scheme!r} (expected 1, 2 or 3)")


def build_scheme_system(
    scheme: int,
    *,
    seed: int = 0,
    use_extended_model: bool = False,
    period_us: Optional[int] = None,
    interference_scale: Optional[float] = None,
    artifacts: Optional[GeneratedArtifacts] = None,
    probes: Optional[ProbeConfiguration] = None,
    engine: Optional[EngineProfile] = None,
    code_factory: Optional[Callable[[], Any]] = None,
):
    """Build one implemented system from plain parameters.

    This is the declarative counterpart of :func:`make_system`: every knob the
    campaign grid sweeps — the polling period of scheme 1, the interference
    scaling of scheme 3 — is a keyword argument of a built-in type, so a run
    can be described by a picklable spec and assembled inside a worker
    process.  ``artifacts`` lets callers share one generated CODE(M) across
    many systems (the campaign engine's content-keyed artifact cache).

    ``probes`` overrides the measurement-probe level (default full M-level);
    ``engine`` overrides the runtime engine; ``code_factory`` overrides the
    CODE(M) executor (the compiled-C backend).  All three default to the
    production configuration.
    """
    if period_us is not None and scheme != SCHEME_SINGLE_THREADED:
        raise ValueError("period_us only applies to scheme 1 (single-threaded)")
    if interference_scale is not None and scheme != SCHEME_INTERFERED:
        raise ValueError("interference_scale only applies to scheme 3 (interfered)")
    options = PumpBuildOptions(
        seed=seed,
        use_extended_model=use_extended_model,
        probes=probes,
        artifacts=artifacts,
        engine=engine,
        code_factory=code_factory,
    )
    if scheme == SCHEME_SINGLE_THREADED:
        config = SingleThreadedConfig()
        if period_us is not None:
            config.period_us = period_us
        return make_scheme1_system(options, config)
    if scheme == SCHEME_MULTI_THREADED:
        return make_scheme2_system(options)
    if scheme == SCHEME_INTERFERED:
        config = InterferedConfig()
        if interference_scale is not None:
            config = config.scaled_interference(interference_scale)
        return make_scheme3_system(options, config)
    raise ValueError(f"unknown implementation scheme {scheme!r} (expected 1, 2 or 3)")


def scheme_factory(scheme: int, *, seed: int = 0, use_extended_model: bool = False) -> SutFactory:
    """A :class:`SutFactory` producing a fresh system per test-case execution."""

    def factory():
        return make_system(
            scheme, PumpBuildOptions(seed=seed, use_extended_model=use_extended_model)
        )

    return factory


def scheme_name(scheme: int) -> str:
    """Human-readable scheme name used in reports and table headers."""
    return {
        SCHEME_SINGLE_THREADED: "Scheme 1 (single-threaded)",
        SCHEME_MULTI_THREADED: "Scheme 2 (multi-threaded)",
        SCHEME_INTERFERED: "Scheme 3 (multi-threaded + interference)",
    }[scheme]
