"""GPCA safety requirements with explicit timing bounds.

REQ1 is quoted verbatim from the paper ("A bolus dose shall be started within
100 ms when requested by the patient").  The other requirements are timing-
annotated versions of further GPCA safety requirements (stop on empty
reservoir, annunciate alarms, silence alarms on caregiver acknowledgement);
their numeric deadlines are our choices and are documented as such in
EXPERIMENTS.md — they exist so that the framework is exercised on more than a
single requirement, as the GPCA reference project intends.
"""

from __future__ import annotations

from ..core.requirements import EventSpec, RequirementSet, TimingRequirement
from ..platform.kernel.time import ms


def req1_bolus_start(deadline_ms: int = 100) -> TimingRequirement:
    """REQ1: a bolus dose shall be started within ``deadline_ms`` of the request."""
    return TimingRequirement(
        requirement_id="REQ1",
        description=(
            "A bolus dose shall be started within 100 ms when requested by the patient."
        ),
        stimulus=EventSpec.becomes("m-BolusReq", True, "bolus-request button pressed"),
        response=EventSpec.becomes_positive("c-PumpMotor", "pump motor physically starts"),
        deadline_us=ms(deadline_ms),
        # Requests issued while a bolus is still running are ignored by the
        # model (it is in Infusion), so measured samples must be spaced past
        # the 4000 ms bolus duration.
        min_stimulus_separation_us=ms(4200),
        model_trigger_event="i-BolusReq",
        model_response_variable="o-MotorState",
        model_response_value=1,
        model_trigger_state="Idle",
    )


def req2_empty_reservoir_alarm(deadline_ms: int = 250) -> TimingRequirement:
    """REQ2: the audible alarm shall sound within ``deadline_ms`` of the reservoir emptying."""
    return TimingRequirement(
        requirement_id="REQ2",
        description=(
            "When the reservoir becomes empty during an infusion, the audible alarm "
            "shall be annunciated within 250 ms."
        ),
        stimulus=EventSpec.becomes("m-EmptyReservoir", True, "reservoir empty"),
        response=EventSpec.becomes_positive("c-Buzzer", "buzzer physically on"),
        deadline_us=ms(deadline_ms),
        model_trigger_event="i-EmptyAlarm",
        model_response_variable="o-BuzzerState",
        model_response_value=1,
        model_trigger_state="Infusion",
    )


def req3_empty_reservoir_stop(deadline_ms: int = 250) -> TimingRequirement:
    """REQ3: the pump motor shall stop within ``deadline_ms`` of the reservoir emptying."""
    return TimingRequirement(
        requirement_id="REQ3",
        description=(
            "When the reservoir becomes empty during an infusion, drug delivery shall "
            "be stopped within 250 ms."
        ),
        stimulus=EventSpec.becomes("m-EmptyReservoir", True, "reservoir empty"),
        response=EventSpec.becomes("c-PumpMotor", 0, "pump motor physically stopped"),
        deadline_us=ms(deadline_ms),
        model_trigger_event="i-EmptyAlarm",
        model_response_variable="o-MotorState",
        model_response_value=0,
        model_trigger_state="Infusion",
    )


def req4_alarm_clear(deadline_ms: int = 300) -> TimingRequirement:
    """REQ4: the audible alarm shall be silenced within ``deadline_ms`` of acknowledgement."""
    return TimingRequirement(
        requirement_id="REQ4",
        description=(
            "When the caregiver acknowledges an active alarm, the audible alarm shall "
            "be silenced within 300 ms."
        ),
        stimulus=EventSpec.becomes("m-ClearAlarm", True, "clear-alarm button pressed"),
        response=EventSpec.becomes("c-Buzzer", 0, "buzzer physically off"),
        deadline_us=ms(deadline_ms),
        model_trigger_event="i-ClearAlarm",
        model_response_variable="o-BuzzerState",
        model_response_value=0,
        model_trigger_state="EmptyAlarm",
    )


def gpca_requirements() -> RequirementSet:
    """The GPCA timing-requirement catalogue used by tests, examples and benches."""
    return RequirementSet(
        "GPCA safety requirements (timing)",
        [
            req1_bolus_start(),
            req2_empty_reservoir_alarm(),
            req3_empty_reservoir_stop(),
            req4_alarm_clear(),
        ],
    )
