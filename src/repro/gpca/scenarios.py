"""Named test scenarios of the GPCA case study, as scenario-DSL programs.

Each scenario is a declarative :class:`repro.scenarios.ScenarioProgram` that
compiles to the R-test case (stimulus schedule) for one requirement.  The
four legacy builder functions (``bolus_request_test_case`` & friends) are
kept as the stable public API and now delegate to the programs; their
compiled schedules are byte-identical to the hand-written originals (pinned
by ``tests/scenarios/test_dsl.py``).

Scenarios that need the pump to be in a particular state first (e.g. the
empty-reservoir requirements only make sense while an infusion is running)
declare *setup* steps in their program; setup steps use monitored variables
different from the requirement's measured stimulus, so they never influence
the R-testing verdict — they only steer the system into the right state.
*Teardown* steps (clear the alarm, refill the reservoir) likewise recover
the system so the next sample again starts from Idle.

:func:`gpca_scenario_space` bounds the universe of *generated* GPCA
scenarios for the coverage-guided explorer (``repro explore``).
"""

from __future__ import annotations

from typing import List, Optional

from ..core.requirements import TimingRequirement
from ..core.test_generation import RTestCase
from ..platform.kernel.time import ms, seconds
from ..scenarios import (
    ROLE_SETUP,
    ROLE_TEARDOWN,
    CycleSpacing,
    ScenarioProgram,
    ScenarioSpace,
    StimulusPattern,
    StimulusStep,
)
from .requirements import (
    gpca_requirements,
    req1_bolus_start,
    req2_empty_reservoir_alarm,
    req3_empty_reservoir_stop,
    req4_alarm_clear,
)

#: Spacing used between bolus requests so each one is accepted from Idle
#: (bolus duration 4000 ms plus margin).
BOLUS_SPACING_US = ms(4600)

#: Cycle length of the multi-step scenarios (setup + measured + recovery).
SCENARIO_CYCLE_US = seconds(8)


# ----------------------------------------------------------------------
# The four evaluation scenarios as DSL programs
# ----------------------------------------------------------------------
def bolus_request_program(
    samples: int = 10,
    *,
    requirement: Optional[TimingRequirement] = None,
    randomized: bool = True,
    start_offset_us: int = ms(150),
) -> ScenarioProgram:
    """The Table I scenario as a program: repeated bolus requests vs REQ1.

    A *pure stimulus* program (no setup/teardown), so it lowers through
    :class:`repro.core.test_generation.RTestGenerator` exactly like the
    original hand-written builder.  ``start_offset_us`` delays the first
    request; runs against the extended GPCA model must start after its
    500 ms power-on self test, since a request issued during the self test
    is ignored by the model (and therefore by a conformant implementation).
    """
    requirement = requirement or req1_bolus_start()
    if randomized:
        spacing = CycleSpacing(BOLUS_SPACING_US, BOLUS_SPACING_US + ms(900))
        name = "bolus-request"
    else:
        spacing = CycleSpacing(BOLUS_SPACING_US)
        name = "bolus-request-uniform"
    return ScenarioProgram(
        name=name,
        requirement=requirement,
        spacing=spacing,
        samples=samples,
        start_offset_us=start_offset_us,
    )


def _empty_reservoir_program(requirement: TimingRequirement, samples: int) -> ScenarioProgram:
    """Shared program of the empty-reservoir requirements (REQ2 / REQ3).

    Each cycle: request a bolus (setup), force the reservoir empty one second
    into the infusion (measured), then clear the alarm and refill (teardown)
    so the next cycle again starts from Idle.
    """
    return ScenarioProgram(
        name=f"empty-reservoir-{requirement.requirement_id}",
        requirement=requirement,
        spacing=CycleSpacing(SCENARIO_CYCLE_US),
        samples=samples,
        start_offset_us=ms(150),
        setup=(StimulusStep("m-BolusReq", 0, ROLE_SETUP),),
        stimulus=StimulusPattern(offset_us=seconds(1)),
        teardown=(
            StimulusStep("m-ClearAlarm", seconds(3), ROLE_TEARDOWN),
            StimulusStep("m-ReservoirRefill", seconds(4), ROLE_TEARDOWN),
        ),
        description="reservoir empties mid-infusion; alarm and motor stop are timed",
    )


def empty_reservoir_alarm_program(samples: int = 5) -> ScenarioProgram:
    """REQ2 program: buzzer annunciation latency when the reservoir empties."""
    return _empty_reservoir_program(req2_empty_reservoir_alarm(), samples)


def empty_reservoir_stop_program(samples: int = 5) -> ScenarioProgram:
    """REQ3 program: motor stop latency when the reservoir empties."""
    return _empty_reservoir_program(req3_empty_reservoir_stop(), samples)


def alarm_clear_program(samples: int = 5) -> ScenarioProgram:
    """REQ4 program: buzzer silencing latency on caregiver acknowledgement.

    Setup per cycle: bolus request, then the reservoir empties (the alarm
    starts); the measured stimulus is the clear-alarm press itself.
    """
    return ScenarioProgram(
        name="alarm-clear",
        requirement=req4_alarm_clear(),
        spacing=CycleSpacing(SCENARIO_CYCLE_US),
        samples=samples,
        start_offset_us=ms(150),
        setup=(
            StimulusStep("m-BolusReq", 0, ROLE_SETUP),
            StimulusStep("m-EmptyReservoir", seconds(1), ROLE_SETUP),
        ),
        stimulus=StimulusPattern(offset_us=seconds(3)),
        teardown=(StimulusStep("m-ReservoirRefill", seconds(4), ROLE_TEARDOWN),),
        description="caregiver clears the empty-reservoir alarm; silencing is timed",
    )


def all_requirement_programs(samples: int = 5) -> List[ScenarioProgram]:
    """One scenario program per GPCA timing requirement."""
    return [
        bolus_request_program(samples),
        empty_reservoir_alarm_program(samples),
        empty_reservoir_stop_program(samples),
        alarm_clear_program(samples),
    ]


# ----------------------------------------------------------------------
# Legacy builder API (compiled from the programs above)
# ----------------------------------------------------------------------
def bolus_request_test_case(
    samples: int = 10,
    *,
    seed: int = 0,
    requirement: Optional[TimingRequirement] = None,
    randomized: bool = True,
    start_offset_us: int = ms(150),
) -> RTestCase:
    """The Table I scenario: repeated bolus requests judged against REQ1."""
    return bolus_request_program(
        samples,
        requirement=requirement,
        randomized=randomized,
        start_offset_us=start_offset_us,
    ).compile(seed)


def empty_reservoir_alarm_test_case(samples: int = 5) -> RTestCase:
    """REQ2 scenario: buzzer annunciation latency when the reservoir empties."""
    return empty_reservoir_alarm_program(samples).compile()


def empty_reservoir_stop_test_case(samples: int = 5) -> RTestCase:
    """REQ3 scenario: motor stop latency when the reservoir empties."""
    return empty_reservoir_stop_program(samples).compile()


def alarm_clear_test_case(samples: int = 5) -> RTestCase:
    """REQ4 scenario: buzzer silencing latency on caregiver acknowledgement."""
    return alarm_clear_program(samples).compile()


def all_requirement_test_cases(samples: int = 5, *, seed: int = 0) -> List[RTestCase]:
    """One scenario per GPCA timing requirement (used by examples and tests)."""
    return [
        bolus_request_test_case(samples, seed=seed),
        empty_reservoir_alarm_test_case(samples),
        empty_reservoir_stop_test_case(samples),
        alarm_clear_test_case(samples),
    ]


# ----------------------------------------------------------------------
# The generated-scenario universe
# ----------------------------------------------------------------------
def gpca_scenario_space() -> ScenarioSpace:
    """The bounded universe of generated GPCA scenarios.

    Setup steps may press any non-measured button or force platform
    conditions — including occlusion and door-open, which only the extended
    model reacts to (against Fig. 2 they are harmless no-ops, against the
    extended chart they unlock its alarm/pause transitions).  Teardown steps
    are restricted to the recovery actions (clear the alarm, refill the
    reservoir).  Spacing and sample ranges are chosen so a compiled program
    executes in a few simulated seconds.
    """
    return ScenarioSpace(
        requirements=tuple(gpca_requirements()),
        setup_variables=(
            "m-BolusReq",
            "m-EmptyReservoir",
            "m-ClearAlarm",
            "m-ReservoirRefill",
            "m-Occlusion",
            "m-DoorOpen",
            "m-DoorClose",
        ),
        teardown_variables=("m-ClearAlarm", "m-ReservoirRefill", "m-DoorClose"),
        samples=(2, 5),
        cycle_spacing_us=(ms(800), SCENARIO_CYCLE_US),
    )
