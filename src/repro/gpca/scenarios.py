"""Named test scenarios of the GPCA case study.

Each scenario builds the R-test case (stimulus schedule) for one requirement.
Scenarios that need the pump to be in a particular state first (e.g. the
empty-reservoir requirements only make sense while an infusion is running)
prepend the necessary *setup* stimuli; setup stimuli use different monitored
variables than the requirement's stimulus, so they never influence the
R-testing verdict — they only steer the system into the right state.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.requirements import TimingRequirement
from ..core.test_generation import RTestCase, RTestGenerator, Stimulus, TestGenerationConfig
from ..platform.kernel.time import ms, seconds
from .requirements import (
    req1_bolus_start,
    req2_empty_reservoir_alarm,
    req3_empty_reservoir_stop,
    req4_alarm_clear,
)

#: Spacing used between bolus requests so each one is accepted from Idle
#: (bolus duration 4000 ms plus margin).
BOLUS_SPACING_US = ms(4600)


def bolus_request_test_case(
    samples: int = 10,
    *,
    seed: int = 0,
    requirement: Optional[TimingRequirement] = None,
    randomized: bool = True,
    start_offset_us: int = ms(150),
) -> RTestCase:
    """The Table I scenario: repeated bolus requests judged against REQ1.

    ``start_offset_us`` delays the first request; runs against the extended
    GPCA model must start after its 500 ms power-on self test, since a request
    issued during the self test is ignored by the model (and therefore by a
    conformant implementation).
    """
    requirement = requirement or req1_bolus_start()
    config = TestGenerationConfig(
        sample_count=samples,
        start_offset_us=start_offset_us,
        min_separation_us=BOLUS_SPACING_US,
        max_separation_us=BOLUS_SPACING_US + ms(900),
        seed=seed,
    )
    generator = RTestGenerator(requirement, config)
    return generator.randomized(name="bolus-request") if randomized else generator.uniform(
        name="bolus-request-uniform"
    )


def _empty_reservoir_case(requirement: TimingRequirement, samples: int) -> RTestCase:
    """Shared schedule for the empty-reservoir requirements (REQ2 / REQ3).

    Each sample is: request a bolus, then force the reservoir empty one second
    into the infusion.  The bolus request is a setup stimulus; the measured
    stimulus is the reservoir-empty m-event.  After the alarm, the caregiver
    clears it so the next sample again starts from Idle.
    """
    stimuli: List[Stimulus] = []
    cycle_us = seconds(8)
    for index in range(samples):
        base = ms(150) + index * cycle_us
        stimuli.append(Stimulus(base, "m-BolusReq"))                      # setup
        stimuli.append(Stimulus(base + seconds(1), "m-EmptyReservoir"))   # measured
        stimuli.append(Stimulus(base + seconds(3), "m-ClearAlarm"))       # recovery
        stimuli.append(Stimulus(base + seconds(4), "m-ReservoirRefill"))  # recovery
    return RTestCase(
        name=f"empty-reservoir-{requirement.requirement_id}",
        requirement=requirement,
        stimuli=tuple(stimuli),
        description="reservoir empties mid-infusion; alarm and motor stop are timed",
    )


def empty_reservoir_alarm_test_case(samples: int = 5) -> RTestCase:
    """REQ2 scenario: buzzer annunciation latency when the reservoir empties."""
    return _empty_reservoir_case(req2_empty_reservoir_alarm(), samples)


def empty_reservoir_stop_test_case(samples: int = 5) -> RTestCase:
    """REQ3 scenario: motor stop latency when the reservoir empties."""
    return _empty_reservoir_case(req3_empty_reservoir_stop(), samples)


def alarm_clear_test_case(samples: int = 5) -> RTestCase:
    """REQ4 scenario: buzzer silencing latency on caregiver acknowledgement.

    Setup per sample: bolus request, reservoir empties (alarm starts), then the
    measured clear-alarm press.
    """
    requirement = req4_alarm_clear()
    stimuli: List[Stimulus] = []
    cycle_us = seconds(8)
    for index in range(samples):
        base = ms(150) + index * cycle_us
        stimuli.append(Stimulus(base, "m-BolusReq"))                      # setup
        stimuli.append(Stimulus(base + seconds(1), "m-EmptyReservoir"))   # setup
        stimuli.append(Stimulus(base + seconds(3), "m-ClearAlarm"))       # measured
        stimuli.append(Stimulus(base + seconds(4), "m-ReservoirRefill"))  # recovery
    return RTestCase(
        name="alarm-clear",
        requirement=requirement,
        stimuli=tuple(stimuli),
        description="caregiver clears the empty-reservoir alarm; silencing is timed",
    )


def all_requirement_test_cases(samples: int = 5, *, seed: int = 0) -> List[RTestCase]:
    """One scenario per GPCA timing requirement (used by examples and tests)."""
    return [
        bolus_request_test_case(samples, seed=seed),
        empty_reservoir_alarm_test_case(samples),
        empty_reservoir_stop_test_case(samples),
        alarm_clear_test_case(samples),
    ]
