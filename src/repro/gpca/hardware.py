"""Hardware profile of the case-study platform and platform-bundle assembly.

The paper's test bench is a Baxter PCA syringe pump interfaced to an ARM7
micro-controller running FreeRTOS.  This module provides:

* :func:`arm7_execution_model` — per-transition execution costs calibrated so
  that the measured Trans1 / Trans2 delays land near the 11 ms / 20 ms values
  the paper reports for its platform;
* :func:`build_platform_bundle` — one fresh simulated platform (simulator,
  recorder, devices, environment, interfacing code, stimulus routing) ready to
  be handed to an implementation scheme.
"""

from __future__ import annotations

from typing import Iterable, Optional

from ..codegen.execution_model import ExecutionTimeModel
from ..core.four_variables import TraceRecorder
from ..integration.base import EngineProfile, PlatformBundle
from ..integration.interfacing import (
    EventInputBinding,
    InputInterfacing,
    LevelInputBinding,
    OutputBinding,
    OutputInterfacing,
)
from ..platform.environment import PatientEnvironment, PumpHardware
from ..platform.kernel.random import RandomSource, uniform
from ..platform.kernel.simulator import Simulator
from ..platform.kernel.time import ms, us
from .interface import build_pump_interface
from .model import TRANS_BOLUS_REQUEST, TRANS_START_INFUSION


def arm7_execution_model() -> ExecutionTimeModel:
    """Execution-time profile approximating the paper's ARM7 target.

    The overrides give the two transitions on the REQ1 path the asymmetric
    costs the paper measures (Trans1 around 11 ms, Trans2 around 20 ms); every
    other transition uses the generic base + per-action cost.
    """
    model = ExecutionTimeModel(
        input_scan=uniform(ms(1) + us(500), us(400)),
        idle_scan=uniform(us(400), us(150)),
        transition_base=uniform(ms(8), ms(2)),
        per_action=uniform(ms(2), us(500)),
        output_write=uniform(ms(1), us(300)),
    )
    model.transition_overrides[TRANS_BOLUS_REQUEST] = uniform(ms(11), ms(2))
    model.transition_overrides[TRANS_START_INFUSION] = uniform(ms(20), ms(3))
    return model


def build_platform_bundle(
    *,
    seed: int = 0,
    input_variables: Optional[Iterable[str]] = None,
    engine: Optional[EngineProfile] = None,
) -> PlatformBundle:
    """Assemble one fresh simulated pump platform.

    ``input_variables`` restricts the input interfacing code to the i-variables
    the generated chart actually declares (the Fig. 2 fragment, for example,
    has no occlusion or door inputs); with ``None`` every binding is created.

    ``engine`` selects the runtime engine (kernel + trace recorder).  The
    default is the optimised production engine; equivalence tests and
    benchmarks pass ``repro._reference.seed_engine.SEED_ENGINE`` to run the
    same system on the frozen seed implementations.
    """
    if engine is None:
        simulator = Simulator()
        recorder = TraceRecorder(lambda: simulator.now)
        device_wrapper = None
        scheduler_class = None
    else:
        simulator = engine.simulator_factory()
        recorder = engine.recorder_factory(lambda: simulator.now)
        device_wrapper = engine.device_wrapper
        scheduler_class = engine.scheduler_class
    randomness = RandomSource(seed)
    hardware = PumpHardware(
        simulator, recorder, randomness=randomness, device_wrapper=device_wrapper
    )
    environment = PatientEnvironment(simulator, hardware)
    interface = build_pump_interface()

    wanted = set(input_variables) if input_variables is not None else None

    def include(variable: str) -> bool:
        return wanted is None or variable in wanted

    input_interfacing = InputInterfacing()
    if include("i-BolusReq"):
        input_interfacing.add(EventInputBinding(hardware.bolus_button, "i-BolusReq"))
    if include("i-ClearAlarm"):
        input_interfacing.add(EventInputBinding(hardware.clear_alarm_button, "i-ClearAlarm"))
    if include("i-EmptyAlarm"):
        input_interfacing.add(LevelInputBinding(hardware.reservoir_sensor, "i-EmptyAlarm"))
    if include("i-Occlusion"):
        input_interfacing.add(LevelInputBinding(hardware.occlusion_sensor, "i-Occlusion"))
    if include("i-DoorOpen"):
        input_interfacing.add(LevelInputBinding(hardware.door_sensor, "i-DoorOpen"))
    if include("i-DoorClose"):
        input_interfacing.add(
            LevelInputBinding(hardware.door_sensor, "i-DoorClose", trigger_value=False)
        )

    output_interfacing = OutputInterfacing(
        [
            OutputBinding("o-MotorState", hardware.pump_motor),
            OutputBinding("o-BuzzerState", hardware.buzzer),
            OutputBinding("o-AlarmLedState", hardware.alarm_led),
        ]
    )

    stimulus_actions = {
        "m-BolusReq": environment.schedule_bolus_request,
        "m-ClearAlarm": environment.schedule_clear_alarm,
        "m-EmptyReservoir": environment.schedule_reservoir_empty,
        "m-Occlusion": environment.schedule_occlusion,
        "m-DoorOpen": environment.schedule_door_open,
        # Setup/recovery actions used by multi-step scenarios (not measured
        # m-events of any requirement): the caregiver replaces the syringe /
        # closes the pump door.
        "m-ReservoirRefill": environment.schedule_reservoir_refill,
        "m-DoorClose": environment.schedule_door_close,
    }

    return PlatformBundle(
        simulator=simulator,
        recorder=recorder,
        scheduler_class=scheduler_class,
        hardware=hardware,
        environment=environment,
        interface=interface,
        input_interfacing=input_interfacing,
        output_interfacing=output_interfacing,
        stimulus_actions=stimulus_actions,
    )
