"""Directives that task job code yields to the RTOS scheduler.

A task body is written as a Python generator.  Plain Python statements between
``yield`` points execute in zero simulated time (they model register-level
work folded into the surrounding compute segments); simulated time only passes
when the job yields one of the directives below.

Example::

    def job():
        yield Compute(ms(1))                 # burn 1 ms of CPU
        item = yield Receive(queue)          # non-blocking receive (None if empty)
        if item is not None:
            handle(item)
            yield Compute(us(200))
        yield Delay(ms(5))                   # sleep without holding the CPU
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .queue import MessageQueue
    from .semaphore import Semaphore


@dataclass(frozen=True)
class Compute:
    """Consume ``duration_us`` of CPU time (preemptible)."""

    duration_us: int
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("compute duration must be non-negative")


@dataclass(frozen=True)
class Delay:
    """Sleep for ``duration_us`` without using the CPU (like ``vTaskDelay``)."""

    duration_us: int

    def __post_init__(self) -> None:
        if self.duration_us < 0:
            raise ValueError("delay duration must be non-negative")


@dataclass(frozen=True)
class Receive:
    """Receive one item from a :class:`MessageQueue`.

    ``timeout_us``:

    * ``0`` — non-blocking: the yield expression evaluates to the item or
      ``None`` when the queue is empty (like ``xQueueReceive`` with no ticks).
    * ``> 0`` — block up to the timeout; ``None`` on expiry.
    * ``None`` — block indefinitely.
    """

    queue: "MessageQueue"
    timeout_us: Optional[int] = 0


@dataclass(frozen=True)
class Send:
    """Send ``item`` to a :class:`MessageQueue` (never blocks).

    The yield expression evaluates to ``True`` when the item was enqueued and
    ``False`` when the queue was full and the item was dropped (matching
    ``xQueueSend`` with zero block time).
    """

    queue: "MessageQueue"
    item: Any


@dataclass(frozen=True)
class Take:
    """Take (acquire) a :class:`Semaphore`, blocking up to ``timeout_us``.

    Semantics of ``timeout_us`` mirror :class:`Receive`.  The yield expression
    evaluates to ``True`` when acquired, ``False`` on timeout.
    """

    semaphore: "Semaphore"
    timeout_us: Optional[int] = None


@dataclass(frozen=True)
class Give:
    """Give (release) a :class:`Semaphore`; never blocks."""

    semaphore: "Semaphore"


Directive = (Compute, Delay, Receive, Send, Take, Give)
"""Tuple of all directive types, for isinstance checks in the scheduler."""
