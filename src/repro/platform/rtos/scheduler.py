"""Preemptive fixed-priority scheduler (FreeRTOS-like) on the DES kernel.

The scheduler implements the subset of RTOS behaviour the paper's three
implementation schemes rely on:

* periodic task releases with offsets;
* fixed-priority preemptive scheduling (larger number = higher priority,
  FreeRTOS convention);
* FIFO ordering among equal-priority ready tasks;
* blocking and non-blocking FIFO-queue receive and semaphore take;
* optional context-switch overhead.

Task bodies are generators yielding :mod:`repro.platform.rtos.directives`;
plain Python between yields executes in zero simulated time, so *all* CPU time
consumed by a task is explicit in its ``Compute`` segments.  That property is
what lets the M-testing layer attribute wall-clock delays to scheduling
effects rather than to hidden modelling artefacts.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from ..kernel.simulator import Simulator
from .directives import Compute, Delay, Give, Receive, Send, Take
from .queue import MessageQueue
from .semaphore import Semaphore
from .task import Job, Task, TaskState


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (duplicate task names, bad directives, ...)."""


class RTOSScheduler:
    """A single-core fixed-priority preemptive scheduler."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        context_switch_us: int = 0,
        name: str = "rtos",
    ) -> None:
        if context_switch_us < 0:
            raise ValueError("context switch overhead must be non-negative")
        self.simulator = simulator
        self.context_switch_us = context_switch_us
        self.name = name
        self._started_at_us = simulator.now
        self.tasks: List[Task] = []
        self._ready: List[Job] = []
        self._running: Optional[Job] = None
        self._last_dispatched_task: Optional[Task] = None
        self._job_sequence = 0
        self._started = False
        self._in_dispatch = False
        self._dispatch_again = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Register a task.  Names must be unique."""
        if any(existing.name == task.name for existing in self.tasks):
            raise SchedulerError(f"duplicate task name {task.name!r}")
        self.tasks.append(task)
        if self._started and task.is_periodic:
            self._schedule_release(task, self.simulator.now + task.offset_us)
        return task

    def create_task(
        self,
        name: str,
        priority: int,
        job_factory: Callable[[], Any],
        *,
        period_us: Optional[int] = None,
        offset_us: int = 0,
        deadline_us: Optional[int] = None,
    ) -> Task:
        """Create and register a task in one call."""
        task = Task(
            name,
            priority,
            job_factory,
            period_us=period_us,
            offset_us=offset_us,
            deadline_us=deadline_us,
        )
        return self.add_task(task)

    def create_queue(self, name: str, capacity: Optional[int] = None) -> MessageQueue:
        """Create a message queue bound to this scheduler's simulator clock."""
        return MessageQueue(name, capacity, simulator=self.simulator)

    def get_task(self, name: str) -> Task:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first release of every periodic task."""
        if self._started:
            return
        self._started = True
        self._started_at_us = self.simulator.now
        for task in self.tasks:
            if task.is_periodic:
                self._schedule_release(task, self.simulator.now + task.offset_us)

    def activate(self, task: Task, delay_us: int = 0) -> None:
        """Release one job of an aperiodic task after ``delay_us``."""
        if delay_us == 0:
            self._release(task)
        else:
            self.simulator.schedule(delay_us, lambda: self._release(task), label=f"activate:{task.name}")

    def send_to_queue(self, queue: MessageQueue, item: Any) -> bool:
        """Send to a queue from outside task context (e.g. from a device ISR)
        and wake any task blocked on it."""
        accepted = queue.send(item)
        if accepted:
            self._wake_queue_waiter(queue)
            self._schedule_dispatch()
        return accepted

    def give_semaphore(self, semaphore: Semaphore) -> bool:
        """Give a semaphore from outside task context and wake a waiter."""
        given = semaphore.give()
        if given:
            self._wake_semaphore_waiter(semaphore)
            self._schedule_dispatch()
        return given

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def cpu_utilization(self) -> float:
        """Fraction of elapsed simulated time spent in task compute segments.

        Elapsed time is measured since :meth:`start` (falling back to
        construction time for schedulers that are never started), not from
        absolute time zero, so a simulator constructed with ``start_us > 0``
        — or warmed up before the scheduler starts — does not under-report
        utilization.
        """
        elapsed = self.simulator.now - self._started_at_us
        if elapsed <= 0:
            return 0.0
        busy = sum(task.stats.cpu_time_us for task in self.tasks)
        return busy / elapsed

    # ------------------------------------------------------------------
    # Releases
    # ------------------------------------------------------------------
    def _schedule_release(self, task: Task, when_us: int) -> None:
        when_us = max(when_us, self.simulator.now)
        self.simulator.schedule_at(
            when_us, lambda: self._periodic_release(task), label=f"release:{task.name}"
        )

    def _periodic_release(self, task: Task) -> None:
        self._release(task)
        assert task.period_us is not None
        self._schedule_release(task, self.simulator.now + task.period_us)

    def _release(self, task: Task) -> None:
        if task.current_job is not None and not task.current_job.finished:
            # Previous activation still in progress: skip this release (and
            # count it as a deadline miss).  Under heavy interference this is
            # what starves the CODE(M) thread in implementation scheme 3.
            # This path and the late-completion path in _finish_job count
            # *disjoint* activations — a skipped release never became a job,
            # a late completion did — so no miss is ever double-counted
            # (pinned by TestDeadlineMissAccounting).
            task.stats.deadline_misses += 1
            return
        job = Job(task, task.job_factory(), self.simulator.now, self._job_sequence)
        self._job_sequence += 1
        task.current_job = job
        task.stats.activations += 1
        task.state = TaskState.READY
        self._make_ready(job)
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Ready queue management
    # ------------------------------------------------------------------
    def _make_ready(self, job: Job, front: bool = False) -> None:
        job.task.state = TaskState.READY
        if front:
            self._ready.insert(0, job)
        else:
            self._ready.append(job)

    def _pop_ready(self) -> Optional[Job]:
        if not self._ready:
            return None
        best_index = 0
        best_priority = self._ready[0].task.priority
        for index, job in enumerate(self._ready[1:], start=1):
            if job.task.priority > best_priority:
                best_priority = job.task.priority
                best_index = index
        return self._ready.pop(best_index)

    def _highest_ready_priority(self) -> Optional[int]:
        if not self._ready:
            return None
        return max(job.task.priority for job in self._ready)

    def _higher_priority_ready(self, priority: int) -> bool:
        highest = self._highest_ready_priority()
        return highest is not None and highest > priority

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        if self._in_dispatch:
            self._dispatch_again = True
            return
        self._in_dispatch = True
        try:
            while True:
                self._dispatch_again = False
                self._dispatch_once()
                if not self._dispatch_again:
                    break
        finally:
            self._in_dispatch = False

    def _dispatch_once(self) -> None:
        if self._running is not None:
            if self._higher_priority_ready(self._running.task.priority):
                self._preempt(self._running)
            else:
                return
        while self._running is None:
            job = self._pop_ready()
            if job is None:
                return
            self._run_job(job)

    def _run_job(self, job: Job) -> None:
        """Advance ``job`` until it starts a compute segment, blocks or finishes."""
        task = job.task
        while True:
            if job.pending_compute_us is None:
                status = self._advance(job)
                if status == "finished" or status == "blocked":
                    return
                if status == "continue":
                    if self._higher_priority_ready(task.priority):
                        self._make_ready(job, front=True)
                        return
                    continue
                # status == "compute": fall through with pending segment set
            if job.pending_compute_us == 0:
                job.pending_compute_us = None
                continue
            if self._higher_priority_ready(task.priority):
                self._make_ready(job, front=True)
                return
            self._start_compute(job)
            return

    def _advance(self, job: Job) -> str:
        """Advance the job generator by one directive.

        Returns one of ``"compute"``, ``"blocked"``, ``"finished"`` or
        ``"continue"`` (zero-time directive handled, keep advancing).
        """
        try:
            directive = job.generator.send(job.send_value)
        except StopIteration:
            self._finish_job(job)
            return "finished"
        job.send_value = None

        if isinstance(directive, Compute):
            job.pending_compute_us = directive.duration_us
            job.pending_label = directive.label
            return "compute"

        if isinstance(directive, Delay):
            self._block_for_delay(job, directive.duration_us)
            return "blocked"

        if isinstance(directive, Send):
            job.send_value = directive.queue.send(directive.item)
            if job.send_value:
                self._wake_queue_waiter(directive.queue)
            return "continue"

        if isinstance(directive, Receive):
            message = directive.queue.receive_nowait()
            if message is not None:
                job.send_value = message
                return "continue"
            if directive.timeout_us == 0:
                job.send_value = None
                return "continue"
            self._block_on_queue(job, directive.queue, directive.timeout_us)
            return "blocked"

        if isinstance(directive, Give):
            job.send_value = directive.semaphore.give()
            if job.send_value:
                self._wake_semaphore_waiter(directive.semaphore)
            return "continue"

        if isinstance(directive, Take):
            if directive.semaphore.try_take():
                job.send_value = True
                return "continue"
            if directive.timeout_us == 0:
                job.send_value = False
                return "continue"
            self._block_on_semaphore(job, directive.semaphore, directive.timeout_us)
            return "blocked"

        raise SchedulerError(
            f"task {job.task.name!r} yielded unsupported directive {directive!r}"
        )

    # ------------------------------------------------------------------
    # Compute segments
    # ------------------------------------------------------------------
    def _start_compute(self, job: Job) -> None:
        task = job.task
        if self._last_dispatched_task is not task and self.context_switch_us:
            job.pending_compute_us = (job.pending_compute_us or 0) + self.context_switch_us
        job.segment_started_at_us = self.simulator.now
        self._running = job
        task.state = TaskState.RUNNING
        self._last_dispatched_task = task
        job.completion_handle = self.simulator.schedule(
            job.pending_compute_us or 0,
            lambda: self._complete_segment(job),
            label=f"compute:{task.name}",
        )

    def _complete_segment(self, job: Job) -> None:
        task = job.task
        started = (
            job.segment_started_at_us
            if job.segment_started_at_us is not None
            else self.simulator.now
        )
        task.stats.cpu_time_us += self.simulator.now - started
        job.pending_compute_us = None
        job.segment_started_at_us = None
        job.completion_handle = None
        job.send_value = None
        self._running = None
        self._make_ready(job, front=True)
        self._schedule_dispatch()

    def _preempt(self, job: Job) -> None:
        task = job.task
        if job.completion_handle is not None:
            job.completion_handle.cancel()
            job.completion_handle = None
        started = (
            job.segment_started_at_us
            if job.segment_started_at_us is not None
            else self.simulator.now
        )
        elapsed = self.simulator.now - started
        task.stats.cpu_time_us += elapsed
        task.stats.preemptions += 1
        job.pending_compute_us = max(0, (job.pending_compute_us or 0) - elapsed)
        job.segment_started_at_us = None
        self._running = None
        self._make_ready(job, front=True)

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    def _block_for_delay(self, job: Job, duration_us: int) -> None:
        job.task.state = TaskState.BLOCKED
        job.blocked_on = "delay"
        job.timeout_handle = self.simulator.schedule(
            duration_us, lambda: self._wake(job, None), label=f"delay:{job.task.name}"
        )

    def _block_on_queue(self, job: Job, queue: MessageQueue, timeout_us: Optional[int]) -> None:
        job.task.state = TaskState.BLOCKED
        job.blocked_on = queue
        queue.add_waiter(job)
        if timeout_us is not None:
            job.timeout_handle = self.simulator.schedule(
                timeout_us,
                lambda: self._timeout_queue_wait(job, queue),
                label=f"qtimeout:{job.task.name}",
            )

    def _block_on_semaphore(self, job: Job, semaphore: Semaphore, timeout_us: Optional[int]) -> None:
        job.task.state = TaskState.BLOCKED
        job.blocked_on = semaphore
        semaphore.add_waiter(job)
        if timeout_us is not None:
            job.timeout_handle = self.simulator.schedule(
                timeout_us,
                lambda: self._timeout_semaphore_wait(job, semaphore),
                label=f"stimeout:{job.task.name}",
            )

    def _timeout_queue_wait(self, job: Job, queue: MessageQueue) -> None:
        queue.remove_waiter(job)
        self._wake(job, None)

    def _timeout_semaphore_wait(self, job: Job, semaphore: Semaphore) -> None:
        semaphore.remove_waiter(job)
        self._wake(job, False)

    def _wake_queue_waiter(self, queue: MessageQueue) -> None:
        while queue.has_waiters and not queue.empty:
            waiter = queue.pop_waiter()
            if waiter is None:
                break
            item = queue.receive_nowait()
            self._cancel_timeout(waiter)
            self._wake(waiter, item)

    def _wake_semaphore_waiter(self, semaphore: Semaphore) -> None:
        while semaphore.has_waiters and semaphore.available:
            waiter = semaphore.pop_waiter()
            if waiter is None:
                break
            if not semaphore.try_take():
                semaphore.add_waiter(waiter)
                break
            self._cancel_timeout(waiter)
            self._wake(waiter, True)

    @staticmethod
    def _cancel_timeout(job: Job) -> None:
        if job.timeout_handle is not None:
            job.timeout_handle.cancel()
            job.timeout_handle = None

    def _wake(self, job: Job, value: Any) -> None:
        job.blocked_on = None
        job.timeout_handle = None
        job.send_value = value
        self._make_ready(job)
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finish_job(self, job: Job) -> None:
        task = job.task
        job.finished = True
        task.current_job = None
        task.stats.completions += 1
        response = self.simulator.now - job.release_time_us
        task.stats.response_times_us.append(response)
        if task.deadline_us is not None and response > task.deadline_us:
            task.stats.deadline_misses += 1
        task.state = TaskState.WAITING if task.is_periodic else TaskState.DORMANT

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self._running.task.name if self._running else None
        return f"RTOSScheduler({self.name!r}, tasks={len(self.tasks)}, running={running!r})"
