"""Preemptive fixed-priority scheduler (FreeRTOS-like) on the DES kernel.

The scheduler implements the subset of RTOS behaviour the paper's three
implementation schemes rely on:

* periodic task releases with offsets;
* fixed-priority preemptive scheduling (larger number = higher priority,
  FreeRTOS convention);
* FIFO ordering among equal-priority ready tasks;
* blocking and non-blocking FIFO-queue receive and semaphore take;
* optional context-switch overhead.

Task bodies are generators yielding :mod:`repro.platform.rtos.directives`;
plain Python between yields executes in zero simulated time, so *all* CPU time
consumed by a task is explicit in its ``Compute`` segments.  That property is
what lets the M-testing layer attribute wall-clock delays to scheduling
effects rather than to hidden modelling artefacts.
"""

from __future__ import annotations

from functools import partial
from typing import Any, Callable, List, Optional

from ..kernel.simulator import Simulator
from .directives import Compute, Delay, Give, Receive, Send, Take
from .queue import MessageQueue
from .semaphore import Semaphore
from .task import Job, Task, TaskState

# Hot-loop aliases: task-state transitions happen several times per job, and
# a module-level binding is one dictionary probe cheaper than the enum
# attribute chain.
_READY = TaskState.READY
_RUNNING = TaskState.RUNNING
_BLOCKED = TaskState.BLOCKED


class SchedulerError(RuntimeError):
    """Raised on scheduler misuse (duplicate task names, bad directives, ...)."""


class NullSchedulerObserver:
    """The default (disabled) scheduler observer: every hook is a no-op.

    The observability layer replaces ``scheduler.observer`` with a collector
    when span timelines are requested (``repro profile``); the scheduler
    itself never knows whether anyone is listening.  The hooks fire on the
    per-segment paths only — completion, preemption, deadline miss — never
    inside the per-directive loop, and they receive the simulated clock's
    values, so an attached observer cannot perturb the simulation.
    """

    __slots__ = ()

    def segment(self, task_name: str, start_us: int, end_us: int, preempted: bool) -> None:
        """A compute segment ended (completed or preempted) on the CPU."""

    def deadline_miss(self, task_name: str, at_us: int) -> None:
        """A task missed its deadline (skipped release or late completion)."""


#: Module-level null sink shared by every scheduler instance.
NULL_SCHEDULER_OBSERVER = NullSchedulerObserver()


class RTOSScheduler:
    """A single-core fixed-priority preemptive scheduler."""

    def __init__(
        self,
        simulator: Simulator,
        *,
        context_switch_us: int = 0,
        name: str = "rtos",
    ) -> None:
        if context_switch_us < 0:
            raise ValueError("context switch overhead must be non-negative")
        self.simulator = simulator
        self.context_switch_us = context_switch_us
        self.name = name
        self._started_at_us = simulator.now
        self.tasks: List[Task] = []
        self._ready: List[Job] = []
        self._running: Optional[Job] = None
        self._last_dispatched_task: Optional[Task] = None
        self._job_sequence = 0
        self._started = False
        self._in_dispatch = False
        self._dispatch_again = False
        # Telemetry: dispatch-round counter (plain int add, maintained
        # unconditionally) and the pluggable segment/deadline observer.
        self.dispatch_rounds = 0
        self.observer = NULL_SCHEDULER_OBSERVER
        # Recycled kernel handle for compute-segment completions.  Only one
        # compute segment runs at a time, so a single spare suffices; it is
        # refilled on the fire path only (a preempted segment's handle is
        # cancelled and must never be recycled — its heap entry is stale).
        self._completion_spare = None
        # Directive dispatch table: exact type -> bound handler.  One dict
        # lookup replaces the isinstance chain in the per-directive hot path;
        # subclassed directives are resolved by isinstance on first miss and
        # cached (see _advance).
        self._directive_handlers = {
            Compute: self._handle_compute,
            Delay: self._handle_delay,
            Send: self._handle_send,
            Receive: self._handle_receive,
            Give: self._handle_give,
            Take: self._handle_take,
        }

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def add_task(self, task: Task) -> Task:
        """Register a task.  Names must be unique."""
        if any(existing.name == task.name for existing in self.tasks):
            raise SchedulerError(f"duplicate task name {task.name!r}")
        self.tasks.append(task)
        if self._started and task.is_periodic:
            self._schedule_release(task, self.simulator.now + task.offset_us)
        return task

    def create_task(
        self,
        name: str,
        priority: int,
        job_factory: Callable[[], Any],
        *,
        period_us: Optional[int] = None,
        offset_us: int = 0,
        deadline_us: Optional[int] = None,
    ) -> Task:
        """Create and register a task in one call."""
        task = Task(
            name,
            priority,
            job_factory,
            period_us=period_us,
            offset_us=offset_us,
            deadline_us=deadline_us,
        )
        return self.add_task(task)

    def create_queue(self, name: str, capacity: Optional[int] = None) -> MessageQueue:
        """Create a message queue bound to this scheduler's simulator clock."""
        return MessageQueue(name, capacity, simulator=self.simulator)

    def get_task(self, name: str) -> Task:
        for task in self.tasks:
            if task.name == name:
                return task
        raise KeyError(f"no task named {name!r}")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Schedule the first release of every periodic task."""
        if self._started:
            return
        self._started = True
        self._started_at_us = self.simulator.now
        for task in self.tasks:
            if task.is_periodic:
                self._schedule_release(task, self.simulator.now + task.offset_us)

    def activate(self, task: Task, delay_us: int = 0) -> None:
        """Release one job of an aperiodic task after ``delay_us``."""
        if delay_us == 0:
            self._release(task)
        else:
            self.simulator.schedule(delay_us, lambda: self._release(task), label=task.label_activate)

    def send_to_queue(self, queue: MessageQueue, item: Any) -> bool:
        """Send to a queue from outside task context (e.g. from a device ISR)
        and wake any task blocked on it."""
        accepted = queue.send(item)
        if accepted:
            self._wake_queue_waiter(queue)
            self._schedule_dispatch()
        return accepted

    def give_semaphore(self, semaphore: Semaphore) -> bool:
        """Give a semaphore from outside task context and wake a waiter."""
        given = semaphore.give()
        if given:
            self._wake_semaphore_waiter(semaphore)
            self._schedule_dispatch()
        return given

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def cpu_utilization(self) -> float:
        """Fraction of elapsed simulated time spent in task compute segments.

        Elapsed time is measured since :meth:`start` (falling back to
        construction time for schedulers that are never started), not from
        absolute time zero, so a simulator constructed with ``start_us > 0``
        — or warmed up before the scheduler starts — does not under-report
        utilization.
        """
        elapsed = self.simulator.now - self._started_at_us
        if elapsed <= 0:
            return 0.0
        busy = sum(task.stats.cpu_time_us for task in self.tasks)
        return busy / elapsed

    def scheduler_stats(self) -> dict:
        """A telemetry snapshot of scheduler-wide lifetime counters.

        Like :meth:`Simulator.counters` this is a pull surface: the counters
        are maintained by bookkeeping the scheduler already does, so reading
        them after a run costs nothing during the run.
        """
        return {
            "scheduler_dispatch_rounds": self.dispatch_rounds,
            "scheduler_preemptions": sum(t.stats.preemptions for t in self.tasks),
            "scheduler_activations": sum(t.stats.activations for t in self.tasks),
            "scheduler_completions": sum(t.stats.completions for t in self.tasks),
            "scheduler_deadline_misses": sum(t.stats.deadline_misses for t in self.tasks),
        }

    # ------------------------------------------------------------------
    # Releases
    # ------------------------------------------------------------------
    def _schedule_release(self, task: Task, when_us: int) -> None:
        # Direct clock-slot reads (here and in the other per-event methods
        # below) skip the ``now`` property descriptor; SimClock is shared by
        # both engines, so inherited methods stay seed-compatible.
        now = self.simulator._clock._now_us
        if when_us < now:
            when_us = now
        # One release event per task is in flight at a time, so the release
        # closure is created once per task and the fired handle is recycled.
        callback = task.release_callback
        if callback is None:
            # functools.partial dispatches in C — measurably cheaper than a
            # closure frame at one release per task per period.
            callback = task.release_callback = partial(self._periodic_release, task)
        task.release_handle = self.simulator.schedule_at(
            when_us, callback, 0, task.label_release, task.release_handle
        )

    def _periodic_release(self, task: Task) -> None:
        self._release(task)
        # Inlined _schedule_release for the steady-state periodic path: the
        # release callback and handle already exist (this method only fires
        # from an event _schedule_release armed), and now + period can never
        # be in the past, so neither the clamp nor the callback check is
        # needed.  The seed scheduler overrides this with the pre-rebuild
        # body.
        simulator = self.simulator
        task.release_handle = simulator.schedule_at(
            simulator._clock._now_us + task.period_us,
            task.release_callback,
            0,
            task.label_release,
            task.release_handle,
        )

    def _release(self, task: Task) -> None:
        current = task.current_job
        if current is not None and not current.finished:
            # Previous activation still in progress: skip this release (and
            # count it as a deadline miss).  Under heavy interference this is
            # what starves the CODE(M) thread in implementation scheme 3.
            # This path and the late-completion path in _finish_job count
            # *disjoint* activations — a skipped release never became a job,
            # a late completion did — so no miss is ever double-counted
            # (pinned by TestDeadlineMissAccounting).
            task.stats.deadline_misses += 1
            self.observer.deadline_miss(task.name, self.simulator._clock._now_us)
            return
        sequence = self._job_sequence
        self._job_sequence = sequence + 1
        job = Job(task, task.job_factory(), self.simulator._clock._now_us, sequence)
        task.current_job = job
        task.stats.activations += 1
        task.state = _READY
        self._ready.append(job)
        # A dispatch round is only needed when the new job can actually take
        # the CPU: between rounds no *other* ready job outranks the running
        # one (every ready insertion triggers this same check), so a release
        # that doesn't outrank it leaves the round a guaranteed no-op.
        running = self._running
        if self._in_dispatch:
            self._dispatch_again = True
        elif running is None or task.priority > running.task.priority:
            self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Ready queue management
    # ------------------------------------------------------------------
    def _make_ready(self, job: Job, front: bool = False) -> None:
        job.task.state = _READY
        if front:
            self._ready.insert(0, job)
        else:
            self._ready.append(job)

    def _pop_ready(self) -> Optional[Job]:
        ready = self._ready
        if not ready:
            return None
        if len(ready) == 1:
            return ready.pop()
        best_index = 0
        best_priority = ready[0].task.priority
        for index in range(1, len(ready)):
            priority = ready[index].task.priority
            if priority > best_priority:
                best_priority = priority
                best_index = index
        return ready.pop(best_index)

    def _highest_ready_priority(self) -> Optional[int]:
        if not self._ready:
            return None
        return max(job.task.priority for job in self._ready)

    def _higher_priority_ready(self, priority: int) -> bool:
        ready = self._ready
        if not ready:
            return False
        for job in ready:
            if job.task.priority > priority:
                return True
        return False

    # ------------------------------------------------------------------
    # Dispatching
    # ------------------------------------------------------------------
    def _schedule_dispatch(self) -> None:
        # The dispatch round is inlined here (the seed code factored it into a
        # separate _dispatch_once) — it runs once per release/wake/completion,
        # which makes the extra call frame measurable in the hot loop.
        if self._in_dispatch:
            self._dispatch_again = True
            return
        self._in_dispatch = True
        try:
            ready = self._ready
            while True:
                self.dispatch_rounds += 1
                self._dispatch_again = False
                running = self._running
                if running is None:
                    while self._running is None and ready:
                        self._run_job(ready.pop() if len(ready) == 1 else self._pop_ready())
                else:
                    # Inline _higher_priority_ready: this is the per-wake /
                    # per-release fast exit, so the extra frame is measurable.
                    priority = running.task.priority
                    for job in ready:
                        if job.task.priority > priority:
                            self._preempt(running)
                            while self._running is None and ready:
                                self._run_job(ready.pop() if len(ready) == 1 else self._pop_ready())
                            break
                if not self._dispatch_again:
                    break
        finally:
            self._in_dispatch = False

    def _run_job(self, job: Job) -> None:
        """Advance ``job`` until it starts a compute segment, blocks or finishes."""
        # _higher_priority_ready and _make_ready are inlined below: this loop
        # runs once per directive, and the ready list is empty or one deep on
        # almost every check.  ``ready`` aliases self._ready, which is mutated
        # in place but never rebound.
        priority = job.task.priority
        ready = self._ready
        while True:
            pending = job.pending_compute_us
            if pending is None:
                status = self._advance(job)
                if status == "finished" or status == "blocked":
                    return
                if status == "continue":
                    for other in ready:
                        if other.task.priority > priority:
                            job.task.state = _READY
                            ready.insert(0, job)
                            return
                    continue
                # status == "compute": the handler set the pending segment
                pending = job.pending_compute_us
            if pending == 0:
                job.pending_compute_us = None
                continue
            for other in ready:
                if other.task.priority > priority:
                    job.task.state = _READY
                    ready.insert(0, job)
                    return
            self._start_compute(job)
            return

    def _advance(self, job: Job) -> str:
        """Advance the job generator by one directive.

        Returns one of ``"compute"``, ``"blocked"``, ``"finished"`` or
        ``"continue"`` (zero-time directive handled, keep advancing).

        This stays a single instance method — rather than being inlined into
        :meth:`_run_job` — because the fault-injection layer wraps
        ``scheduler._advance`` on the instance to inflate compute segments.
        Directive handling itself goes through a type-keyed dispatch table.
        """
        try:
            directive = job.generator.send(job.send_value)
        except StopIteration:
            self._finish_job(job)
            return "finished"
        job.send_value = None
        cls = directive.__class__
        if cls is Compute:
            # Compute is the dominant directive; handling it inline skips the
            # table lookup and handler call.  Fault wrappers are unaffected —
            # they wrap _advance itself and see the returned status.
            job.pending_compute_us = directive.duration_us
            job.pending_label = directive.label
            return "compute"
        handler = self._directive_handlers.get(cls)
        if handler is None:
            for base, candidate in list(self._directive_handlers.items()):
                if isinstance(directive, base):
                    handler = self._directive_handlers[directive.__class__] = candidate
                    break
            else:
                raise SchedulerError(
                    f"task {job.task.name!r} yielded unsupported directive {directive!r}"
                )
        return handler(job, directive)

    def _handle_compute(self, job: Job, directive: Compute) -> str:
        job.pending_compute_us = directive.duration_us
        job.pending_label = directive.label
        return "compute"

    def _handle_delay(self, job: Job, directive: Delay) -> str:
        self._block_for_delay(job, directive.duration_us)
        return "blocked"

    def _handle_send(self, job: Job, directive: Send) -> str:
        job.send_value = directive.queue.send(directive.item)
        if job.send_value:
            self._wake_queue_waiter(directive.queue)
        return "continue"

    def _handle_receive(self, job: Job, directive: Receive) -> str:
        message = directive.queue.receive_nowait()
        if message is not None:
            job.send_value = message
            return "continue"
        if directive.timeout_us == 0:
            job.send_value = None
            return "continue"
        self._block_on_queue(job, directive.queue, directive.timeout_us)
        return "blocked"

    def _handle_give(self, job: Job, directive: Give) -> str:
        job.send_value = directive.semaphore.give()
        if job.send_value:
            self._wake_semaphore_waiter(directive.semaphore)
        return "continue"

    def _handle_take(self, job: Job, directive: Take) -> str:
        if directive.semaphore.try_take():
            job.send_value = True
            return "continue"
        if directive.timeout_us == 0:
            job.send_value = False
            return "continue"
        self._block_on_semaphore(job, directive.semaphore, directive.timeout_us)
        return "blocked"

    # ------------------------------------------------------------------
    # Compute segments
    # ------------------------------------------------------------------
    def _start_compute(self, job: Job) -> None:
        task = job.task
        if self._last_dispatched_task is not task and self.context_switch_us:
            job.pending_compute_us = (job.pending_compute_us or 0) + self.context_switch_us
        simulator = self.simulator
        job.segment_started_at_us = simulator._clock._now_us
        self._running = job
        task.state = _RUNNING
        self._last_dispatched_task = task
        # The completion callback is a pre-bound method rather than a per-
        # segment closure: a live completion event always belongs to the
        # currently running job (preemption cancels the handle before any
        # other job can run), so the callback looks the job up on fire.
        spare = self._completion_spare
        self._completion_spare = None
        job.completion_handle = simulator.schedule(
            job.pending_compute_us or 0, self._complete_running, 0, task.label_compute, spare
        )

    def _complete_running(self) -> None:
        # One compute completion per segment: _complete_segment and
        # _make_ready are inlined (the seed scheduler keeps the factored
        # methods).
        job = self._running
        self._completion_spare = job.completion_handle
        task = job.task
        now = self.simulator._clock._now_us
        started = job.segment_started_at_us
        task.stats.cpu_time_us += now - (started if started is not None else now)
        self.observer.segment(task.name, started if started is not None else now, now, False)
        job.pending_compute_us = None
        job.segment_started_at_us = None
        job.completion_handle = None
        job.send_value = None
        self._running = None
        task.state = _READY
        self._ready.insert(0, job)
        self._schedule_dispatch()

    def _preempt(self, job: Job) -> None:
        task = job.task
        if job.completion_handle is not None:
            job.completion_handle.cancel()
            job.completion_handle = None
        now = self.simulator._clock._now_us
        started = job.segment_started_at_us
        elapsed = now - (started if started is not None else now)
        task.stats.cpu_time_us += elapsed
        task.stats.preemptions += 1
        self.observer.segment(task.name, started if started is not None else now, now, True)
        job.pending_compute_us = max(0, (job.pending_compute_us or 0) - elapsed)
        job.segment_started_at_us = None
        self._running = None
        self._make_ready(job, front=True)

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------
    def _block_for_delay(self, job: Job, duration_us: int) -> None:
        job.task.state = _BLOCKED
        job.blocked_on = "delay"
        job.timeout_handle = self.simulator.schedule(
            duration_us, lambda: self._wake(job, None), label=job.task.label_delay
        )

    def _block_on_queue(self, job: Job, queue: MessageQueue, timeout_us: Optional[int]) -> None:
        job.task.state = _BLOCKED
        job.blocked_on = queue
        queue.add_waiter(job)
        if timeout_us is not None:
            job.timeout_handle = self.simulator.schedule(
                timeout_us,
                lambda: self._timeout_queue_wait(job, queue),
                label=job.task.label_qtimeout,
            )

    def _block_on_semaphore(self, job: Job, semaphore: Semaphore, timeout_us: Optional[int]) -> None:
        job.task.state = _BLOCKED
        job.blocked_on = semaphore
        semaphore.add_waiter(job)
        if timeout_us is not None:
            job.timeout_handle = self.simulator.schedule(
                timeout_us,
                lambda: self._timeout_semaphore_wait(job, semaphore),
                label=job.task.label_stimeout,
            )

    def _timeout_queue_wait(self, job: Job, queue: MessageQueue) -> None:
        queue.remove_waiter(job)
        self._wake(job, None)

    def _timeout_semaphore_wait(self, job: Job, semaphore: Semaphore) -> None:
        semaphore.remove_waiter(job)
        self._wake(job, False)

    def _wake_queue_waiter(self, queue: MessageQueue) -> None:
        while queue.has_waiters and not queue.empty:
            waiter = queue.pop_waiter()
            if waiter is None:
                break
            item = queue.receive_nowait()
            self._cancel_timeout(waiter)
            self._wake(waiter, item)

    def _wake_semaphore_waiter(self, semaphore: Semaphore) -> None:
        while semaphore.has_waiters and semaphore.available:
            waiter = semaphore.pop_waiter()
            if waiter is None:
                break
            if not semaphore.try_take():
                semaphore.add_waiter(waiter)
                break
            self._cancel_timeout(waiter)
            self._wake(waiter, True)

    @staticmethod
    def _cancel_timeout(job: Job) -> None:
        if job.timeout_handle is not None:
            job.timeout_handle.cancel()
            job.timeout_handle = None

    def _wake(self, job: Job, value: Any) -> None:
        job.blocked_on = None
        job.timeout_handle = None
        job.send_value = value
        self._make_ready(job)
        self._schedule_dispatch()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def _finish_job(self, job: Job) -> None:
        task = job.task
        stats = task.stats
        job.finished = True
        task.current_job = None
        stats.completions += 1
        response = self.simulator._clock._now_us - job.release_time_us
        stats.response_times_us.append(response)
        if task.deadline_us is not None and response > task.deadline_us:
            stats.deadline_misses += 1
            self.observer.deadline_miss(task.name, self.simulator._clock._now_us)
        task.state = task.finish_state

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        running = self._running.task.name if self._running else None
        return f"RTOSScheduler({self.name!r}, tasks={len(self.tasks)}, running={running!r})"
