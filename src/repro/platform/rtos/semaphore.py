"""Counting / binary semaphores (FreeRTOS ``xSemaphore`` analogue).

Device drivers in the platform layer use semaphores to model mutual exclusion
on shared peripherals (for example, a shared I2C bus between two sensors).
Blocking acquisition is mediated by the scheduler; the semaphore itself only
exposes non-blocking primitives plus waiter bookkeeping.
"""

from __future__ import annotations

from typing import Any, List, Optional


class Semaphore:
    """A counting semaphore with an optional maximum count."""

    def __init__(self, name: str, initial: int = 1, maximum: Optional[int] = None) -> None:
        if initial < 0:
            raise ValueError("initial count must be non-negative")
        if maximum is not None and maximum < max(1, initial):
            raise ValueError("maximum must be at least the initial count (and >= 1)")
        self.name = name
        self._count = initial
        self._maximum = maximum
        self._waiters: List[Any] = []
        self.takes = 0
        self.gives = 0
        self.contentions = 0

    @property
    def count(self) -> int:
        return self._count

    @property
    def available(self) -> bool:
        return self._count > 0

    def try_take(self) -> bool:
        """Attempt to acquire without blocking."""
        if self._count > 0:
            self._count -= 1
            self.takes += 1
            return True
        self.contentions += 1
        return False

    def give(self) -> bool:
        """Release the semaphore.  Returns ``False`` when already at maximum."""
        if self._maximum is not None and self._count >= self._maximum:
            return False
        self._count += 1
        self.gives += 1
        return True

    # ------------------------------------------------------------------
    # Waiter registration (used by the scheduler for blocking take)
    # ------------------------------------------------------------------
    def add_waiter(self, waiter: Any) -> None:
        self._waiters.append(waiter)

    def remove_waiter(self, waiter: Any) -> None:
        if waiter in self._waiters:
            self._waiters.remove(waiter)

    def pop_waiter(self) -> Optional[Any]:
        if self._waiters:
            return self._waiters.pop(0)
        return None

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Semaphore({self.name!r}, count={self._count})"


def make_binary_semaphore(name: str, taken: bool = False) -> Semaphore:
    """Create a binary semaphore, optionally starting in the taken state."""
    return Semaphore(name, initial=0 if taken else 1, maximum=1)


def make_mutex(name: str) -> Semaphore:
    """Create a mutex-style binary semaphore (initially available)."""
    return Semaphore(name, initial=1, maximum=1)
