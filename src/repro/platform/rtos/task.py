"""Task (thread) abstraction for the simulated RTOS.

A :class:`Task` describes *what* runs (a job factory producing a generator of
scheduler directives) and *how* it is activated (periodic release or one-shot
activation).  The scheduler owns the runtime state; per-activation bookkeeping
lives in :class:`Job`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Generator, List, Optional


JobBody = Generator[Any, Any, None]
JobFactory = Callable[[], JobBody]


class TaskState(enum.Enum):
    """Lifecycle states of a task, mirroring a typical RTOS."""

    DORMANT = "dormant"      # created, never released (or finished and aperiodic)
    READY = "ready"          # has a job ready to run
    RUNNING = "running"      # currently executing a compute segment
    BLOCKED = "blocked"      # waiting on a queue, semaphore or delay
    WAITING = "waiting"      # periodic task waiting for its next release


@dataclass
class TaskStats:
    """Per-task runtime statistics collected by the scheduler."""

    activations: int = 0
    completions: int = 0
    preemptions: int = 0
    deadline_misses: int = 0
    cpu_time_us: int = 0
    response_times_us: List[int] = field(default_factory=list)

    @property
    def max_response_us(self) -> int:
        return max(self.response_times_us) if self.response_times_us else 0

    @property
    def mean_response_us(self) -> float:
        if not self.response_times_us:
            return 0.0
        return sum(self.response_times_us) / len(self.response_times_us)


class Task:
    """A schedulable task.

    Parameters
    ----------
    name:
        Unique task name (used in traces and diagnostics).
    priority:
        FreeRTOS convention: larger number means higher priority.
    job_factory:
        Zero-argument callable returning a fresh job generator for each
        activation.
    period_us:
        Release period for periodic tasks; ``None`` for aperiodic tasks that
        are activated explicitly (:meth:`RTOSScheduler.activate`).
    offset_us:
        Release offset of the first periodic activation.
    deadline_us:
        Relative deadline used only for bookkeeping (deadline-miss counting);
        defaults to the period for periodic tasks.
    """

    def __init__(
        self,
        name: str,
        priority: int,
        job_factory: JobFactory,
        *,
        period_us: Optional[int] = None,
        offset_us: int = 0,
        deadline_us: Optional[int] = None,
    ) -> None:
        if priority < 0:
            raise ValueError("priority must be non-negative")
        if period_us is not None and period_us <= 0:
            raise ValueError("period must be positive")
        if offset_us < 0:
            raise ValueError("offset must be non-negative")
        self.name = name
        self.priority = priority
        self.job_factory = job_factory
        self.period_us = period_us
        self.offset_us = offset_us
        self.deadline_us = deadline_us if deadline_us is not None else period_us
        self.state = TaskState.DORMANT
        self.stats = TaskStats()
        self.current_job: Optional["Job"] = None
        # Kernel-event labels, precomputed once.  The scheduler schedules
        # thousands of events per run; formatting these per call showed up in
        # dispatch profiles.
        self.label_compute = f"compute:{name}"
        self.label_delay = f"delay:{name}"
        self.label_release = f"release:{name}"
        self.label_activate = f"activate:{name}"
        self.label_qtimeout = f"qtimeout:{name}"
        self.label_stimeout = f"stimeout:{name}"
        # Scheduler-owned release plumbing: the periodic-release closure is
        # created once per task, and the fired release event handle is
        # recycled (see Simulator.schedule's ``reuse`` contract).
        self.release_callback: Optional[Callable[[], None]] = None
        self.release_handle: Any = None
        # State a finished job leaves the task in — fixed at construction
        # (periodicity never changes), read once per job completion.
        self.finish_state = TaskState.WAITING if period_us is not None else TaskState.DORMANT

    @property
    def is_periodic(self) -> bool:
        return self.period_us is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = f"period={self.period_us}us" if self.is_periodic else "aperiodic"
        return f"Task({self.name!r}, prio={self.priority}, {kind}, {self.state.value})"


class Job:
    """One activation of a task.

    The scheduler drives the job generator; the job records the directive it
    is currently blocked on or executing, and how much of a compute segment
    remains after preemption.
    """

    __slots__ = (
        "task",
        "generator",
        "release_time_us",
        "sequence",
        "pending_compute_us",
        "pending_label",
        "send_value",
        "blocked_on",
        "timeout_handle",
        "completion_handle",
        "segment_started_at_us",
        "finished",
    )

    def __init__(self, task: Task, generator: JobBody, release_time_us: int, sequence: int) -> None:
        self.task = task
        self.generator = generator
        self.release_time_us = release_time_us
        self.sequence = sequence
        #: Remaining CPU time of the compute segment to run next (None when the
        #: generator must be advanced to obtain the next directive).
        self.pending_compute_us: Optional[int] = None
        self.pending_label: str = ""
        #: Value to feed into ``generator.send`` on the next advancement.
        self.send_value: Any = None
        #: The queue/semaphore this job is blocked on, if any.
        self.blocked_on: Any = None
        self.timeout_handle: Any = None
        self.completion_handle: Any = None
        self.segment_started_at_us: Optional[int] = None
        self.finished = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Job({self.task.name}#{self.sequence}, released={self.release_time_us}, "
            f"pending={self.pending_compute_us})"
        )
