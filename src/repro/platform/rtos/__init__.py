"""FreeRTOS-like real-time operating system model.

Provides a single-core fixed-priority preemptive scheduler, periodic and
aperiodic tasks written as directive-yielding generators, bounded FIFO message
queues and counting semaphores.  See :mod:`repro.platform.rtos.scheduler` for
the scheduling semantics.
"""

from .directives import Compute, Delay, Give, Receive, Send, Take
from .queue import MessageQueue, QueuedMessage, QueueStats
from .scheduler import RTOSScheduler, SchedulerError
from .semaphore import Semaphore, make_binary_semaphore, make_mutex
from .task import Job, Task, TaskState, TaskStats

__all__ = [
    "Compute",
    "Delay",
    "Give",
    "Job",
    "MessageQueue",
    "QueueStats",
    "QueuedMessage",
    "RTOSScheduler",
    "Receive",
    "SchedulerError",
    "Semaphore",
    "Send",
    "Take",
    "Task",
    "TaskState",
    "TaskStats",
    "make_binary_semaphore",
    "make_mutex",
]
