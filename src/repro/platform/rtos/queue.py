"""Bounded FIFO message queues (FreeRTOS ``xQueue`` analogue).

The paper's implementation scheme 2 and 3 connect sensing, CODE(M) and
actuation threads with FIFO queues; queue residence time is one of the
platform-induced latency contributors that M-testing exposes.  The queue
therefore records enqueue timestamps so the latency of every message can be
recovered by the analysis layer.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, List, Optional

from ..kernel.simulator import Simulator


@dataclass(frozen=True)
class QueuedMessage:
    """An item together with the instant it was enqueued."""

    item: Any
    enqueued_at_us: int


@dataclass
class QueueStats:
    """Aggregate statistics maintained by a :class:`MessageQueue`."""

    sent: int = 0
    received: int = 0
    dropped: int = 0
    max_depth: int = 0
    total_residence_us: int = 0

    @property
    def mean_residence_us(self) -> float:
        """Mean time a received message spent in the queue."""
        if self.received == 0:
            return 0.0
        return self.total_residence_us / self.received


class MessageQueue:
    """A bounded FIFO queue with drop-on-full semantics.

    ``capacity`` of ``None`` means unbounded (used by instrumentation queues
    that must never drop).  Blocking receive is implemented by the scheduler;
    the queue itself only offers non-blocking primitives plus waiter
    registration hooks.
    """

    def __init__(self, name: str, capacity: Optional[int] = None, *, simulator: Optional[Simulator] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("queue capacity must be positive (or None for unbounded)")
        self.name = name
        self.capacity = capacity
        self._simulator = simulator
        self._items: Deque[QueuedMessage] = deque()
        self._waiters: List[Any] = []  # scheduler-managed opaque waiter records
        self.stats = QueueStats()

    # ------------------------------------------------------------------
    # Basic operations
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    @property
    def empty(self) -> bool:
        return not self._items

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def _now(self) -> int:
        return self._simulator.now if self._simulator is not None else 0

    def send(self, item: Any) -> bool:
        """Enqueue ``item``.  Returns ``False`` (and counts a drop) when full."""
        if self.full:
            self.stats.dropped += 1
            return False
        self._items.append(QueuedMessage(item, self._now()))
        self.stats.sent += 1
        self.stats.max_depth = max(self.stats.max_depth, len(self._items))
        return True

    def receive_nowait(self) -> Optional[Any]:
        """Dequeue the oldest item, or ``None`` when empty."""
        message = self.receive_message()
        return message.item if message is not None else None

    def receive_message(self) -> Optional[QueuedMessage]:
        """Dequeue the oldest item together with its enqueue timestamp."""
        if not self._items:
            return None
        message = self._items.popleft()
        self.stats.received += 1
        self.stats.total_residence_us += max(0, self._now() - message.enqueued_at_us)
        return message

    def drain(self) -> List[Any]:
        """Dequeue every item currently in the queue (oldest first)."""
        items = []
        while self._items:
            items.append(self.receive_nowait())
        return items

    def clear(self) -> None:
        """Discard all queued items without counting them as received."""
        self._items.clear()

    # ------------------------------------------------------------------
    # Waiter registration (used by the scheduler for blocking receive)
    # ------------------------------------------------------------------
    def add_waiter(self, waiter: Any) -> None:
        self._waiters.append(waiter)

    def remove_waiter(self, waiter: Any) -> None:
        if waiter in self._waiters:
            self._waiters.remove(waiter)

    def pop_waiter(self) -> Optional[Any]:
        """Remove and return the longest-waiting waiter, if any."""
        if self._waiters:
            return self._waiters.pop(0)
        return None

    @property
    def has_waiters(self) -> bool:
        return bool(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity is None else str(self.capacity)
        return f"MessageQueue({self.name!r}, depth={len(self._items)}/{cap})"
