"""Physical environment model: the patient, syringe and caregiver.

The environment is the source of every m-event and the sink of every c-event.
For the timing-testing framework it plays two roles:

* **Stimulus injection** — R-test cases are sequences of m-events (bolus
  request button presses, reservoir depletion, occlusions); the environment
  schedules them on the simulator and applies them to the input devices,
  which records the m-event timestamps.
* **Closed-loop dynamics** — while the pump motor physically runs, drug volume
  is delivered and the reservoir drains; when the reservoir empties, the level
  sensor's physical value changes.  This gives the extended GPCA scenarios
  (empty-reservoir alarm, occlusion alarm) a physically meaningful trigger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..core.four_variables import TraceRecorder
from .devices.actuators import AlarmLed, Buzzer, PumpMotor
from .devices.device import EventInputDevice
from .devices.sensors import (
    BolusRequestButton,
    ClearAlarmButton,
    DoorSensor,
    OcclusionSensor,
    ReservoirLevelSensor,
)
from .kernel.random import RandomSource
from .kernel.simulator import Simulator
from .kernel.time import ms


@dataclass
class ReservoirModel:
    """A simple drug reservoir drained by the running pump motor."""

    volume_ml: float = 100.0
    #: Delivery rate per motor speed unit, in ml per second.
    ml_per_second_per_speed: float = 0.05

    def drain(self, speed: float, duration_s: float) -> float:
        """Remove volume for running at ``speed`` for ``duration_s`` seconds.

        Returns the volume actually delivered (bounded by what remains).
        """
        requested = speed * self.ml_per_second_per_speed * duration_s
        delivered = min(requested, self.volume_ml)
        self.volume_ml -= delivered
        return delivered

    @property
    def empty(self) -> bool:
        return self.volume_ml <= 1e-9


@dataclass
class DeliveryRecord:
    """A contiguous interval during which the motor physically ran."""

    start_us: int
    end_us: Optional[int] = None
    speed: float = 0.0
    delivered_ml: float = 0.0


class PumpHardware:
    """The collection of devices making up the simulated pump platform."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        randomness: Optional[RandomSource] = None,
        device_wrapper: Optional[Callable[[type], type]] = None,
    ) -> None:
        self.simulator = simulator
        self.recorder = recorder
        randomness = randomness or RandomSource(0)
        # ``device_wrapper`` lets an engine profile substitute device-driver
        # behaviour (the seed engine re-installs the pre-rebuild sampling and
        # latching implementations); the production path passes classes
        # through untouched.
        wrap = device_wrapper if device_wrapper is not None else (lambda cls: cls)
        self.bolus_button = wrap(BolusRequestButton)(
            simulator, recorder, rng=randomness.stream("bolus_button")
        )
        self.clear_alarm_button = wrap(ClearAlarmButton)(
            simulator, recorder, rng=randomness.stream("clear_alarm_button")
        )
        self.reservoir_sensor = wrap(ReservoirLevelSensor)(
            simulator, recorder, rng=randomness.stream("reservoir_sensor")
        )
        self.occlusion_sensor = wrap(OcclusionSensor)(
            simulator, recorder, rng=randomness.stream("occlusion_sensor")
        )
        self.door_sensor = wrap(DoorSensor)(
            simulator, recorder, rng=randomness.stream("door_sensor")
        )
        self.pump_motor = wrap(PumpMotor)(
            simulator, recorder, rng=randomness.stream("pump_motor")
        )
        self.buzzer = wrap(Buzzer)(simulator, recorder, rng=randomness.stream("buzzer"))
        self.alarm_led = wrap(AlarmLed)(
            simulator, recorder, rng=randomness.stream("alarm_led")
        )

    @property
    def input_devices(self) -> List[object]:
        return [
            self.bolus_button,
            self.clear_alarm_button,
            self.reservoir_sensor,
            self.occlusion_sensor,
            self.door_sensor,
        ]

    @property
    def output_devices(self) -> List[object]:
        return [self.pump_motor, self.buzzer, self.alarm_led]

    def start(self) -> None:
        """Start every device driver's sampling process."""
        for device in self.input_devices:
            device.start()


class PatientEnvironment:
    """The patient / caregiver / syringe environment driving the hardware."""

    def __init__(
        self,
        simulator: Simulator,
        hardware: PumpHardware,
        *,
        reservoir: Optional[ReservoirModel] = None,
    ) -> None:
        self.simulator = simulator
        self.hardware = hardware
        self.reservoir = reservoir or ReservoirModel()
        self.deliveries: List[DeliveryRecord] = []
        self.scheduled_stimuli: List[Dict[str, object]] = []
        self._active_delivery: Optional[DeliveryRecord] = None
        hardware.pump_motor.add_observer(self._on_motor_change)

    # ------------------------------------------------------------------
    # Stimulus injection
    # ------------------------------------------------------------------
    def schedule_bolus_request(self, at_us: int) -> None:
        """Press the bolus-request button at absolute time ``at_us``."""
        self._schedule_trigger(self.hardware.bolus_button, at_us, "bolus_request")

    def schedule_clear_alarm(self, at_us: int) -> None:
        """Press the clear-alarm button at absolute time ``at_us``."""
        self._schedule_trigger(self.hardware.clear_alarm_button, at_us, "clear_alarm")

    def schedule_occlusion(self, at_us: int, present: bool = True) -> None:
        """Create (or clear) a line occlusion at ``at_us``."""
        self.scheduled_stimuli.append({"kind": "occlusion", "at_us": at_us, "value": present})
        self.simulator.schedule_at(
            at_us,
            lambda: self.hardware.occlusion_sensor.set_physical(present),
            label="env:occlusion",
        )

    def schedule_door_open(self, at_us: int, open_: bool = True) -> None:
        """Open (or close) the pump door at ``at_us``."""
        self.scheduled_stimuli.append({"kind": "door", "at_us": at_us, "value": open_})
        self.simulator.schedule_at(
            at_us,
            lambda: self.hardware.door_sensor.set_physical(open_),
            label="env:door",
        )

    def schedule_door_close(self, at_us: int) -> None:
        """Close the pump door at ``at_us`` (the recovery of a door-open pause)."""
        self.schedule_door_open(at_us, False)

    def schedule_reservoir_empty(self, at_us: int) -> None:
        """Force the reservoir to read empty at ``at_us`` (caregiver removed syringe)."""
        self.scheduled_stimuli.append({"kind": "reservoir_empty", "at_us": at_us, "value": True})

        def make_empty() -> None:
            self.reservoir.volume_ml = 0.0
            self.hardware.reservoir_sensor.set_physical(True)

        self.simulator.schedule_at(at_us, make_empty, label="env:reservoir_empty")

    def schedule_reservoir_refill(self, at_us: int, volume_ml: float = 100.0) -> None:
        """Replace the syringe at ``at_us`` (reservoir refilled, empty condition cleared)."""
        self.scheduled_stimuli.append({"kind": "reservoir_refill", "at_us": at_us, "value": volume_ml})

        def refill() -> None:
            self.reservoir.volume_ml = volume_ml
            self.hardware.reservoir_sensor.set_physical(False)

        self.simulator.schedule_at(at_us, refill, label="env:reservoir_refill")

    def _schedule_trigger(self, device: EventInputDevice, at_us: int, kind: str) -> None:
        self.scheduled_stimuli.append({"kind": kind, "at_us": at_us, "value": True})
        self.simulator.schedule_at(at_us, lambda: device.trigger(True), label=f"env:{kind}")
        # The button is released shortly after; the release is not an m-event
        # of interest for the GPCA requirements.
        self.simulator.schedule_at(at_us + ms(50), device.release, label=f"env:{kind}:release")

    # ------------------------------------------------------------------
    # Closed-loop dynamics
    # ------------------------------------------------------------------
    def _on_motor_change(self, value: float, timestamp_us: int) -> None:
        if value and self._active_delivery is None:
            self._active_delivery = DeliveryRecord(start_us=timestamp_us, speed=float(value))
        elif not value and self._active_delivery is not None:
            record = self._active_delivery
            record.end_us = timestamp_us
            duration_s = (timestamp_us - record.start_us) / 1_000_000
            record.delivered_ml = self.reservoir.drain(record.speed, duration_s)
            self.deliveries.append(record)
            self._active_delivery = None
            if self.reservoir.empty:
                self.hardware.reservoir_sensor.set_physical(True)

    @property
    def total_delivered_ml(self) -> float:
        """Total drug volume physically delivered so far (completed runs only)."""
        return sum(record.delivered_ml for record in self.deliveries)

    @property
    def bolus_count(self) -> int:
        """Number of completed motor-run intervals."""
        return len(self.deliveries)
