"""Input-Device and Output-Device base classes.

In the paper's four-variable mapping the Input-Device converts m-events
(physical changes at the platform boundary) into values the generated code can
read as i-variables, and the Output-Device converts o-variable writes into
c-events (physical changes enforced by actuators).

The devices here model the *platform side* of that conversion:

* an input device samples its physical line periodically (sensor + driver) and
  latches detections into a driver buffer with a conversion latency;
* an output device applies writes after an actuation latency and only then
  makes the change physically visible (the c-event).

The devices record M and C events into the shared :class:`TraceRecorder`; the
I and O events are recorded by the integration layer because, per the paper,
the i-event is "when CODE(M) reads the input" and the o-event is "when
CODE(M) writes the output".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from ...core.four_variables import TraceRecorder
from ..kernel.random import JitterModel, constant
from ..kernel.simulator import Simulator


@dataclass(frozen=True)
class DeviceEvent:
    """An input change detected by a device driver, ready to be read by software."""

    value: Any
    physical_timestamp_us: int
    detected_timestamp_us: int


class Device:
    """Common plumbing for simulated devices."""

    def __init__(self, name: str, simulator: Simulator, recorder: TraceRecorder) -> None:
        self.name = name
        self.simulator = simulator
        self.recorder = recorder
        # Kernel-event labels, precomputed once: sampling devices schedule two
        # events per period, so per-call f-string formatting was measurable in
        # the dispatch profile.
        self._label_sample = f"sample:{name}"
        self._label_latch = f"latch:{name}"
        self._label_actuate = f"actuate:{name}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class EventInputDevice(Device):
    """An edge-triggered input device (e.g. a push button).

    The physical environment calls :meth:`trigger` when the button is pressed;
    this is the m-event.  The device driver samples the (latched) line every
    ``sampling_period_us``; when it finds a pending edge, it converts it after
    ``conversion_latency`` into a :class:`DeviceEvent` in the driver buffer.
    Software reads the buffer with :meth:`poll`.

    The latch guarantees no edge is lost even if the pulse is shorter than the
    sampling period — this mirrors interrupt-flag-style button handling and
    keeps test scenarios free of sporadic missed inputs.
    """

    def __init__(
        self,
        name: str,
        monitored_variable: str,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        sampling_period_us: int,
        sampling_offset_us: int = 0,
        conversion_latency: Optional[JitterModel] = None,
        buffer_capacity: int = 16,
        rng: Any = None,
    ) -> None:
        super().__init__(name, simulator, recorder)
        if sampling_period_us <= 0:
            raise ValueError("sampling period must be positive")
        self.monitored_variable = monitored_variable
        self.sampling_period_us = sampling_period_us
        self.sampling_offset_us = sampling_offset_us
        self.conversion_latency = conversion_latency or constant(0)
        # Pre-bound sampler: one draw per detected edge, two attribute hops
        # saved on each.
        self._latency_sample = self.conversion_latency.sample
        self.buffer_capacity = buffer_capacity
        self._rng = rng
        self._pending_edges: List[DeviceEvent] = []
        self._buffer: List[DeviceEvent] = []
        self._line_state = False
        self.missed_events = 0
        self._sampling_started = False
        # Kernel handle of the periodic sampling event (see schedule_periodic).
        self._sample_handle = None

    # ------------------------------------------------------------------
    # Physical side (called by the environment)
    # ------------------------------------------------------------------
    def trigger(self, value: Any = True) -> None:
        """Apply a physical edge (the m-event) to the device line."""
        now = self.simulator.now
        self._line_state = bool(value)
        self.recorder.record_m(self.monitored_variable, value, device=self.name)
        self._pending_edges.append(DeviceEvent(value, now, now))

    def release(self) -> None:
        """Return the physical line to its inactive state (not an m-event of interest)."""
        self._line_state = False

    @property
    def line_state(self) -> bool:
        return self._line_state

    # ------------------------------------------------------------------
    # Driver side
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin periodic sampling of the line (idempotent)."""
        if self._sampling_started:
            return
        self._sampling_started = True
        # The kernel re-arms the sampling event itself (schedule_periodic),
        # drawing the sequence number at the exact point the tail re-arm in
        # ``_sample`` used to — dispatch order is unchanged, but the innermost
        # device loop no longer pays one schedule call per period per device.
        self._sample_handle = self.simulator.schedule_periodic(
            self.sampling_offset_us, self.sampling_period_us, self._sample, 0, self._label_sample
        )

    def _sample(self) -> None:
        if self._pending_edges:
            latency = self._latency_sample(self._rng)
            self.simulator.schedule(
                latency,
                lambda edges=list(self._pending_edges): self._latch(edges),
                0,
                self._label_latch,
            )
            self._pending_edges.clear()

    def _latch(self, edges: List[DeviceEvent]) -> None:
        now = self.simulator.now
        for edge in edges:
            if len(self._buffer) >= self.buffer_capacity:
                self.missed_events += 1
                continue
            self._buffer.append(DeviceEvent(edge.value, edge.physical_timestamp_us, now))

    # ------------------------------------------------------------------
    # Software side (called by tasks / interfacing code)
    # ------------------------------------------------------------------
    def poll(self) -> List[DeviceEvent]:
        """Drain and return all detected events (oldest first)."""
        events, self._buffer = self._buffer, []
        return events

    @property
    def pending_count(self) -> int:
        """Number of detected events waiting to be polled."""
        return len(self._buffer)


class StateInputDevice(Device):
    """A level-style input device (e.g. a reservoir level sensor).

    The environment sets a continuous physical value; the driver samples it
    periodically into a latched register that software reads with :meth:`read`.
    A change of the physical value is the m-event.
    """

    def __init__(
        self,
        name: str,
        monitored_variable: str,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        sampling_period_us: int,
        sampling_offset_us: int = 0,
        conversion_latency: Optional[JitterModel] = None,
        initial_value: Any = False,
        rng: Any = None,
    ) -> None:
        super().__init__(name, simulator, recorder)
        if sampling_period_us <= 0:
            raise ValueError("sampling period must be positive")
        self.monitored_variable = monitored_variable
        self.sampling_period_us = sampling_period_us
        self.sampling_offset_us = sampling_offset_us
        self.conversion_latency = conversion_latency or constant(0)
        # Pre-bound sampler: drawn once per sampling period (the hot path).
        self._latency_sample = self.conversion_latency.sample
        self._rng = rng
        self._physical_value = initial_value
        self._latched_value = initial_value
        self._sampling_started = False
        self._latches_in_flight = 0
        # Kernel handle of the periodic sampling event (see schedule_periodic).
        self._sample_handle = None

    # Physical side -----------------------------------------------------
    def set_physical(self, value: Any) -> None:
        """Change the physical quantity observed by the sensor (an m-event)."""
        if value == self._physical_value:
            return
        self._physical_value = value
        self.recorder.record_m(self.monitored_variable, value, device=self.name)

    @property
    def physical_value(self) -> Any:
        return self._physical_value

    # Driver side --------------------------------------------------------
    def start(self) -> None:
        if self._sampling_started:
            return
        self._sampling_started = True
        # Kernel-side periodic re-arm; see EventInputDevice.start.
        self._sample_handle = self.simulator.schedule_periodic(
            self.sampling_offset_us, self.sampling_period_us, self._sample, 0, self._label_sample
        )

    def _sample(self) -> None:
        value = self._physical_value
        # The latency draw happens unconditionally so the device's RNG stream
        # stays aligned with the seed engine draw for draw.
        latency = self._latency_sample(self._rng)
        # Skip the latch event when it cannot change anything: the sampled
        # value equals the latched one and no earlier latch is still in
        # flight (an in-flight latch may carry a different value, and a
        # shorter-latency younger sample must still be able to overtake it —
        # exactly as on the seed path).  A skipped latch had no observable
        # effect, and dropping a schedule call never reorders the remaining
        # events (sequence numbers stay monotonic in call order), so traces
        # are byte-identical while steady-state sensors cost one kernel event
        # per period instead of two.
        if self._latches_in_flight or value != self._latched_value:
            self._latches_in_flight += 1
            self.simulator.schedule(latency, lambda v=value: self._latch(v), 0, self._label_latch)

    def _latch(self, value: Any) -> None:
        self._latches_in_flight -= 1
        self._latched_value = value

    # Software side -------------------------------------------------------
    def read(self) -> Any:
        """Return the most recently latched sample."""
        return self._latched_value


class OutputDevice(Device):
    """An actuator with its device driver (e.g. the pump motor).

    Software calls :meth:`write`; after ``actuation_latency`` the value becomes
    physically effective and the c-event is recorded.  Writes of an unchanged
    value do not produce c-events (the paper's c-events are value *changes*).
    """

    def __init__(
        self,
        name: str,
        controlled_variable: str,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        actuation_latency: Optional[JitterModel] = None,
        initial_value: Any = 0,
        rng: Any = None,
    ) -> None:
        super().__init__(name, simulator, recorder)
        self.controlled_variable = controlled_variable
        self.actuation_latency = actuation_latency or constant(0)
        self._latency_sample = self.actuation_latency.sample
        self._rng = rng
        self._physical_value = initial_value
        self._commanded_value = initial_value
        self.writes = 0
        self._observers: List[Any] = []

    # Software side -------------------------------------------------------
    def write(self, value: Any) -> None:
        """Command a new actuator value (driver + hardware apply it after latency)."""
        self.writes += 1
        self._commanded_value = value
        latency = self._latency_sample(self._rng)
        self.simulator.schedule(latency, lambda v=value: self._apply(v), 0, self._label_actuate)

    # Physical side -------------------------------------------------------
    def _apply(self, value: Any) -> None:
        if value == self._physical_value:
            return
        self._physical_value = value
        self.recorder.record_c(self.controlled_variable, value, device=self.name)
        for observer in self._observers:
            observer(value, self.simulator.now)

    @property
    def physical_value(self) -> Any:
        """The value currently enforced on the physical environment."""
        return self._physical_value

    @property
    def commanded_value(self) -> Any:
        """The most recently commanded (but possibly not yet applied) value."""
        return self._commanded_value

    def add_observer(self, callback: Any) -> None:
        """Register ``callback(value, timestamp_us)`` invoked on physical changes.

        The physical environment uses this to close the loop (e.g. deplete the
        reservoir while the motor runs).
        """
        self._observers.append(callback)
