"""Simulated sensors, actuators and their device drivers."""

from .actuators import AlarmLed, Buzzer, PumpMotor
from .device import Device, DeviceEvent, EventInputDevice, OutputDevice, StateInputDevice
from .sensors import (
    BolusRequestButton,
    ClearAlarmButton,
    DoorSensor,
    OcclusionSensor,
    ReservoirLevelSensor,
)

__all__ = [
    "AlarmLed",
    "BolusRequestButton",
    "Buzzer",
    "ClearAlarmButton",
    "Device",
    "DeviceEvent",
    "DoorSensor",
    "EventInputDevice",
    "OcclusionSensor",
    "OutputDevice",
    "PumpMotor",
    "ReservoirLevelSensor",
    "StateInputDevice",
]
