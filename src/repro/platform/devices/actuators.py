"""Concrete actuators of the simulated infusion-pump platform.

Default actuation latencies approximate a motor-driver chain (a few
milliseconds for the pump motor to spin up to its commanded speed) and
near-instant annunciators (buzzer, LED).
"""

from __future__ import annotations

from typing import Any, Optional

from ...core.four_variables import TraceRecorder
from ..kernel.random import JitterModel, uniform
from ..kernel.simulator import Simulator
from ..kernel.time import ms, us
from .device import OutputDevice


class PumpMotor(OutputDevice):
    """The syringe pump motor (c-PumpMotor).

    The controlled variable is the motor speed level (0 = stopped).  The
    c-BolusStart event of requirement REQ1 is the change of this variable from
    zero to a positive speed.
    """

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        controlled_variable: str = "c-PumpMotor",
        actuation_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "pump_motor",
            controlled_variable,
            simulator,
            recorder,
            actuation_latency=actuation_latency or uniform(ms(3), ms(1)),
            initial_value=0,
            rng=rng,
        )

    @property
    def running(self) -> bool:
        """True while the motor is physically turning."""
        return bool(self.physical_value)


class Buzzer(OutputDevice):
    """The audible alarm annunciator (c-Buzzer)."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        controlled_variable: str = "c-Buzzer",
        actuation_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "buzzer",
            controlled_variable,
            simulator,
            recorder,
            actuation_latency=actuation_latency or uniform(us(800), us(200)),
            initial_value=0,
            rng=rng,
        )


class AlarmLed(OutputDevice):
    """The visual alarm annunciator (c-AlarmLed)."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        controlled_variable: str = "c-AlarmLed",
        actuation_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "alarm_led",
            controlled_variable,
            simulator,
            recorder,
            actuation_latency=actuation_latency or uniform(us(500), us(100)),
            initial_value=0,
            rng=rng,
        )
