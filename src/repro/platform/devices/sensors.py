"""Concrete sensors of the simulated infusion-pump platform.

Each sensor is a thin configuration of the generic input-device classes with
defaults approximating the hardware the paper used (a Baxter PCA syringe pump
interfaced to an ARM7 micro-controller).  The defaults are deliberately
conservative: a few milliseconds of sampling period and sub-millisecond
conversion latency, so that the dominant contributors to Input-Delay are the
software polling periods of the implementation schemes — matching the paper's
narrative.
"""

from __future__ import annotations

from typing import Any, Optional

from ...core.four_variables import TraceRecorder
from ..kernel.random import JitterModel, uniform
from ..kernel.simulator import Simulator
from ..kernel.time import ms, us
from .device import EventInputDevice, StateInputDevice


class BolusRequestButton(EventInputDevice):
    """The patient's bolus-request button (m-BolusReq)."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        monitored_variable: str = "m-BolusReq",
        sampling_period_us: int = ms(2),
        conversion_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "bolus_button",
            monitored_variable,
            simulator,
            recorder,
            sampling_period_us=sampling_period_us,
            conversion_latency=conversion_latency or uniform(us(300), us(100)),
            rng=rng,
        )


class ClearAlarmButton(EventInputDevice):
    """The caregiver's clear-alarm button (m-ClearAlarm)."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        monitored_variable: str = "m-ClearAlarm",
        sampling_period_us: int = ms(5),
        conversion_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "clear_alarm_button",
            monitored_variable,
            simulator,
            recorder,
            sampling_period_us=sampling_period_us,
            conversion_latency=conversion_latency or uniform(us(300), us(100)),
            rng=rng,
        )


class ReservoirLevelSensor(StateInputDevice):
    """Detects an empty drug reservoir (m-EmptyReservoir).

    The physical value is ``True`` when the reservoir is empty.  The
    environment model drives it from the delivered volume.
    """

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        monitored_variable: str = "m-EmptyReservoir",
        sampling_period_us: int = ms(10),
        conversion_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "reservoir_level_sensor",
            monitored_variable,
            simulator,
            recorder,
            sampling_period_us=sampling_period_us,
            conversion_latency=conversion_latency or uniform(us(500), us(200)),
            initial_value=False,
            rng=rng,
        )


class OcclusionSensor(StateInputDevice):
    """Detects a downstream occlusion in the intravenous line (m-Occlusion)."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        monitored_variable: str = "m-Occlusion",
        sampling_period_us: int = ms(10),
        conversion_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "occlusion_sensor",
            monitored_variable,
            simulator,
            recorder,
            sampling_period_us=sampling_period_us,
            conversion_latency=conversion_latency or uniform(us(500), us(200)),
            initial_value=False,
            rng=rng,
        )


class DoorSensor(StateInputDevice):
    """Detects that the pump door / syringe holder is open (m-DoorOpen)."""

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        *,
        monitored_variable: str = "m-DoorOpen",
        sampling_period_us: int = ms(20),
        conversion_latency: Optional[JitterModel] = None,
        rng: Any = None,
    ) -> None:
        super().__init__(
            "door_sensor",
            monitored_variable,
            simulator,
            recorder,
            sampling_period_us=sampling_period_us,
            conversion_latency=conversion_latency or uniform(us(500), us(200)),
            initial_value=False,
            rng=rng,
        )
