"""Target-platform simulation: DES kernel, RTOS, devices and environment.

This package is the substitute for the paper's physical test bench (Baxter PCA
syringe pump + ARM7 micro-controller + FreeRTOS).  It produces the same kind
of artefact the paper's measurements rely on: timestamped event traces at the
m/i/o/c boundaries of the implemented system.
"""

from . import devices, kernel, rtos
from .environment import DeliveryRecord, PatientEnvironment, PumpHardware, ReservoirModel
from .kernel import JitterModel, RandomSource, Simulator, constant, ms, seconds, uniform, us

__all__ = [
    "DeliveryRecord",
    "JitterModel",
    "PatientEnvironment",
    "PumpHardware",
    "RandomSource",
    "ReservoirModel",
    "Simulator",
    "constant",
    "devices",
    "kernel",
    "ms",
    "rtos",
    "seconds",
    "uniform",
    "us",
]
