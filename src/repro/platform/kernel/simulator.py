"""Discrete-event simulation kernel.

The kernel is intentionally small: an event queue ordered by ``(time, priority,
sequence)`` plus a simulated clock.  Everything else in the platform package —
the RTOS scheduler, device drivers, the physical environment — is written as
callbacks scheduled on this kernel.

The kernel guarantees:

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in ascending ``priority`` then
  insertion order (FIFO), which makes simultaneous hardware/OS interactions
  deterministic;
* a cancelled event never fires.

Hot-loop design
---------------

This kernel is the innermost loop of every test run (a single R-test run
dispatches ~30k events), so the implementation is tuned for dispatch
throughput while preserving the dispatch order — and therefore every
downstream trace and verdict — byte for byte:

* **Tuple heap entries.**  The queue holds plain ``(time, priority, sequence,
  handle, callback)`` tuples.  The sequence number is unique per entry, so
  heap comparisons resolve in C on the first differing integer and never
  reach the handle; the callback rides along so dispatch reads it straight
  out of the tuple.
* **Batched drain.**  :meth:`run_until` and :meth:`run` drain the heap in one
  tight loop instead of calling :meth:`step` per event: the heap functions and
  counters are bound to locals, and all events sharing a timestamp are
  dispatched in one pass with a single clock update per distinct instant.
  The loop still pops entries strictly one at a time in ``(time, priority,
  sequence)`` order — a callback may insert a higher-priority event at the
  *current* instant and it must fire next — so batching changes cost, never
  order.
* **Lazy compaction.**  Cancelled entries stay in the heap until they either
  surface (and are skipped) or stale entries outnumber live ones, at which
  point the heap is rebuilt without them (see :meth:`_note_cancelled`).

The pre-rebuild kernel is preserved verbatim in
``repro._reference.seed_engine``; the byte-identity tests run whole systems
on both and compare serialized reports.
"""

from __future__ import annotations

import heapq
from heapq import heappop, heappush
from typing import Callable, List, Optional, Tuple

from .time import SimClock, format_us


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running a broken queue)."""


class EventHandle:
    """Handle to a scheduled event; supports cancellation and inspection."""

    __slots__ = (
        "time_us",
        "priority",
        "callback",
        "label",
        "period_us",
        "_cancelled",
        "_fired",
        "_owner",
    )

    def __init__(
        self,
        time_us: int,
        priority: int,
        callback: Callable[[], None],
        label: str,
        owner: "Optional[Simulator]" = None,
    ) -> None:
        self.time_us = time_us
        self.priority = priority
        self.callback = callback
        self.label = label
        self.period_us = None
        self._cancelled = False
        self._fired = False
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is harmless."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True when the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle({self.label!r} @ {format_us(self.time_us)}, {state})"


#: A heap entry: ``(time_us, priority, sequence, handle, callback)``.  Sequence
#: numbers are unique, so tuple comparison never reaches the handle.  The
#: callback rides in the tuple so dispatch skips one attribute load per event;
#: a stale entry (cancelled, or left behind by a recycled handle) is never
#: dispatched, because only *fired* handles are recycled and their entries
#: have already been popped.
_QueueEntry = Tuple[int, int, int, EventHandle, Callable[[], None]]


class Simulator:
    """The discrete-event simulator.

    Components schedule zero-argument callbacks at absolute or relative times
    and the simulator dispatches them in time order.  The simulator never
    advances past the time of the last processed event.
    """

    #: Lazy-compaction trigger: rebuild the heap once at least this many
    #: cancelled entries linger *and* they outnumber the live ones.
    _COMPACTION_MIN_STALE = 64

    def __init__(self, start_us: int = 0) -> None:
        self._clock = SimClock(start_us)
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._processed = 0
        self._running = False
        self._stop_requested = False
        self._stale = 0  # cancelled entries still sitting in the heap
        self._cancellations = 0
        self._compactions = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._clock._now_us

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (diagnostic)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        Maintained as a live counter (queue length minus lingering cancelled
        entries), so introspection is O(1) instead of scanning the heap.
        """
        return len(self._queue) - self._stale

    @property
    def cancellations(self) -> int:
        """Number of pending events cancelled so far (diagnostic)."""
        return self._cancellations

    @property
    def compactions(self) -> int:
        """Number of lazy heap rebuilds triggered so far (diagnostic)."""
        return self._compactions

    def counters(self) -> dict:
        """A telemetry snapshot of the kernel's lifetime counters.

        The counters are maintained unconditionally (single integer adds on
        paths that already do bookkeeping, never in the batched dispatch
        loop), so this is the pull-collection surface for :mod:`repro.obs`:
        the kernel never calls telemetry; telemetry reads the kernel.
        """
        return {
            "kernel_events_processed": self._processed,
            "kernel_cancellations": self._cancellations,
            "kernel_compactions": self._compactions,
        }

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled; reclaim the heap when stale entries dominate.

        Preemption-heavy runs cancel one completion event per preemption; left
        unreclaimed those entries bloat the heap and slow every push/pop.  The
        rebuild filters cancelled entries and re-heapifies, which preserves the
        ``(time, priority, sequence)`` dispatch order exactly.
        """
        self._stale += 1
        self._cancellations += 1
        if self._stale >= self._COMPACTION_MIN_STALE and self._stale * 2 > len(self._queue):
            self._queue = [entry for entry in self._queue if not entry[3]._cancelled]
            heapq.heapify(self._queue)
            self._stale = 0
            self._compactions += 1

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time_us: int,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
        reuse: Optional[EventHandle] = None,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time_us``.

        ``priority`` breaks ties between events at the same instant (lower
        fires first).  Scheduling in the past raises :class:`SimulationError`.

        ``reuse`` may pass back a handle previously returned by this simulator
        that has *fired* and is referenced nowhere else; the kernel then
        recycles the handle object instead of allocating a new one.  Recycling
        is purely an allocation optimisation — sequence numbers, dispatch
        order and the returned handle's observable state are identical either
        way.  Periodic re-arm chains (device sampling, task releases) are the
        intended users: exactly one of their events is in flight at a time, so
        the fired handle is always free for the next period.  A cancelled or
        still-pending handle is never recycled (its heap entry may still
        surface), so passing one is safe and simply allocates.
        """
        if time_us < self._clock._now_us:
            raise SimulationError(
                f"cannot schedule event {label!r} at {format_us(time_us)} "
                f"in the past (now={format_us(self._clock._now_us)})"
            )
        if reuse is not None and reuse._fired and not reuse._cancelled:
            handle = reuse
            handle.time_us = time_us
            handle.priority = priority
            handle.callback = callback
            handle.label = label
            handle._fired = False
        else:
            handle = EventHandle(time_us, priority, callback, label, self)
        sequence = self._sequence
        self._sequence = sequence + 1
        heappush(self._queue, (time_us, priority, sequence, handle, callback))
        return handle

    def schedule(
        self,
        delay_us: int,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
        reuse: Optional[EventHandle] = None,
    ) -> EventHandle:
        """Schedule ``callback`` after a relative delay (``delay_us`` >= 0).

        See :meth:`schedule_at` for the ``reuse`` recycling contract.
        """
        if delay_us < 0:
            raise SimulationError(f"negative delay {delay_us} for event {label!r}")
        time_us = self._clock._now_us + delay_us
        if reuse is not None and reuse._fired and not reuse._cancelled:
            handle = reuse
            handle.time_us = time_us
            handle.priority = priority
            handle.callback = callback
            handle.label = label
            handle._fired = False
        else:
            handle = EventHandle(time_us, priority, callback, label, self)
        sequence = self._sequence
        self._sequence = sequence + 1
        heappush(self._queue, (time_us, priority, sequence, handle, callback))
        return handle

    def schedule_periodic(
        self,
        delay_us: int,
        period_us: int,
        callback: Callable[[], None],
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after ``delay_us``, then every ``period_us``.

        The kernel re-queues the same handle immediately after each firing —
        before any other event is popped — with a freshly drawn sequence
        number.  A sequence number is therefore consumed at exactly the point
        an explicit tail re-arm inside the callback would consume one, so a
        periodic event is dispatch-order-identical to a callback whose *last*
        statement reschedules itself; it just skips the per-period Python
        ``schedule`` call.  Device sampling loops are the intended users.

        Cancelling the returned handle between firings stops the chain.
        (Cancelling from *inside* the callback does not — the handle is marked
        fired during dispatch, which makes ``cancel`` a no-op — so periodic
        events must be stopped by external code, which is how the device
        drivers use them.)
        """
        if delay_us < 0:
            raise SimulationError(f"negative delay {delay_us} for event {label!r}")
        if period_us <= 0:
            raise SimulationError(f"non-positive period {period_us} for event {label!r}")
        time_us = self._clock._now_us + delay_us
        handle = EventHandle(time_us, priority, callback, label, self)
        handle.period_us = period_us
        sequence = self._sequence
        self._sequence = sequence + 1
        heappush(self._queue, (time_us, priority, sequence, handle, callback))
        return handle

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the currently running :meth:`run_until` / :meth:`run` to stop
        after the event being processed returns."""
        self._stop_requested = True

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        queue = self._queue
        while queue:
            entry = heappop(queue)
            handle = entry[3]
            if handle._cancelled:
                self._stale -= 1
                continue
            self._clock.advance_to(entry[0])
            handle._fired = True
            self._processed += 1
            entry[4]()
            period = handle.period_us
            if period is not None and not handle._cancelled:
                handle._fired = False
                next_time = entry[0] + period
                handle.time_us = next_time
                sequence = self._sequence
                self._sequence = sequence + 1
                heappush(queue, (next_time, handle.priority, sequence, handle, entry[4]))
            return True
        return False

    def run_until(self, time_us: int) -> None:
        """Run events up to and including ``time_us`` and advance the clock there.

        Events scheduled exactly at ``time_us`` are dispatched.  The clock ends
        at ``time_us`` even if the queue drains earlier, so periodic activities
        resumed later see a consistent notion of "now".
        """
        clock = self._clock
        if time_us < clock._now_us:
            raise SimulationError(
                f"run_until target {format_us(time_us)} is in the past "
                f"(now={format_us(clock._now_us)})"
            )
        self._running = True
        self._stop_requested = False
        queue = self._queue
        pop = heappop
        push = heappush
        processed = self._processed
        try:
            # Tight batched drain.  Entries surface strictly in (time,
            # priority, sequence) order; the heap is re-examined after every
            # callback because callbacks schedule (and cancel) freely —
            # including at the instant being drained.  The clock writes are
            # direct slot assignments: heap order guarantees monotonicity, so
            # advance_to's backwards check is redundant here.  The processed
            # counter accumulates in a local and is flushed on exit; nothing
            # reads it mid-run.  Periodic handles are re-queued straight after
            # their callback returns — the exact point a tail re-arm would
            # draw its sequence number.  The current time is mirrored in a
            # local (only this loop advances the clock); the stop flag is
            # checked only after callbacks, the sole place it can be set.
            now_us = clock._now_us
            while queue:
                entry = queue[0]
                entry_time = entry[0]
                if entry_time > time_us:
                    break
                pop(queue)
                handle = entry[3]
                if handle._cancelled:
                    self._stale -= 1
                    continue
                if entry_time > now_us:
                    now_us = clock._now_us = entry_time
                handle._fired = True
                processed += 1
                entry[4]()
                period = handle.period_us
                if period is not None and not handle._cancelled:
                    handle._fired = False
                    next_time = entry_time + period
                    handle.time_us = next_time
                    sequence = self._sequence
                    self._sequence = sequence + 1
                    push(queue, (next_time, handle.priority, sequence, handle, entry[4]))
                if self._stop_requested:
                    break
            if not self._stop_requested and now_us < time_us:
                clock._now_us = time_us
        finally:
            self._processed = processed
            self._running = False

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until the event queue drains or ``max_events`` fire."""
        clock = self._clock
        self._running = True
        self._stop_requested = False
        queue = self._queue
        pop = heappop
        push = heappush
        fired = 0
        processed = self._processed
        try:
            while not self._stop_requested:
                # The livelock check precedes the empty-queue check (matching
                # the seed kernel): draining exactly max_events still raises.
                if fired >= max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely a livelock"
                    )
                if not queue:
                    break
                entry = pop(queue)
                handle = entry[3]
                if handle._cancelled:
                    self._stale -= 1
                    continue
                entry_time = entry[0]
                if entry_time > clock._now_us:
                    clock._now_us = entry_time
                handle._fired = True
                processed += 1
                entry[4]()
                period = handle.period_us
                if period is not None and not handle._cancelled:
                    handle._fired = False
                    next_time = entry_time + period
                    handle.time_us = next_time
                    sequence = self._sequence
                    self._sequence = sequence + 1
                    push(queue, (next_time, handle.priority, sequence, handle, entry[4]))
                fired += 1
        finally:
            self._processed = processed
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={format_us(self.now)}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
