"""Discrete-event simulation kernel.

The kernel is intentionally small: an event queue ordered by ``(time, priority,
sequence)`` plus a simulated clock.  Everything else in the platform package —
the RTOS scheduler, device drivers, the physical environment — is written as
callbacks scheduled on this kernel.

The kernel guarantees:

* events fire in non-decreasing time order;
* events scheduled for the same instant fire in ascending ``priority`` then
  insertion order (FIFO), which makes simultaneous hardware/OS interactions
  deterministic;
* a cancelled event never fires.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .time import SimClock, format_us


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running a broken queue)."""


@dataclass(order=True)
class _QueueEntry:
    time_us: int
    priority: int
    sequence: int
    handle: "EventHandle" = field(compare=False)


class EventHandle:
    """Handle to a scheduled event; supports cancellation and inspection."""

    __slots__ = ("time_us", "priority", "callback", "label", "_cancelled", "_fired", "_owner")

    def __init__(
        self,
        time_us: int,
        priority: int,
        callback: Callable[[], None],
        label: str,
        owner: "Optional[Simulator]" = None,
    ) -> None:
        self.time_us = time_us
        self.priority = priority
        self.callback = callback
        self.label = label
        self._cancelled = False
        self._fired = False
        self._owner = owner

    def cancel(self) -> None:
        """Prevent the event from firing.  Cancelling twice is harmless."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        if self._owner is not None:
            self._owner._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def fired(self) -> bool:
        return self._fired

    @property
    def pending(self) -> bool:
        """True when the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"EventHandle({self.label!r} @ {format_us(self.time_us)}, {state})"


class Simulator:
    """The discrete-event simulator.

    Components schedule zero-argument callbacks at absolute or relative times
    and the simulator dispatches them in time order.  The simulator never
    advances past the time of the last processed event.
    """

    #: Lazy-compaction trigger: rebuild the heap once at least this many
    #: cancelled entries linger *and* they outnumber the live ones.
    _COMPACTION_MIN_STALE = 64

    def __init__(self, start_us: int = 0) -> None:
        self._clock = SimClock(start_us)
        self._queue: List[_QueueEntry] = []
        self._sequence = 0
        self._processed = 0
        self._running = False
        self._stop_requested = False
        self._stale = 0  # cancelled entries still sitting in the heap

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._clock.now

    @property
    def events_processed(self) -> int:
        """Number of events dispatched so far (diagnostic)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events in the queue.

        Maintained as a live counter (queue length minus lingering cancelled
        entries), so introspection is O(1) instead of scanning the heap.
        """
        return len(self._queue) - self._stale

    def _note_cancelled(self) -> None:
        """A pending handle was cancelled; reclaim the heap when stale entries dominate.

        Preemption-heavy runs cancel one completion event per preemption; left
        unreclaimed those entries bloat the heap and slow every push/pop.  The
        rebuild filters cancelled entries and re-heapifies, which preserves the
        ``(time, priority, sequence)`` dispatch order exactly.
        """
        self._stale += 1
        if self._stale >= self._COMPACTION_MIN_STALE and self._stale * 2 > len(self._queue):
            self._queue = [entry for entry in self._queue if not entry.handle.cancelled]
            heapq.heapify(self._queue)
            self._stale = 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self,
        time_us: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` at absolute simulated time ``time_us``.

        ``priority`` breaks ties between events at the same instant (lower
        fires first).  Scheduling in the past raises :class:`SimulationError`.
        """
        if time_us < self._clock.now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {format_us(time_us)} "
                f"in the past (now={format_us(self._clock.now)})"
            )
        handle = EventHandle(time_us, priority, callback, label, owner=self)
        entry = _QueueEntry(time_us, priority, self._sequence, handle)
        self._sequence += 1
        heapq.heappush(self._queue, entry)
        return handle

    def schedule(
        self,
        delay_us: int,
        callback: Callable[[], None],
        *,
        priority: int = 0,
        label: str = "",
    ) -> EventHandle:
        """Schedule ``callback`` after a relative delay (``delay_us`` >= 0)."""
        if delay_us < 0:
            raise SimulationError(f"negative delay {delay_us} for event {label!r}")
        return self.schedule_at(self._clock.now + delay_us, callback, priority=priority, label=label)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def stop(self) -> None:
        """Request the currently running :meth:`run_until` / :meth:`run` to stop
        after the event being processed returns."""
        self._stop_requested = True

    def step(self) -> bool:
        """Dispatch the single next pending event.

        Returns ``True`` if an event fired, ``False`` if the queue was empty.
        """
        while self._queue:
            entry = heapq.heappop(self._queue)
            handle = entry.handle
            if handle.cancelled:
                self._stale -= 1
                continue
            self._clock.advance_to(entry.time_us)
            handle._fired = True
            self._processed += 1
            handle.callback()
            return True
        return False

    def run_until(self, time_us: int) -> None:
        """Run events up to and including ``time_us`` and advance the clock there.

        Events scheduled exactly at ``time_us`` are dispatched.  The clock ends
        at ``time_us`` even if the queue drains earlier, so periodic activities
        resumed later see a consistent notion of "now".
        """
        if time_us < self._clock.now:
            raise SimulationError(
                f"run_until target {format_us(time_us)} is in the past "
                f"(now={format_us(self._clock.now)})"
            )
        self._running = True
        self._stop_requested = False
        try:
            while self._queue and not self._stop_requested:
                entry = self._queue[0]
                if entry.handle.cancelled:
                    heapq.heappop(self._queue)
                    self._stale -= 1
                    continue
                if entry.time_us > time_us:
                    break
                self.step()
            if not self._stop_requested and self._clock.now < time_us:
                self._clock.advance_to(time_us)
        finally:
            self._running = False

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until the event queue drains or ``max_events`` fire."""
        self._running = True
        self._stop_requested = False
        fired = 0
        try:
            while not self._stop_requested:
                if fired >= max_events:
                    raise SimulationError(
                        f"simulation exceeded {max_events} events; likely a livelock"
                    )
                if not self.step():
                    break
                fired += 1
        finally:
            self._running = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Simulator(now={format_us(self.now)}, pending={self.pending_events}, "
            f"processed={self._processed})"
        )
