"""Deterministic randomness for the platform simulator.

Every stochastic element of the simulated platform (execution-time jitter,
sensor noise, interference bursts, test-case inter-arrival times) draws from a
named stream derived from a single seed.  Re-running a scenario with the same
seed reproduces the exact same event timeline, which keeps the unit tests and
the benchmark harness deterministic.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Optional


class RandomSource:
    """A seeded factory of independent named random streams.

    Streams are derived from ``(seed, name)`` via SHA-256 so that adding a new
    stream never perturbs the values drawn by existing ones.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> random.Random:
        """Return an independent :class:`random.Random` for ``name``."""
        digest = hashlib.sha256(f"{self._seed}:{name}".encode("utf-8")).digest()
        return random.Random(int.from_bytes(digest[:8], "big"))

    def fork(self, name: str) -> "RandomSource":
        """Derive a child source, useful when handing randomness to a subsystem."""
        digest = hashlib.sha256(f"{self._seed}:fork:{name}".encode("utf-8")).digest()
        return RandomSource(int.from_bytes(digest[:8], "big"))


@dataclass(frozen=True)
class JitterModel:
    """A bounded execution-time / latency jitter model.

    The drawn value is ``nominal_us`` plus a uniformly distributed jitter in
    ``[-minus_us, +plus_us]``, clamped to be non-negative.  A ``None`` stream
    (or zero bounds) makes the model deterministic, which several unit tests
    rely on.
    """

    nominal_us: int
    plus_us: int = 0
    minus_us: int = 0

    def __post_init__(self) -> None:
        if self.nominal_us < 0:
            raise ValueError("nominal duration must be non-negative")
        if self.plus_us < 0 or self.minus_us < 0:
            raise ValueError("jitter bounds must be non-negative")
        # Per-draw constants, precomputed once (the dataclass is frozen, so
        # object.__setattr__): the accept/reject bound and its bit width.
        n = self.plus_us + self.minus_us + 1
        object.__setattr__(self, "_range_n", n)
        object.__setattr__(self, "_range_bits", n.bit_length())

    def sample(self, rng: Optional[random.Random] = None) -> int:
        """Draw one duration in microseconds.

        The draw is ``rng.randint(-minus_us, plus_us)`` in effect, but goes
        through ``Random._randbelow`` directly where available: ``randint(a,
        b)`` is defined as ``a + _randbelow(b - a + 1)``, so the underlying
        bit-stream consumption — and therefore every downstream draw — is
        bit-identical, without ``randrange``'s per-call argument checking.
        This is the hottest RNG call in the simulator (execution jitter and
        sensor conversion latencies).
        """
        n = self._range_n
        if rng is None or n == 1:
            return self.nominal_us
        if rng.__class__ is random.Random:
            # Inline of CPython's _randbelow_with_getrandbits accept/reject
            # loop (stable since 3.2): draw bit_length(n) bits, reject values
            # >= n.  Bit consumption is exactly what randint would use, so
            # every downstream draw stays bit-identical.
            getrandbits = rng.getrandbits
            k = self._range_bits
            r = getrandbits(k)
            while r >= n:
                r = getrandbits(k)
            jitter = r - self.minus_us
        else:  # pragma: no cover - Random subclasses with custom _randbelow
            jitter = rng.randint(-self.minus_us, self.plus_us)
        value = self.nominal_us + jitter
        return value if value > 0 else 0

    @property
    def worst_case_us(self) -> int:
        """Largest value :meth:`sample` can return."""
        return self.nominal_us + self.plus_us

    @property
    def best_case_us(self) -> int:
        """Smallest value :meth:`sample` can return."""
        return max(0, self.nominal_us - self.minus_us)

    def scaled(self, factor: float) -> "JitterModel":
        """Return a copy with all durations scaled by ``factor``."""
        if factor < 0:
            raise ValueError("scale factor must be non-negative")
        return JitterModel(
            nominal_us=int(round(self.nominal_us * factor)),
            plus_us=int(round(self.plus_us * factor)),
            minus_us=int(round(self.minus_us * factor)),
        )


def constant(duration_us: int) -> JitterModel:
    """Shorthand for a deterministic duration."""
    return JitterModel(nominal_us=duration_us)


def uniform(nominal_us: int, spread_us: int) -> JitterModel:
    """Shorthand for a symmetric uniform jitter of ``±spread_us``."""
    return JitterModel(nominal_us=nominal_us, plus_us=spread_us, minus_us=spread_us)
