"""Discrete-event simulation kernel: clock, event queue, randomness."""

from .random import JitterModel, RandomSource, constant, uniform
from .simulator import EventHandle, SimulationError, Simulator
from .time import (
    MS_PER_SECOND,
    US_PER_MODEL_TICK,
    US_PER_MS,
    US_PER_SECOND,
    SimClock,
    format_us,
    ms,
    seconds,
    ticks_to_us,
    to_ms,
    to_seconds,
    us,
    us_to_ticks,
)

__all__ = [
    "EventHandle",
    "JitterModel",
    "MS_PER_SECOND",
    "RandomSource",
    "SimClock",
    "SimulationError",
    "Simulator",
    "US_PER_MODEL_TICK",
    "US_PER_MS",
    "US_PER_SECOND",
    "constant",
    "format_us",
    "ms",
    "seconds",
    "ticks_to_us",
    "to_ms",
    "to_seconds",
    "uniform",
    "us",
    "us_to_ticks",
]
