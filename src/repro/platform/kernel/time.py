"""Simulated time base.

The whole platform simulator uses **integer microseconds** as its time unit.
Integer arithmetic keeps event ordering exact (no floating point drift), which
matters because the testing framework reasons about differences between
timestamps taken at different abstraction boundaries.

The model layer (``repro.model``) uses *model ticks* of one millisecond,
matching the ``E_CLK`` clock of the paper's Stateflow model; helpers here
convert between the two.
"""

from __future__ import annotations

# Conversion constants.  All are plain ints so arithmetic stays exact.
US_PER_MS = 1_000
US_PER_SECOND = 1_000_000
MS_PER_SECOND = 1_000

#: Model tick duration (the paper's ``E_CLK`` advances in milliseconds).
US_PER_MODEL_TICK = US_PER_MS


def ms(value: float) -> int:
    """Convert milliseconds to integer microseconds.

    Fractional microsecond remainders are rounded to the nearest microsecond.

    >>> ms(2.5)
    2500
    """
    return int(round(value * US_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer microseconds.

    >>> seconds(0.25)
    250000
    """
    return int(round(value * US_PER_SECOND))


def us(value: int) -> int:
    """Identity helper so call-sites can spell the unit explicitly."""
    return int(value)


def to_ms(value_us: int) -> float:
    """Convert microseconds to (float) milliseconds for reporting.

    >>> to_ms(2500)
    2.5
    """
    return value_us / US_PER_MS


def to_seconds(value_us: int) -> float:
    """Convert microseconds to (float) seconds for reporting."""
    return value_us / US_PER_SECOND


def ticks_to_us(ticks: int) -> int:
    """Convert model ticks (1 ms each) to microseconds."""
    return ticks * US_PER_MODEL_TICK


def us_to_ticks(value_us: int) -> int:
    """Convert microseconds to whole model ticks (floor division)."""
    return value_us // US_PER_MODEL_TICK


def format_us(value_us: int) -> str:
    """Human readable rendering of a time instant or duration.

    >>> format_us(1500)
    '1.500 ms'
    >>> format_us(2_000_000)
    '2.000 s'
    """
    if value_us >= US_PER_SECOND:
        return f"{value_us / US_PER_SECOND:.3f} s"
    return f"{value_us / US_PER_MS:.3f} ms"


class SimClock:
    """A monotonically advancing simulated clock.

    The clock is owned by the discrete-event simulator; every other component
    reads the current instant through :meth:`now`.  The clock can never move
    backwards — attempting to do so is a programming error and raises.
    """

    __slots__ = ("_now_us",)

    def __init__(self, start_us: int = 0) -> None:
        if start_us < 0:
            raise ValueError("clock cannot start before time zero")
        self._now_us = int(start_us)

    @property
    def now(self) -> int:
        """Current simulated time in microseconds."""
        return self._now_us

    def advance_to(self, instant_us: int) -> None:
        """Move the clock forward to ``instant_us``.

        Raises :class:`ValueError` if the target is in the past.
        """
        if instant_us < self._now_us:
            raise ValueError(
                f"clock cannot move backwards: now={self._now_us}, "
                f"target={instant_us}"
            )
        self._now_us = int(instant_us)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimClock(now={format_us(self._now_us)})"
