"""Declarative platform assembly for system packs.

The GPCA pump hand-builds its simulated platform (``repro.gpca.hardware``);
new case studies describe theirs declaratively instead: a list of device
specs (edge-triggered buttons, sampled level sensors, actuators) plus a map
of stimulus actions, and :func:`build_pack_bundle` assembles the same
:class:`repro.integration.base.PlatformBundle` shape — devices, environment,
four-variable interfacing code and stimulus routing — that every integration
scheme consumes.

:func:`build_pack_scheme_system` is the declarative counterpart of
``repro.gpca.pump.build_scheme_system`` for such packs: it wires a bundle
builder, an execution-time model and a chart builder into any of the paper's
three implementation schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..codegen.generator import GeneratedArtifacts, generate_code
from ..core.instrumentation import ProbeConfiguration
from ..core.four_variables import TraceRecorder
from ..integration.base import EngineProfile, PlatformBundle
from ..integration.interference import InterferedConfig, InterferedSystem
from ..integration.interfacing import (
    EventInputBinding,
    InputInterfacing,
    LevelInputBinding,
    OutputBinding,
    OutputInterfacing,
)
from ..integration.multi_threaded import MultiThreadedConfig, MultiThreadedSystem
from ..integration.single_threaded import SingleThreadedConfig, SingleThreadedSystem
from ..platform.devices.device import EventInputDevice, OutputDevice, StateInputDevice
from ..platform.kernel.random import JitterModel, RandomSource, uniform
from ..platform.kernel.simulator import Simulator
from ..platform.kernel.time import ms, us


@dataclass(frozen=True)
class ButtonSpec:
    """An edge-triggered input device (button, electrode, pedal)."""

    attribute: str
    monitored_variable: str
    input_variable: str
    sampling_period_us: int = ms(2)
    conversion_latency: Optional[JitterModel] = None


@dataclass(frozen=True)
class LevelSpec:
    """A sampled level sensor; optional falling edge feeds a second i-variable."""

    attribute: str
    monitored_variable: str
    rising_input: str
    falling_input: Optional[str] = None
    sampling_period_us: int = ms(10)
    conversion_latency: Optional[JitterModel] = None
    initial_value: bool = False


@dataclass(frozen=True)
class ActuatorSpec:
    """An output device realising one o-variable as a c-variable."""

    attribute: str
    output_variable: str
    controlled_variable: str
    actuation_latency: Optional[JitterModel] = None
    initial_value: int = 0


@dataclass(frozen=True)
class PressAction:
    """Stimulus action: trigger an edge device, releasing 50 ms later."""

    attribute: str


@dataclass(frozen=True)
class LevelAction:
    """Stimulus action: set a level sensor's physical value."""

    attribute: str
    value: bool = True


class PackHardware:
    """Device collection built from declarative specs.

    Devices are exposed as attributes named by their spec (``attribute`` is
    simultaneously the device name and the named random stream), which is the
    contract the sensor fault models rely on
    (``getattr(system.bundle.hardware, fault.device)``).
    """

    def __init__(
        self,
        simulator: Simulator,
        recorder: TraceRecorder,
        buttons: Sequence[ButtonSpec],
        levels: Sequence[LevelSpec],
        actuators: Sequence[ActuatorSpec],
        *,
        randomness: Optional[RandomSource] = None,
        device_wrapper: Optional[Callable[[type], type]] = None,
    ) -> None:
        self.simulator = simulator
        self.recorder = recorder
        randomness = randomness or RandomSource(0)
        wrap = device_wrapper if device_wrapper is not None else (lambda cls: cls)
        self._input_devices: List[object] = []
        self._output_devices: List[object] = []
        for spec in buttons:
            device = wrap(EventInputDevice)(
                spec.attribute,
                spec.monitored_variable,
                simulator,
                recorder,
                sampling_period_us=spec.sampling_period_us,
                conversion_latency=spec.conversion_latency or uniform(us(300), us(100)),
                rng=randomness.stream(spec.attribute),
            )
            setattr(self, spec.attribute, device)
            self._input_devices.append(device)
        for spec in levels:
            device = wrap(StateInputDevice)(
                spec.attribute,
                spec.monitored_variable,
                simulator,
                recorder,
                sampling_period_us=spec.sampling_period_us,
                conversion_latency=spec.conversion_latency or uniform(us(500), us(200)),
                initial_value=spec.initial_value,
                rng=randomness.stream(spec.attribute),
            )
            setattr(self, spec.attribute, device)
            self._input_devices.append(device)
        for spec in actuators:
            device = wrap(OutputDevice)(
                spec.attribute,
                spec.controlled_variable,
                simulator,
                recorder,
                actuation_latency=spec.actuation_latency or uniform(ms(1), us(300)),
                initial_value=spec.initial_value,
                rng=randomness.stream(spec.attribute),
            )
            setattr(self, spec.attribute, device)
            self._output_devices.append(device)

    @property
    def input_devices(self) -> List[object]:
        return list(self._input_devices)

    @property
    def output_devices(self) -> List[object]:
        return list(self._output_devices)

    def start(self) -> None:
        """Start every device driver's sampling process."""
        for device in self._input_devices:
            device.start()


class PackEnvironment:
    """Stimulus-injection environment for declaratively built platforms."""

    def __init__(self, simulator: Simulator, hardware: PackHardware) -> None:
        self.simulator = simulator
        self.hardware = hardware
        self.scheduled_stimuli: List[Dict[str, object]] = []

    def schedule_press(self, device: EventInputDevice, at_us: int, kind: str) -> None:
        """Press an edge device at ``at_us``; released 50 ms later."""
        self.scheduled_stimuli.append({"kind": kind, "at_us": at_us, "value": True})
        self.simulator.schedule_at(at_us, lambda: device.trigger(True), label=f"env:{kind}")
        self.simulator.schedule_at(at_us + ms(50), device.release, label=f"env:{kind}:release")

    def schedule_level(
        self, device: StateInputDevice, at_us: int, value: bool, kind: str
    ) -> None:
        """Drive a level sensor's physical value at ``at_us``."""
        self.scheduled_stimuli.append({"kind": kind, "at_us": at_us, "value": value})
        self.simulator.schedule_at(
            at_us, lambda: device.set_physical(value), label=f"env:{kind}"
        )


def build_pack_bundle(
    *,
    buttons: Sequence[ButtonSpec],
    levels: Sequence[LevelSpec],
    actuators: Sequence[ActuatorSpec],
    stimuli: Mapping[str, Any],
    interface_builder: Callable[[], Any],
    seed: int = 0,
    input_variables: Optional[Iterable[str]] = None,
    engine: Optional[EngineProfile] = None,
) -> PlatformBundle:
    """Assemble one fresh simulated platform from declarative specs.

    Mirrors ``repro.gpca.hardware.build_platform_bundle``: ``input_variables``
    restricts the interfacing code to the i-variables the generated chart
    declares; ``engine`` selects the runtime engine (production by default).
    ``stimuli`` maps monitored variables to :class:`PressAction` /
    :class:`LevelAction` records that become the bundle's stimulus routing.
    """
    if engine is None:
        simulator = Simulator()
        recorder = TraceRecorder(lambda: simulator.now)
        device_wrapper = None
        scheduler_class = None
    else:
        simulator = engine.simulator_factory()
        recorder = engine.recorder_factory(lambda: simulator.now)
        device_wrapper = engine.device_wrapper
        scheduler_class = engine.scheduler_class
    randomness = RandomSource(seed)
    hardware = PackHardware(
        simulator,
        recorder,
        buttons,
        levels,
        actuators,
        randomness=randomness,
        device_wrapper=device_wrapper,
    )
    environment = PackEnvironment(simulator, hardware)
    interface = interface_builder()

    wanted = set(input_variables) if input_variables is not None else None

    def include(variable: str) -> bool:
        return wanted is None or variable in wanted

    input_interfacing = InputInterfacing()
    for spec in buttons:
        if include(spec.input_variable):
            input_interfacing.add(
                EventInputBinding(getattr(hardware, spec.attribute), spec.input_variable)
            )
    for spec in levels:
        device = getattr(hardware, spec.attribute)
        if include(spec.rising_input):
            input_interfacing.add(LevelInputBinding(device, spec.rising_input))
        if spec.falling_input and include(spec.falling_input):
            input_interfacing.add(
                LevelInputBinding(device, spec.falling_input, trigger_value=False)
            )

    output_interfacing = OutputInterfacing(
        [
            OutputBinding(spec.output_variable, getattr(hardware, spec.attribute))
            for spec in actuators
        ]
    )

    stimulus_actions: Dict[str, Callable[[int], None]] = {}
    for variable, action in stimuli.items():
        device = getattr(hardware, action.attribute)
        if isinstance(action, PressAction):

            def press(at_us: int, device=device, kind=action.attribute) -> None:
                environment.schedule_press(device, at_us, kind)

            stimulus_actions[variable] = press
        else:

            def level(
                at_us: int, device=device, value=action.value, kind=action.attribute
            ) -> None:
                environment.schedule_level(device, at_us, value, kind)

            stimulus_actions[variable] = level

    return PlatformBundle(
        simulator=simulator,
        recorder=recorder,
        scheduler_class=scheduler_class,
        hardware=hardware,
        environment=environment,
        interface=interface,
        input_interfacing=input_interfacing,
        output_interfacing=output_interfacing,
        stimulus_actions=stimulus_actions,
    )


def build_pack_scheme_system(
    scheme: int,
    *,
    bundle_builder: Callable[..., PlatformBundle],
    execution_model_factory: Callable[[], Any],
    chart_builder: Callable[[], Any],
    seed: int = 0,
    period_us: Optional[int] = None,
    interference_scale: Optional[float] = None,
    artifacts: Optional[GeneratedArtifacts] = None,
    probes: Optional[ProbeConfiguration] = None,
    engine: Optional[EngineProfile] = None,
    code_factory: Optional[Callable[[], Any]] = None,
):
    """Assemble one implemented system for a declaratively specified pack.

    ``bundle_builder(seed=..., input_variables=..., engine=...)`` produces a
    fresh platform; everything else follows the GPCA scheme factory: scheme 1
    accepts a polling period, scheme 3 an interference scaling, and
    ``artifacts`` / ``probes`` / ``engine`` / ``code_factory`` default to the
    production configuration.
    """
    if period_us is not None and scheme != 1:
        raise ValueError("period_us only applies to scheme 1 (single-threaded)")
    if interference_scale is not None and scheme != 3:
        raise ValueError("interference_scale only applies to scheme 3 (interfered)")
    if artifacts is None:
        artifacts = generate_code(chart_builder())
    bundle = bundle_builder(
        seed=seed, input_variables=artifacts.code_model.input_names, engine=engine
    )
    probes = probes or ProbeConfiguration.m_level()
    config: Any
    system_class: Any
    if scheme == 1:
        config = SingleThreadedConfig()
        if period_us is not None:
            config.period_us = period_us
        system_class = SingleThreadedSystem
    elif scheme == 2:
        config = MultiThreadedConfig()
        system_class = MultiThreadedSystem
    elif scheme == 3:
        config = InterferedConfig()
        if interference_scale is not None:
            config = config.scaled_interference(interference_scale)
        system_class = InterferedSystem
    else:
        raise ValueError(f"unknown implementation scheme {scheme!r} (expected 1, 2 or 3)")
    config.execution_model = execution_model_factory()
    config.probes = probes
    config.seed = seed
    config.code_factory = code_factory
    return system_class(bundle, artifacts, config)


__all__: Tuple[str, ...] = (
    "ActuatorSpec",
    "ButtonSpec",
    "LevelAction",
    "LevelSpec",
    "PackEnvironment",
    "PackHardware",
    "PressAction",
    "build_pack_bundle",
    "build_pack_scheme_system",
)
