"""The :class:`SystemPack` protocol and the system-pack registry.

The paper's method (model -> CODE(M) -> integration schemes -> R-/M-testing)
is system-agnostic; a *system pack* bundles everything one case study
contributes to the pipeline:

* the statechart builders (keyed by model name for the campaign artifact
  cache's content fingerprints);
* the four-variable interface declaration;
* the scheme factory that assembles an implemented system on the simulated
  platform;
* the named scenario cases, the timing-requirement suite and the generated
  scenario space;
* the fault-plan suite for the kill matrix.

Every consumer layer (campaign specs, workers, results, the fault matrix, the
survivor hunter, the CLI) resolves a pack through :func:`get_pack` instead of
importing a case study directly, which makes *system* a first-class campaign
axis.  The GPCA pump registers first and is the default system, so legacy
specs, store coordinates and snapshots that predate the registry keep their
meaning (and their bytes) unchanged.

Import discipline: this package sits *below* ``repro.campaign`` and
``repro.faults`` in the layering — packs must not import either at module
level (``fault_suite`` callables lazily import ``repro.faults.models`` inside
the call).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, Mapping, Tuple

#: The system every pre-registry spec implicitly targeted.
DEFAULT_SYSTEM = "gpca"

#: Integration schemes every pack supports (the paper's three).
ALL_SCHEMES = (1, 2, 3)


def generic_scheme_name(scheme: int) -> str:
    """The scheme names shared by every pack (packs may override)."""
    return {
        1: "Scheme 1 (single-threaded)",
        2: "Scheme 2 (multi-threaded)",
        3: "Scheme 3 (multi-threaded + interference)",
    }[scheme]


@dataclass(frozen=True)
class SystemPack:
    """Everything one case-study system contributes to the testing pipeline."""

    #: Registry key; appears in specs, labels and store coordinates.
    system_id: str
    #: Human-readable name used by ``repro systems``.
    title: str
    description: str
    #: Model built when a spec does not name one explicitly.
    default_model: str
    #: Chart builders keyed by model name.  Model names are globally unique
    #: across packs so the artifact cache can stay keyed by model name alone.
    model_builders: Mapping[str, Callable[[], Any]]
    #: The four-variable interface declaration (used by M-testing).
    build_interface: Callable[[], Any]
    #: ``build_system(scheme, *, model, seed, period_us, interference_scale,
    #: artifacts, probes, engine, code_factory)`` -> implemented system.
    build_system: Callable[..., Any]
    #: Named scenario cases: ``name -> builder(samples, seed) -> RTestCase``.
    case_builders: Mapping[str, Callable[[int, int], Any]]
    #: The timing-requirement suite (a ``RequirementSet``).
    requirements: Callable[[], Any]
    #: The generated-scenario universe for the coverage-guided explorer.
    scenario_space: Callable[[], Any]
    #: Fault plans for the kill matrix; implementations lazily import
    #: ``repro.faults.models`` (layering: faults sits above systems).
    fault_suite: Callable[[], Tuple[Any, ...]]
    scheme_name: Callable[[int], str] = generic_scheme_name
    schemes: Tuple[int, ...] = ALL_SCHEMES
    #: Per-model stimulus-schedule shift applied to compiled cases (the GPCA
    #: extended chart needs stimuli delayed past its power-on self test).
    model_shifts_us: Mapping[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.system_id:
            raise ValueError("system pack needs a system_id")
        if self.default_model not in self.model_builders:
            raise ValueError(
                f"default model {self.default_model!r} of system "
                f"{self.system_id!r} has no registered builder"
            )
        for model in self.model_shifts_us:
            if model not in self.model_builders:
                raise ValueError(
                    f"shifted model {model!r} of system {self.system_id!r} "
                    "has no registered builder"
                )


_PACKS: Dict[str, SystemPack] = {}

#: Aggregated ``model name -> chart builder`` map across every registered
#: pack.  ``repro.campaign.cache`` exposes this same object as its
#: ``MODEL_BUILDERS``, so artifact-cache keys stay plain model names.
MODEL_BUILDERS: Dict[str, Callable[[], Any]] = {}

_MODEL_SYSTEMS: Dict[str, str] = {}


def register_pack(pack: SystemPack) -> SystemPack:
    """Register a pack; model names must be globally unique across packs."""
    if pack.system_id in _PACKS:
        raise ValueError(f"system {pack.system_id!r} is already registered")
    for model in pack.model_builders:
        owner = _MODEL_SYSTEMS.get(model)
        if owner is not None:
            raise ValueError(
                f"model {model!r} of system {pack.system_id!r} is already "
                f"registered by system {owner!r}"
            )
    _PACKS[pack.system_id] = pack
    for model, builder in pack.model_builders.items():
        MODEL_BUILDERS[model] = builder
        _MODEL_SYSTEMS[model] = pack.system_id
    return pack


def get_pack(system: str) -> SystemPack:
    """The registered pack for ``system`` (raises with the known ids)."""
    try:
        return _PACKS[system]
    except KeyError:
        known = ", ".join(sorted(_PACKS))
        raise ValueError(f"unknown system {system!r} (known: {known})") from None


def pack_ids() -> Tuple[str, ...]:
    """Registered system ids, in registration order (default system first)."""
    return tuple(_PACKS)


def iter_packs() -> Iterator[SystemPack]:
    """Iterate over the registered packs in registration order."""
    return iter(_PACKS.values())


def model_system(model: str) -> str:
    """The system id owning ``model`` (raises with the known model names)."""
    try:
        return _MODEL_SYSTEMS[model]
    except KeyError:
        known = ", ".join(sorted(_MODEL_SYSTEMS))
        raise ValueError(f"unknown model {model!r} (known: {known})") from None
