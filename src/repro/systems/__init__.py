"""System packs: pluggable case-study systems for the testing pipeline.

A :class:`SystemPack` bundles everything one system contributes — statechart
builders, the four-variable interface, the scheme factory, named scenarios,
the requirement suite, the generated-scenario space and the fault suite —
behind a registry keyed by system id.  Three packs ship built in:

* ``gpca`` — the paper's GPCA infusion pump (the default system);
* ``pacemaker`` — a rate-adaptive cardiac pacemaker;
* ``cruise`` — an automotive cruise controller with emergency braking.

``repro systems`` lists them; every campaign, fault-matrix and explorer
entry point takes a ``system`` parameter resolved through this registry.
"""

from .base import (
    ALL_SCHEMES,
    DEFAULT_SYSTEM,
    MODEL_BUILDERS,
    SystemPack,
    generic_scheme_name,
    get_pack,
    iter_packs,
    model_system,
    pack_ids,
    register_pack,
)
from .cruise import CRUISE_PACK
from .gpca import GPCA_PACK
from .pacemaker import PACEMAKER_PACK

# Registration order is meaningful: the GPCA pump registers first so it is
# the default system and ``pack_ids()`` leads with it.
register_pack(GPCA_PACK)
register_pack(PACEMAKER_PACK)
register_pack(CRUISE_PACK)

__all__ = [
    "ALL_SCHEMES",
    "CRUISE_PACK",
    "DEFAULT_SYSTEM",
    "GPCA_PACK",
    "MODEL_BUILDERS",
    "PACEMAKER_PACK",
    "SystemPack",
    "generic_scheme_name",
    "get_pack",
    "iter_packs",
    "model_system",
    "pack_ids",
    "register_pack",
]
