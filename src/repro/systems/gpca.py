"""The GPCA infusion pump as the default registered system pack.

This pack only *delegates*: the pump's charts, platform, interface,
requirements and scenarios all live in :mod:`repro.gpca`, whose public API is
unchanged.  Registering it first makes ``"gpca"`` the default system, so
every spec, store coordinate and snapshot that predates the registry keeps
its meaning — and its bytes — unchanged.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..gpca.interface import build_pump_interface
from ..gpca.model import build_extended_statechart, build_fig2_statechart
from ..gpca.pump import build_scheme_system, scheme_name
from ..gpca.requirements import gpca_requirements
from ..gpca.scenarios import (
    alarm_clear_test_case,
    bolus_request_test_case,
    empty_reservoir_alarm_test_case,
    empty_reservoir_stop_test_case,
    gpca_scenario_space,
)
from ..platform.kernel.time import ms
from .base import SystemPack

#: Stimulus-schedule shift for runs against the extended GPCA model: its
#: 500 ms power-on self test ignores early stimuli, so schedules move past it.
EXTENDED_MODEL_SHIFT_US = ms(650)


def _build_system(
    scheme: int,
    *,
    model: str = "fig2",
    seed: int = 0,
    period_us: Optional[int] = None,
    interference_scale: Optional[float] = None,
    artifacts: Any = None,
    probes: Any = None,
    engine: Any = None,
    code_factory: Any = None,
):
    return build_scheme_system(
        scheme,
        seed=seed,
        use_extended_model=model == "extended",
        period_us=period_us,
        interference_scale=interference_scale,
        artifacts=artifacts,
        probes=probes,
        engine=engine,
        code_factory=code_factory,
    )


# The campaign scenario axis builds cases as ``builder(samples, seed)``; only
# the randomized bolus scenario consumes the seed (the multi-step scenarios
# use fixed spacing so every cycle starts from a recovered state).
def _bolus(samples: int, seed: int):
    return bolus_request_test_case(samples, seed=seed)


def _empty_alarm(samples: int, seed: int):
    return empty_reservoir_alarm_test_case(samples)


def _empty_stop(samples: int, seed: int):
    return empty_reservoir_stop_test_case(samples)


def _alarm_clear(samples: int, seed: int):
    return alarm_clear_test_case(samples)


def _fault_suite() -> Tuple[Any, ...]:
    from ..faults.models import default_fault_suite

    return default_fault_suite()


GPCA_PACK = SystemPack(
    system_id="gpca",
    title="GPCA infusion pump",
    description="The paper's case study: a patient-controlled analgesia pump",
    default_model="fig2",
    model_builders={
        "fig2": build_fig2_statechart,
        "extended": build_extended_statechart,
    },
    model_shifts_us={"extended": EXTENDED_MODEL_SHIFT_US},
    build_interface=build_pump_interface,
    build_system=_build_system,
    case_builders={
        "bolus-request": _bolus,
        "empty-reservoir-alarm": _empty_alarm,
        "empty-reservoir-stop": _empty_stop,
        "alarm-clear": _alarm_clear,
    },
    requirements=gpca_requirements,
    scenario_space=gpca_scenario_space,
    fault_suite=_fault_suite,
    scheme_name=scheme_name,
)
