"""An automotive cruise-control / AEB controller as a registered system pack.

The third case study: a cruise controller with autonomous emergency braking.
The chart engages throttle hold on the driver's request, drops it on cancel
or brake-pedal override (with a hold-off before re-engagement is possible),
and — from either manual or engaged driving — commands emergency braking
plus a warning lamp when the radar reports an obstacle.

Like the pacemaker pack, everything lowers through the existing pipeline:
codegen, the declarative platform assembly and the three integration schemes.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..codegen.execution_model import ExecutionTimeModel
from ..core.four_variables import FourVariableInterface
from ..core.requirements import EventSpec, RequirementSet, TimingRequirement
from ..core.test_generation import RTestCase
from ..model.builder import StatechartBuilder
from ..model.statechart import Statechart
from ..model.temporal import at
from ..platform.kernel.random import uniform
from ..platform.kernel.time import ms, us
from ..scenarios import (
    ROLE_SETUP,
    ROLE_TEARDOWN,
    CycleSpacing,
    ScenarioProgram,
    ScenarioSpace,
    StimulusPattern,
    StimulusStep,
)
from .base import SystemPack
from .platform import (
    ActuatorSpec,
    ButtonSpec,
    LevelAction,
    LevelSpec,
    PressAction,
    build_pack_bundle,
    build_pack_scheme_system,
)

#: Hold-off after a brake-pedal override before re-engagement is possible.
OVERRIDE_HOLD_TICKS = 500

TRANS_ENGAGE = "t_engage"
TRANS_DRIVER_OVERRIDE = "t_driver_override"
TRANS_AEB_MANUAL = "t_aeb_manual"
TRANS_AEB_ENGAGED = "t_aeb_engaged"


def build_cruise_statechart() -> Statechart:
    """The cruise-control / AEB statechart."""
    return (
        StatechartBuilder("cruise_aeb")
        .input_events(
            "i-Engage", "i-Cancel", "i-BrakePedal", "i-Obstacle", "i-ObstacleClear"
        )
        .output_variable("o-ThrottleState", initial=0)
        .output_variable("o-BrakeState", initial=0)
        .output_variable("o-WarnState", initial=0)
        .state("Manual", initial=True, description="driver controls the throttle")
        .state("Engaged", description="cruise control holds the throttle")
        .state("Override", description="brake-pedal override, hold-off running")
        .state("Braking", description="autonomous emergency braking active")
        .transition(
            TRANS_ENGAGE,
            "Manual",
            "Engaged",
            event="i-Engage",
            assign={"o-ThrottleState": 1},
            description="driver engages cruise control",
        )
        .transition(
            "t_cancel",
            "Engaged",
            "Manual",
            event="i-Cancel",
            assign={"o-ThrottleState": 0},
            description="driver cancels cruise control",
        )
        .transition(
            TRANS_DRIVER_OVERRIDE,
            "Engaged",
            "Override",
            event="i-BrakePedal",
            assign={"o-ThrottleState": 0},
            description="brake pedal overrides the throttle hold",
        )
        .transition(
            "t_resume_ready",
            "Override",
            "Manual",
            temporal=at(OVERRIDE_HOLD_TICKS),
            description="override hold-off elapsed; re-engagement possible",
        )
        .transition(
            TRANS_AEB_ENGAGED,
            "Engaged",
            "Braking",
            event="i-Obstacle",
            assign={"o-ThrottleState": 0, "o-BrakeState": 1, "o-WarnState": 1},
            description="obstacle while engaged: brake, warn, drop throttle",
        )
        .transition(
            TRANS_AEB_MANUAL,
            "Manual",
            "Braking",
            event="i-Obstacle",
            assign={"o-BrakeState": 1, "o-WarnState": 1},
            description="obstacle while manual: brake and warn",
        )
        .transition(
            "t_aeb_clear",
            "Braking",
            "Manual",
            event="i-ObstacleClear",
            assign={"o-BrakeState": 0, "o-WarnState": 0},
            description="obstacle cleared: release the brake intervention",
        )
        .build()
    )


def build_cruise_interface() -> FourVariableInterface:
    """The four-variable interface of the cruise-control implementation."""
    interface = FourVariableInterface()
    interface.monitored("m-Engage", description="engage button electrical state")
    interface.monitored("m-Cancel", description="cancel button electrical state")
    interface.monitored("m-BrakePedal", description="brake pedal switch state")
    interface.monitored("m-Obstacle", description="radar obstacle condition")
    interface.input("i-Engage", description="engage request read by the generated code")
    interface.input("i-Cancel", description="cancel request read by the generated code")
    interface.input("i-BrakePedal", description="brake-pedal press read by the generated code")
    interface.input("i-Obstacle", description="obstacle onset read by the generated code")
    interface.input("i-ObstacleClear", description="obstacle clearance read by the generated code")
    interface.output("o-ThrottleState", var_type="int", initial=0, description="commanded throttle hold")
    interface.output("o-BrakeState", var_type="int", initial=0, description="commanded brake intervention")
    interface.output("o-WarnState", var_type="int", initial=0, description="commanded warning lamp")
    interface.controlled("c-Throttle", var_type="int", initial=0, description="physical throttle actuator")
    interface.controlled("c-BrakeActuator", var_type="int", initial=0, description="physical brake actuator")
    interface.controlled("c-WarnLamp", var_type="int", initial=0, description="physical warning lamp")
    interface.link_input("m-Engage", "i-Engage")
    interface.link_input("m-Cancel", "i-Cancel")
    interface.link_input("m-BrakePedal", "i-BrakePedal")
    interface.link_input("m-Obstacle", "i-Obstacle")
    interface.link_output("o-ThrottleState", "c-Throttle")
    interface.link_output("o-BrakeState", "c-BrakeActuator")
    interface.link_output("o-WarnState", "c-WarnLamp")
    interface.validate()
    return interface


_BUTTONS = (
    ButtonSpec("engage_button", "m-Engage", "i-Engage", sampling_period_us=ms(2)),
    ButtonSpec("cancel_button", "m-Cancel", "i-Cancel", sampling_period_us=ms(5)),
    ButtonSpec("brake_pedal", "m-BrakePedal", "i-BrakePedal", sampling_period_us=ms(2)),
)
_LEVELS = (
    LevelSpec(
        "radar",
        "m-Obstacle",
        "i-Obstacle",
        falling_input="i-ObstacleClear",
        sampling_period_us=ms(10),
    ),
)
_ACTUATORS = (
    ActuatorSpec(
        "throttle_actuator",
        "o-ThrottleState",
        "c-Throttle",
        actuation_latency=uniform(ms(2), us(500)),
    ),
    ActuatorSpec(
        "brake_actuator",
        "o-BrakeState",
        "c-BrakeActuator",
        actuation_latency=uniform(ms(3), ms(1)),
    ),
    ActuatorSpec(
        "warning_buzzer",
        "o-WarnState",
        "c-WarnLamp",
        actuation_latency=uniform(us(800), us(200)),
    ),
)
_STIMULI = {
    "m-Engage": PressAction("engage_button"),
    "m-Cancel": PressAction("cancel_button"),
    "m-BrakePedal": PressAction("brake_pedal"),
    "m-Obstacle": LevelAction("radar", True),
    "m-ObstacleClear": LevelAction("radar", False),
}


def cruise_execution_model() -> ExecutionTimeModel:
    """Execution costs of an automotive body-controller class MCU."""
    model = ExecutionTimeModel(
        input_scan=uniform(ms(1), us(300)),
        idle_scan=uniform(us(300), us(100)),
        transition_base=uniform(ms(5), ms(1)),
        per_action=uniform(ms(1), us(400)),
        output_write=uniform(us(900), us(250)),
    )
    model.transition_overrides[TRANS_ENGAGE] = uniform(ms(6), ms(2))
    model.transition_overrides[TRANS_AEB_MANUAL] = uniform(ms(8), ms(2))
    model.transition_overrides[TRANS_AEB_ENGAGED] = uniform(ms(8), ms(2))
    return model


def build_cruise_bundle(*, seed: int = 0, input_variables: Any = None, engine: Any = None):
    """One fresh simulated cruise-control platform."""
    return build_pack_bundle(
        buttons=_BUTTONS,
        levels=_LEVELS,
        actuators=_ACTUATORS,
        stimuli=_STIMULI,
        interface_builder=build_cruise_interface,
        seed=seed,
        input_variables=input_variables,
        engine=engine,
    )


def build_cruise_system(
    scheme: int,
    *,
    model: str = "cruise",
    seed: int = 0,
    period_us: Optional[int] = None,
    interference_scale: Optional[float] = None,
    artifacts: Any = None,
    probes: Any = None,
    engine: Any = None,
    code_factory: Any = None,
):
    """Assemble one implemented cruise-control system (schemes 1-3)."""
    if model != "cruise":
        raise ValueError(f"unknown cruise model {model!r} (known: cruise)")
    return build_pack_scheme_system(
        scheme,
        bundle_builder=build_cruise_bundle,
        execution_model_factory=cruise_execution_model,
        chart_builder=build_cruise_statechart,
        seed=seed,
        period_us=period_us,
        interference_scale=interference_scale,
        artifacts=artifacts,
        probes=probes,
        engine=engine,
        code_factory=code_factory,
    )


# ----------------------------------------------------------------------
# Timing requirements
# ----------------------------------------------------------------------
def cc1_engage(deadline_ms: int = 120) -> TimingRequirement:
    """CC1: engagement shall hold the throttle within ``deadline_ms``."""
    return TimingRequirement(
        requirement_id="CC1",
        description=(
            "When the driver engages cruise control, the throttle hold shall be "
            "active within 120 ms."
        ),
        stimulus=EventSpec.becomes("m-Engage", True, "engage button pressed"),
        response=EventSpec.becomes_positive("c-Throttle", "throttle hold physically active"),
        deadline_us=ms(deadline_ms),
        min_stimulus_separation_us=ms(1200),
        model_trigger_event="i-Engage",
        model_response_variable="o-ThrottleState",
        model_response_value=1,
        model_trigger_state="Manual",
    )


def cc2_override(deadline_ms: int = 120) -> TimingRequirement:
    """CC2: a brake-pedal press shall release the throttle within ``deadline_ms``."""
    return TimingRequirement(
        requirement_id="CC2",
        description=(
            "When the driver presses the brake pedal while cruise control is "
            "engaged, the throttle hold shall be released within 120 ms."
        ),
        stimulus=EventSpec.becomes("m-BrakePedal", True, "brake pedal pressed"),
        response=EventSpec.becomes("c-Throttle", 0, "throttle hold physically released"),
        deadline_us=ms(deadline_ms),
        min_stimulus_separation_us=ms(1500),
        model_trigger_event="i-BrakePedal",
        model_response_variable="o-ThrottleState",
        model_response_value=0,
        model_trigger_state="Engaged",
    )


def cc3_aeb_brake(deadline_ms: int = 100) -> TimingRequirement:
    """CC3: an obstacle shall trigger braking within ``deadline_ms``."""
    return TimingRequirement(
        requirement_id="CC3",
        description=(
            "When the radar reports an obstacle, the emergency brake "
            "intervention shall be active within 100 ms."
        ),
        stimulus=EventSpec.becomes("m-Obstacle", True, "obstacle detected"),
        response=EventSpec.becomes_positive("c-BrakeActuator", "brake physically applied"),
        deadline_us=ms(deadline_ms),
        min_stimulus_separation_us=ms(1200),
        model_trigger_event="i-Obstacle",
        model_response_variable="o-BrakeState",
        model_response_value=1,
        model_trigger_state="Manual",
    )


def cruise_requirements() -> RequirementSet:
    """The cruise-control timing-requirement catalogue."""
    return RequirementSet(
        "Cruise-control/AEB requirements (timing)",
        [cc1_engage(), cc2_override(), cc3_aeb_brake()],
    )


# ----------------------------------------------------------------------
# Named scenarios
# ----------------------------------------------------------------------
def engage_program(samples: int = 6) -> ScenarioProgram:
    """CC1 scenario: engage, cancel 600 ms later, per cycle."""
    return ScenarioProgram(
        name="engage",
        requirement=cc1_engage(),
        spacing=CycleSpacing(ms(1500)),
        samples=samples,
        start_offset_us=ms(150),
        teardown=(StimulusStep("m-Cancel", ms(600), ROLE_TEARDOWN),),
        description="cruise engagement; throttle-hold latency is timed",
    )


def driver_override_program(samples: int = 5) -> ScenarioProgram:
    """CC2 scenario: engage (setup), brake 500 ms later (measured).

    The override hold-off (``t_resume_ready``) returns the chart to Manual
    on its own, so no teardown step is needed before the next engagement.
    """
    return ScenarioProgram(
        name="driver-override",
        requirement=cc2_override(),
        spacing=CycleSpacing(ms(2000)),
        samples=samples,
        start_offset_us=ms(150),
        setup=(StimulusStep("m-Engage", 0, ROLE_SETUP),),
        stimulus=StimulusPattern(offset_us=ms(500)),
        description="brake-pedal override; throttle release latency is timed",
    )


def aeb_stop_program(samples: int = 5) -> ScenarioProgram:
    """CC3 scenario: obstacle appears, clears 600 ms later, per cycle."""
    return ScenarioProgram(
        name="aeb-stop",
        requirement=cc3_aeb_brake(),
        spacing=CycleSpacing(ms(1500)),
        samples=samples,
        start_offset_us=ms(150),
        teardown=(StimulusStep("m-ObstacleClear", ms(600), ROLE_TEARDOWN),),
        description="emergency braking on obstacle; brake latency is timed",
    )


def engage_test_case(samples: int = 6) -> RTestCase:
    return engage_program(samples).compile()


def driver_override_test_case(samples: int = 5) -> RTestCase:
    return driver_override_program(samples).compile()


def aeb_stop_test_case(samples: int = 5) -> RTestCase:
    return aeb_stop_program(samples).compile()


def cruise_scenario_space() -> ScenarioSpace:
    """The bounded universe of generated cruise-control scenarios.

    Setup steps may engage cruise control before a measured obstacle, which
    is what unlocks the engaged-mode AEB transition (``t_aeb_engaged``) for
    the coverage-guided explorer.
    """
    return ScenarioSpace(
        requirements=tuple(cruise_requirements()),
        setup_variables=(
            "m-Engage",
            "m-Cancel",
            "m-BrakePedal",
            "m-Obstacle",
            "m-ObstacleClear",
        ),
        teardown_variables=("m-Cancel", "m-ObstacleClear"),
        samples=(2, 4),
        cycle_spacing_us=(ms(900), ms(2800)),
        measured_offset_us=(ms(300), ms(1200)),
        setup_lead_us=(ms(50), ms(400)),
        teardown_lag_us=(ms(300), ms(1500)),
    )


def _fault_suite() -> Tuple[Any, ...]:
    from ..faults.models import (
        ClockDriftFault,
        ExecutionInflationFault,
        FaultPlan,
        QueueFault,
        SensorGlitchFault,
        SensorStuckFault,
    )
    from ..platform.kernel.random import JitterModel

    return (
        FaultPlan((ClockDriftFault(drift=1.5),), name="clock-drift"),
        FaultPlan(
            (
                ExecutionInflationFault(
                    factor=3.0,
                    overrun=JitterModel(ms(25), ms(6), ms(6)),
                    overrun_probability=0.25,
                ),
            ),
            name="exec-inflation",
        ),
        FaultPlan(
            (QueueFault(queue="o_events", delay_us=ms(300), delay_probability=0.8),),
            name="queue-delay",
        ),
        FaultPlan((SensorStuckFault(device="engage_button"),), name="sensor-stuck"),
        FaultPlan(
            (SensorGlitchFault(device="brake_pedal", drop_probability=0.9),),
            name="sensor-glitch",
        ),
    )


CRUISE_PACK = SystemPack(
    system_id="cruise",
    title="Cruise control with autonomous emergency braking",
    description="Automotive cruise controller with brake override and AEB",
    default_model="cruise",
    model_builders={"cruise": build_cruise_statechart},
    build_interface=build_cruise_interface,
    build_system=build_cruise_system,
    case_builders={
        "engage": lambda samples, seed: engage_test_case(samples),
        "driver-override": lambda samples, seed: driver_override_test_case(samples),
        "aeb-stop": lambda samples, seed: aeb_stop_test_case(samples),
    },
    requirements=cruise_requirements,
    scenario_space=cruise_scenario_space,
    fault_suite=_fault_suite,
)
