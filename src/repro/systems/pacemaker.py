"""A rate-adaptive cardiac pacemaker as a registered system pack.

The second case study: a single-chamber, rate-adaptive pacemaker in the
style of the Boston Scientific PACEMAKER formal-methods challenge.  The chart
inhibits pacing on a sensed intrinsic beat (with a refractory period),
paces at the lower rate limit when no beat arrives, enters a fixed-rate test
mode while a magnet is applied, and shortens the pacing interval while the
accelerometer reports high patient activity.

Everything lowers through the existing pipeline: the chart compiles via
``repro.codegen``, the platform is assembled declaratively from device specs
(:mod:`repro.systems.platform`), and the timing requirements are judged by
the same R-/M-testing machinery as the GPCA pump.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from ..codegen.execution_model import ExecutionTimeModel
from ..core.four_variables import FourVariableInterface
from ..core.requirements import EventSpec, RequirementSet, TimingRequirement
from ..core.test_generation import RTestCase
from ..model.builder import StatechartBuilder
from ..model.statechart import Statechart
from ..model.temporal import at
from ..platform.kernel.random import uniform
from ..platform.kernel.time import ms, us
from ..scenarios import (
    ROLE_TEARDOWN,
    CycleSpacing,
    ScenarioProgram,
    ScenarioSpace,
    StimulusStep,
)
from .base import SystemPack
from .platform import (
    ActuatorSpec,
    ButtonSpec,
    LevelAction,
    LevelSpec,
    PressAction,
    build_pack_bundle,
    build_pack_scheme_system,
)

#: Lower-rate-limit pacing interval: pace after 1000 ms without a beat.
LRL_INTERVAL_TICKS = 1000
#: Width of the delivered pacing pulse.
PACE_PULSE_TICKS = 40
#: Refractory period after a sensed intrinsic beat.
REFRACTORY_TICKS = 300
#: Shortened pacing interval while the accelerometer reports activity.
ADAPTIVE_INTERVAL_TICKS = 600

TRANS_LRL_PACE = "t_lrl_pace"
TRANS_SENSE_INHIBIT = "t_sense_inhibit"
TRANS_MAGNET_TEST = "t_magnet_test"
TRANS_RATE_UP = "t_rate_up"


def build_pacemaker_statechart() -> Statechart:
    """The rate-adaptive pacemaker statechart."""
    return (
        StatechartBuilder("pacemaker_rate_adaptive")
        .input_events(
            "i-Sense", "i-Magnet", "i-MagnetOff", "i-ActivityHigh", "i-ActivityRest"
        )
        .output_variable("o-PaceState", initial=0)
        .output_variable("o-MarkerState", initial=0)
        .output_variable("o-RateState", initial=0)
        .state("Inhibited", initial=True, description="waiting for an intrinsic beat")
        .state("Paced", description="pacing pulse being delivered")
        .state("Refractory", description="sensing blanked after an intrinsic beat")
        .state("MagnetTest", description="fixed-rate pacing while a magnet is applied")
        .state("RateAdaptive", description="shortened pacing interval under activity")
        .transition(
            TRANS_LRL_PACE,
            "Inhibited",
            "Paced",
            temporal=at(LRL_INTERVAL_TICKS),
            assign={"o-PaceState": 1},
            description="no intrinsic beat within the LRL interval: pace",
        )
        .transition(
            "t_pace_done",
            "Paced",
            "Inhibited",
            temporal=at(PACE_PULSE_TICKS),
            assign={"o-PaceState": 0},
            description="pacing pulse complete",
        )
        .transition(
            TRANS_SENSE_INHIBIT,
            "Inhibited",
            "Refractory",
            event="i-Sense",
            assign={"o-MarkerState": 1},
            description="intrinsic beat sensed: inhibit pacing, mark the beat",
        )
        .transition(
            "t_refractory_done",
            "Refractory",
            "Inhibited",
            temporal=at(REFRACTORY_TICKS),
            assign={"o-MarkerState": 0},
            description="refractory period over",
        )
        .transition(
            TRANS_MAGNET_TEST,
            "Inhibited",
            "MagnetTest",
            event="i-Magnet",
            assign={"o-PaceState": 1},
            description="magnet applied: fixed-rate test pacing",
        )
        .transition(
            "t_magnet_done",
            "MagnetTest",
            "Inhibited",
            event="i-MagnetOff",
            assign={"o-PaceState": 0},
            description="magnet removed",
        )
        .transition(
            TRANS_RATE_UP,
            "Inhibited",
            "RateAdaptive",
            event="i-ActivityHigh",
            assign={"o-RateState": 1},
            description="accelerometer reports activity: raise the rate",
        )
        .transition(
            "t_adaptive_pace",
            "RateAdaptive",
            "Paced",
            temporal=at(ADAPTIVE_INTERVAL_TICKS),
            assign={"o-PaceState": 1, "o-RateState": 0},
            description="pace at the shortened adaptive interval",
        )
        .transition(
            "t_rate_rest",
            "RateAdaptive",
            "Inhibited",
            event="i-ActivityRest",
            assign={"o-RateState": 0},
            description="activity over: back to the lower rate limit",
        )
        .transition(
            "t_sense_adaptive",
            "RateAdaptive",
            "Refractory",
            event="i-Sense",
            assign={"o-MarkerState": 1, "o-RateState": 0},
            description="intrinsic beat while rate-adaptive: inhibit and mark",
        )
        .build()
    )


def build_pacemaker_interface() -> FourVariableInterface:
    """The four-variable interface of the pacemaker implementation."""
    interface = FourVariableInterface()
    interface.monitored("m-Sense", description="intrinsic cardiac beat on the electrode")
    interface.monitored("m-Magnet", description="magnet applied over the device")
    interface.monitored("m-ActivityHigh", description="accelerometer activity level")
    interface.input("i-Sense", description="sensed beat read by the generated code")
    interface.input("i-Magnet", description="magnet application read by the generated code")
    interface.input("i-MagnetOff", description="magnet removal read by the generated code")
    interface.input("i-ActivityHigh", description="activity onset read by the generated code")
    interface.input("i-ActivityRest", description="activity end read by the generated code")
    interface.output("o-PaceState", var_type="int", initial=0, description="commanded pacing drive")
    interface.output("o-MarkerState", var_type="int", initial=0, description="commanded sense marker")
    interface.output("o-RateState", var_type="int", initial=0, description="commanded rate indicator")
    interface.controlled("c-PaceLine", var_type="int", initial=0, description="physical pacing line drive")
    interface.controlled("c-SenseMarker", var_type="int", initial=0, description="physical marker channel")
    interface.controlled("c-RateLed", var_type="int", initial=0, description="physical rate indicator")
    interface.link_input("m-Sense", "i-Sense")
    interface.link_input("m-Magnet", "i-Magnet")
    interface.link_input("m-ActivityHigh", "i-ActivityHigh")
    interface.link_output("o-PaceState", "c-PaceLine")
    interface.link_output("o-MarkerState", "c-SenseMarker")
    interface.link_output("o-RateState", "c-RateLed")
    interface.validate()
    return interface


#: Device specs of the simulated pacemaker platform.  The sense electrode is
#: edge-triggered (a beat is an event); the magnet and accelerometer are
#: sampled level sensors whose falling edges feed the *Off/Rest i-variables,
#: mirroring the GPCA door sensor's open/close pairing.
_BUTTONS = (
    ButtonSpec("sense_electrode", "m-Sense", "i-Sense", sampling_period_us=ms(2)),
)
_LEVELS = (
    LevelSpec(
        "magnet_switch",
        "m-Magnet",
        "i-Magnet",
        falling_input="i-MagnetOff",
        sampling_period_us=ms(10),
    ),
    LevelSpec(
        "activity_sensor",
        "m-ActivityHigh",
        "i-ActivityHigh",
        falling_input="i-ActivityRest",
        sampling_period_us=ms(20),
    ),
)
_ACTUATORS = (
    ActuatorSpec(
        "pace_driver",
        "o-PaceState",
        "c-PaceLine",
        actuation_latency=uniform(ms(1), us(300)),
    ),
    ActuatorSpec(
        "marker_led",
        "o-MarkerState",
        "c-SenseMarker",
        actuation_latency=uniform(us(500), us(100)),
    ),
    ActuatorSpec(
        "rate_led",
        "o-RateState",
        "c-RateLed",
        actuation_latency=uniform(us(500), us(100)),
    ),
)
_STIMULI = {
    "m-Sense": PressAction("sense_electrode"),
    "m-Magnet": LevelAction("magnet_switch", True),
    "m-MagnetOff": LevelAction("magnet_switch", False),
    "m-ActivityHigh": LevelAction("activity_sensor", True),
    "m-ActivityRest": LevelAction("activity_sensor", False),
}


def pacemaker_execution_model() -> ExecutionTimeModel:
    """Execution costs of a low-power implant micro-controller."""
    model = ExecutionTimeModel(
        input_scan=uniform(ms(1), us(300)),
        idle_scan=uniform(us(300), us(100)),
        transition_base=uniform(ms(4), ms(1)),
        per_action=uniform(ms(1), us(400)),
        output_write=uniform(us(800), us(250)),
    )
    model.transition_overrides[TRANS_SENSE_INHIBIT] = uniform(ms(7), ms(2))
    model.transition_overrides[TRANS_MAGNET_TEST] = uniform(ms(9), ms(2))
    return model


def build_pacemaker_bundle(
    *, seed: int = 0, input_variables: Any = None, engine: Any = None
):
    """One fresh simulated pacemaker platform."""
    return build_pack_bundle(
        buttons=_BUTTONS,
        levels=_LEVELS,
        actuators=_ACTUATORS,
        stimuli=_STIMULI,
        interface_builder=build_pacemaker_interface,
        seed=seed,
        input_variables=input_variables,
        engine=engine,
    )


def build_pacemaker_system(
    scheme: int,
    *,
    model: str = "pacemaker",
    seed: int = 0,
    period_us: Optional[int] = None,
    interference_scale: Optional[float] = None,
    artifacts: Any = None,
    probes: Any = None,
    engine: Any = None,
    code_factory: Any = None,
):
    """Assemble one implemented pacemaker system (schemes 1-3)."""
    if model != "pacemaker":
        raise ValueError(f"unknown pacemaker model {model!r} (known: pacemaker)")
    return build_pack_scheme_system(
        scheme,
        bundle_builder=build_pacemaker_bundle,
        execution_model_factory=pacemaker_execution_model,
        chart_builder=build_pacemaker_statechart,
        seed=seed,
        period_us=period_us,
        interference_scale=interference_scale,
        artifacts=artifacts,
        probes=probes,
        engine=engine,
        code_factory=code_factory,
    )


# ----------------------------------------------------------------------
# Timing requirements
# ----------------------------------------------------------------------
def pace1_sense_marker(deadline_ms: int = 120) -> TimingRequirement:
    """PACE1: a sensed beat shall be marked within ``deadline_ms``."""
    return TimingRequirement(
        requirement_id="PACE1",
        description=(
            "A sensed intrinsic beat shall be annotated on the marker channel "
            "within 120 ms."
        ),
        stimulus=EventSpec.becomes("m-Sense", True, "intrinsic beat sensed"),
        response=EventSpec.becomes_positive("c-SenseMarker", "marker channel annotated"),
        deadline_us=ms(deadline_ms),
        # A beat arriving during the refractory period (300 ms) is ignored by
        # the model, so measured beats must be spaced past it with margin —
        # but not so far that the LRL timer (1000 ms) paces first.
        min_stimulus_separation_us=ms(700),
        model_trigger_event="i-Sense",
        model_response_variable="o-MarkerState",
        model_response_value=1,
        model_trigger_state="Inhibited",
    )


def pace2_magnet_pace(deadline_ms: int = 200) -> TimingRequirement:
    """PACE2: magnet application shall start test pacing within ``deadline_ms``."""
    return TimingRequirement(
        requirement_id="PACE2",
        description=(
            "When a magnet is applied over the device, fixed-rate test pacing "
            "shall start within 200 ms."
        ),
        stimulus=EventSpec.becomes("m-Magnet", True, "magnet applied"),
        response=EventSpec.becomes_positive("c-PaceLine", "pacing line driven"),
        deadline_us=ms(deadline_ms),
        min_stimulus_separation_us=ms(1000),
        model_trigger_event="i-Magnet",
        model_response_variable="o-PaceState",
        model_response_value=1,
        model_trigger_state="Inhibited",
    )


def pace3_rate_adapt(deadline_ms: int = 150) -> TimingRequirement:
    """PACE3: activity onset shall raise the pacing rate within ``deadline_ms``."""
    return TimingRequirement(
        requirement_id="PACE3",
        description=(
            "When the accelerometer reports high activity, the rate-adaptive "
            "mode shall engage within 150 ms."
        ),
        stimulus=EventSpec.becomes("m-ActivityHigh", True, "activity onset"),
        response=EventSpec.becomes_positive("c-RateLed", "rate indicator driven"),
        deadline_us=ms(deadline_ms),
        min_stimulus_separation_us=ms(900),
        model_trigger_event="i-ActivityHigh",
        model_response_variable="o-RateState",
        model_response_value=1,
        model_trigger_state="Inhibited",
    )


def pacemaker_requirements() -> RequirementSet:
    """The pacemaker timing-requirement catalogue."""
    return RequirementSet(
        "Pacemaker pacing-deadline requirements (timing)",
        [pace1_sense_marker(), pace2_magnet_pace(), pace3_rate_adapt()],
    )


# ----------------------------------------------------------------------
# Named scenarios
# ----------------------------------------------------------------------
def sense_inhibit_program(samples: int = 6) -> ScenarioProgram:
    """PACE1 scenario: repeated intrinsic beats, marker latency measured.

    Spacing stays inside (refractory + margin, LRL interval): every beat
    arrives with the model back in ``Inhibited`` but before the LRL timer
    would have paced.
    """
    return ScenarioProgram(
        name="sense-inhibit",
        requirement=pace1_sense_marker(),
        spacing=CycleSpacing(ms(800), ms(950)),
        samples=samples,
        start_offset_us=ms(150),
        description="intrinsic beats inhibit pacing; marker annotation is timed",
    )


def magnet_pace_program(samples: int = 5) -> ScenarioProgram:
    """PACE2 scenario: magnet applied, removed 500 ms later, per cycle."""
    return ScenarioProgram(
        name="magnet-pace",
        requirement=pace2_magnet_pace(),
        spacing=CycleSpacing(ms(1400)),
        samples=samples,
        start_offset_us=ms(150),
        teardown=(StimulusStep("m-MagnetOff", ms(500), ROLE_TEARDOWN),),
        description="magnet test mode entry; pacing-line drive is timed",
    )


def rate_adapt_program(samples: int = 5) -> ScenarioProgram:
    """PACE3 scenario: activity burst ends before the adaptive interval pacing."""
    return ScenarioProgram(
        name="rate-adapt",
        requirement=pace3_rate_adapt(),
        spacing=CycleSpacing(ms(1300)),
        samples=samples,
        start_offset_us=ms(150),
        teardown=(StimulusStep("m-ActivityRest", ms(400), ROLE_TEARDOWN),),
        description="rate-adaptive mode engagement; rate indicator is timed",
    )


def sense_inhibit_test_case(samples: int = 6, *, seed: int = 0) -> RTestCase:
    return sense_inhibit_program(samples).compile(seed)


def magnet_pace_test_case(samples: int = 5) -> RTestCase:
    return magnet_pace_program(samples).compile()


def rate_adapt_test_case(samples: int = 5) -> RTestCase:
    return rate_adapt_program(samples).compile()


def pacemaker_scenario_space() -> ScenarioSpace:
    """The bounded universe of generated pacemaker scenarios.

    Spacings reach past the 1000 ms LRL interval so generated programs also
    exercise the pacing path (``t_lrl_pace`` / ``t_pace_done`` /
    ``t_adaptive_pace``), and the teardown lag range dips under the 600 ms
    adaptive interval so ``t_rate_rest`` is reachable too.
    """
    return ScenarioSpace(
        requirements=tuple(pacemaker_requirements()),
        setup_variables=(
            "m-Sense",
            "m-Magnet",
            "m-MagnetOff",
            "m-ActivityHigh",
            "m-ActivityRest",
        ),
        teardown_variables=("m-MagnetOff", "m-ActivityRest"),
        samples=(2, 4),
        cycle_spacing_us=(ms(700), ms(2600)),
        measured_offset_us=(ms(300), ms(1200)),
        setup_lead_us=(ms(50), ms(400)),
        teardown_lag_us=(ms(200), ms(1000)),
    )


def _fault_suite() -> Tuple[Any, ...]:
    from ..faults.models import (
        ClockDriftFault,
        ExecutionInflationFault,
        FaultPlan,
        QueueFault,
        SensorGlitchFault,
        SensorStuckFault,
    )
    from ..platform.kernel.random import JitterModel

    return (
        FaultPlan((ClockDriftFault(drift=1.5),), name="clock-drift"),
        FaultPlan(
            (
                ExecutionInflationFault(
                    factor=3.0,
                    overrun=JitterModel(ms(25), ms(6), ms(6)),
                    overrun_probability=0.25,
                ),
            ),
            name="exec-inflation",
        ),
        FaultPlan((QueueFault(queue="i_events", drop_probability=0.7),), name="queue-loss"),
        FaultPlan((SensorStuckFault(device="sense_electrode"),), name="sensor-stuck"),
        FaultPlan(
            (SensorGlitchFault(device="sense_electrode", drop_probability=0.9),),
            name="sensor-glitch",
        ),
    )


PACEMAKER_PACK = SystemPack(
    system_id="pacemaker",
    title="Rate-adaptive cardiac pacemaker",
    description="Single-chamber rate-adaptive pacemaker with magnet test mode",
    default_model="pacemaker",
    model_builders={"pacemaker": build_pacemaker_statechart},
    build_interface=build_pacemaker_interface,
    build_system=build_pacemaker_system,
    case_builders={
        "sense-inhibit": lambda samples, seed: sense_inhibit_test_case(samples, seed=seed),
        "magnet-pace": lambda samples, seed: magnet_pace_test_case(samples),
        "rate-adapt": lambda samples, seed: rate_adapt_test_case(samples),
    },
    requirements=pacemaker_requirements,
    scenario_space=pacemaker_scenario_space,
    fault_suite=_fault_suite,
)
