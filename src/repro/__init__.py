"""repro — layered timing testing for model-based implementations.

A reproduction of *"A Layered Approach for Testing Timing in the Model-Based
Implementation"* (Kim, Hwang, Park, Son, Lee — DATE 2014).

The package is organised by layer, mirroring the paper's methodology:

* :mod:`repro.model` — timed statechart modelling, simulation and verification
  (the Simulink/Stateflow + Design Verifier substitute);
* :mod:`repro.codegen` — generation of CODE(M) from a statechart (the
  RealTime Workshop substitute), including traceability and an execution-time
  model;
* :mod:`repro.platform` — the simulated target platform: DES kernel,
  FreeRTOS-like scheduler, sensors/actuators and the physical environment;
* :mod:`repro.integration` — the three implementation schemes that integrate
  CODE(M) with the platform;
* :mod:`repro.core` — the paper's contribution: the four-variable interface,
  R-testing and M-testing;
* :mod:`repro.gpca` — the infusion-pump case study;
* :mod:`repro.systems` — the system-pack registry: the GPCA pump, a
  rate-adaptive cardiac pacemaker and an automotive cruise/AEB controller as
  pluggable case studies (``repro systems`` on the command line);
* :mod:`repro.baselines` — black-box online testing and functional-conformance
  baselines from the related work;
* :mod:`repro.analysis` — statistics, Table I rendering and figure data;
* :mod:`repro.campaign` — the parallel test-campaign engine: declarative
  cartesian grids of schemes × scenarios × configurations, sharded across
  worker processes with content-keyed artifact caching and bit-reproducible
  aggregation (``repro campaign`` on the command line);
* :mod:`repro.scenarios` — the scenario DSL and the seeded, coverage-guided
  scenario generator (``repro explore`` on the command line);
* :mod:`repro.faults` — platform fault injection and model mutation analysis
  (``repro faults`` on the command line);
* :mod:`repro.store` — the persistent, content-addressed result store:
  incremental (resumable) campaigns, snapshot regression diffs and the
  ``repro serve`` JSON query API.

``docs/architecture.md`` draws the layer diagram and collects the design
notes behind the campaign engine, the trace index and the scenario
subsystem.

Quickstart::

    from repro.gpca import scheme_factory, bolus_request_test_case
    from repro.gpca import build_pump_interface, req1_bolus_start
    from repro.core import RTestRunner, MTestAnalyzer

    test_case = bolus_request_test_case(samples=10)
    report = RTestRunner(scheme_factory(1)).run(test_case)
    print(report.summary())
    if not report.passed:
        analyzer = MTestAnalyzer(build_pump_interface(), req1_bolus_start())
        print(analyzer.analyze_violations(report).summary())

Campaign quickstart (the Table I grid, sharded across four workers)::

    from repro.campaign import CampaignRunner, table_one_spec

    result = CampaignRunner(table_one_spec(), workers=4).run()
    print(result.table_one().render())
"""

from . import (
    analysis,
    baselines,
    campaign,
    codegen,
    core,
    gpca,
    integration,
    model,
    platform,
    store,
    systems,
)

__version__ = "1.5.0"

__all__ = [
    "__version__",
    "analysis",
    "baselines",
    "campaign",
    "codegen",
    "core",
    "gpca",
    "integration",
    "model",
    "platform",
    "store",
    "systems",
]
