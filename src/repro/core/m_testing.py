"""M-testing: measuring the delay segments behind a timing violation.

When R-testing reports that a requirement is violated, M-testing re-examines
the full trace — this time using the i- and o-events at the CODE(M) boundary
and the transition start/end probes — and decomposes every sample's
end-to-end latency into Input-Delay, CODE(M)-Delay, Output-Delay and
per-transition delays.  The decomposition tells the engineer *where* the time
went (the paper's stated purpose: "useful information in debugging the timing
requirement violation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from .delays import DelaySegments, SegmentStatistics, TransitionDelay, summarize_segments
from .four_variables import EventKind, FourVariableInterface, Trace
from .oracle import ResponseMatcher
from .r_testing import RSample, RTestReport
from .requirements import EventSpec, TimingRequirement


class MTestingError(RuntimeError):
    """Raised when the trace lacks the information M-testing needs."""


@dataclass
class MTestReport:
    """Delay segmentation of every sample of one R-test execution."""

    sut_name: str
    requirement: TimingRequirement
    segments: List[DelaySegments] = field(default_factory=list)
    analyzed_sample_indices: List[int] = field(default_factory=list)

    @property
    def complete_segments(self) -> List[DelaySegments]:
        return [segment for segment in self.segments if segment.complete]

    def statistics(self) -> List[SegmentStatistics]:
        return summarize_segments(self.segments)

    def dominant_segment(self) -> Optional[str]:
        """The segment that contributes the most latency on average.

        This is the headline diagnostic M-testing adds over R-testing: for the
        single-threaded scheme it points at the input/output boundary
        (sampling and end-of-cycle actuation), for the interfered scheme it
        points at the CODE(M) segment (preemption).
        """
        totals: Dict[str, int] = {"input": 0, "code": 0, "output": 0}
        counted = 0
        for segment in self.segments:
            if not segment.complete:
                continue
            totals["input"] += segment.input_delay_us
            totals["code"] += segment.code_delay_us
            totals["output"] += segment.output_delay_us
            counted += 1
        if counted == 0:
            return None
        return max(totals, key=lambda key: totals[key])

    def mean_transition_delay_us(self, transition: str) -> Optional[float]:
        """Mean wall-clock delay of one named model transition across samples."""
        values = [
            delay.duration_us
            for segment in self.segments
            for delay in segment.transition_delays
            if delay.transition == transition
        ]
        if not values:
            return None
        return sum(values) / len(values)

    def transition_names(self) -> List[str]:
        names: List[str] = []
        for segment in self.segments:
            for delay in segment.transition_delays:
                if delay.transition not in names:
                    names.append(delay.transition)
        return names

    def summary(self) -> str:
        dominant = self.dominant_segment() or "n/a"
        return (
            f"M-testing of {self.requirement.requirement_id} on {self.sut_name}: "
            f"{len(self.segments)} samples segmented, dominant segment: {dominant}"
        )


class MTestAnalyzer:
    """Extracts delay segments from a fully instrumented trace."""

    def __init__(
        self,
        interface: FourVariableInterface,
        requirement: TimingRequirement,
        *,
        response_output_spec: Optional[EventSpec] = None,
    ) -> None:
        self.interface = interface
        self.requirement = requirement
        self._input_variable = interface.input_for_monitored(requirement.stimulus.variable)
        self._output_variable = interface.output_for_controlled(requirement.response.variable)
        if self._input_variable is None:
            raise MTestingError(
                f"no Input-Device mapping for monitored variable "
                f"{requirement.stimulus.variable!r}; declare it with link_input()"
            )
        if self._output_variable is None:
            raise MTestingError(
                f"no Output-Device mapping for controlled variable "
                f"{requirement.response.variable!r}; declare it with link_output()"
            )
        #: Which o-variable write counts as the response at the CODE(M) boundary.
        if response_output_spec is not None:
            self._output_spec = response_output_spec
        elif requirement.model_response_variable is not None:
            self._output_spec = EventSpec.becomes(
                requirement.model_response_variable, requirement.model_response_value
            )
        else:
            self._output_spec = EventSpec.any_change(self._output_variable)

    # ------------------------------------------------------------------
    def analyze(
        self,
        trace: Trace,
        *,
        only_samples: Optional[Sequence[RSample]] = None,
        sut_name: str = "sut",
    ) -> MTestReport:
        """Segment the latency of every stimulus in ``trace``.

        ``only_samples`` restricts the analysis to specific R-samples — the
        paper runs M-testing "for those test cases that violate the timing
        requirement in R-testing" — while the default analyses every stimulus,
        which the benchmark harness uses to tabulate all ten samples.
        """
        matcher = ResponseMatcher(self.requirement.stimulus, self.requirement.response)
        pairs = matcher.match(trace, timeout_us=self.requirement.effective_timeout_us)
        wanted_indices = (
            {sample.index for sample in only_samples} if only_samples is not None else None
        )
        report = MTestReport(sut_name=sut_name, requirement=self.requirement)
        for pair in pairs:
            if wanted_indices is not None and pair.index not in wanted_indices:
                continue
            report.analyzed_sample_indices.append(pair.index)
            report.segments.append(self._segment_pair(trace, pair.index, pair))
        return report

    def analyze_violations(self, r_report: RTestReport, *, sut_name: Optional[str] = None) -> MTestReport:
        """M-test exactly the samples that violated the requirement in R-testing."""
        if r_report.trace is None:
            raise MTestingError("the R-test report carries no trace to analyze")
        return self.analyze(
            r_report.trace,
            only_samples=r_report.violating_samples,
            sut_name=sut_name or r_report.sut_name,
        )

    # ------------------------------------------------------------------
    def _segment_pair(self, trace: Trace, index: int, pair) -> DelaySegments:
        m_time = pair.stimulus.timestamp_us
        c_time = pair.response.timestamp_us if pair.response is not None else None
        search_end = c_time if c_time is not None else m_time + self.requirement.effective_timeout_us

        i_event = ResponseMatcher.first_event_after(
            trace, EventKind.I, self._input_variable, m_time, before_us=search_end
        )
        i_time = i_event.timestamp_us if i_event is not None else None

        o_event = None
        if i_time is not None:
            o_event = ResponseMatcher.first_event_after(
                trace,
                EventKind.O,
                self._output_spec.variable,
                i_time,
                before_us=search_end,
                spec=self._output_spec,
            )
        o_time = o_event.timestamp_us if o_event is not None else None

        transitions = self._transition_delays(trace, i_time, o_time)
        return DelaySegments(
            sample_index=index,
            m_time_us=m_time,
            i_time_us=i_time,
            o_time_us=o_time,
            c_time_us=c_time,
            transition_delays=transitions,
        )

    @staticmethod
    def _transition_delays(
        trace: Trace, start_us: Optional[int], end_us: Optional[int]
    ) -> List[TransitionDelay]:
        """Pair transition start/end probes falling between the i- and o-events."""
        if start_us is None:
            return []
        window_end = end_us
        delays: List[TransitionDelay] = []
        open_starts: Dict[str, int] = {}
        probes = trace.select_kinds(
            (EventKind.TRANSITION_START, EventKind.TRANSITION_END),
            after_us=start_us,
            before_us=window_end,
        )
        for event in probes:
            if event.kind is EventKind.TRANSITION_START:
                open_starts[event.variable] = event.timestamp_us
            elif event.kind is EventKind.TRANSITION_END:
                begun = open_starts.pop(event.variable, None)
                if begun is not None:
                    delays.append(TransitionDelay(event.variable, begun, event.timestamp_us))
        return delays
