"""Serialization of traces and test reports.

Measurement campaigns on real hardware produce traces on the target and
analyse them on a workstation; this module provides the interchange format
for that workflow (and for archiving benchmark runs):

* traces — JSON round-trip (every event with kind, variable, value, timestamp
  and metadata);
* R-test reports — JSON export of verdicts plus CSV export of the sample
  table;
* M-test reports — JSON export of the delay segments.

Only built-in types are emitted, so the files are stable across library
versions and readable by any tooling.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Any, Dict, List, Optional

from .delays import DelaySegments, TransitionDelay
from .four_variables import Event, EventKind, Trace
from .m_testing import MTestReport
from .r_testing import RSample, RTestReport, SampleVerdict
from .requirements import EventSpec, MatchMode, TimingRequirement
from .test_generation import RTestCase

FORMAT_VERSION = 1


# ----------------------------------------------------------------------
# Requirements
# ----------------------------------------------------------------------
def event_spec_to_dict(spec: EventSpec) -> Dict[str, Any]:
    """Convert an event specification to a JSON-serialisable dictionary."""
    return {
        "variable": spec.variable,
        "mode": spec.mode.value,
        "value": spec.value,
        "description": spec.description,
    }


def event_spec_from_dict(payload: Dict[str, Any]) -> EventSpec:
    """Rebuild an event specification from :func:`event_spec_to_dict` output."""
    return EventSpec(
        variable=payload["variable"],
        mode=MatchMode(payload.get("mode", MatchMode.BECOMES.value)),
        value=payload.get("value", True),
        description=payload.get("description", ""),
    )


def requirement_to_dict(requirement: TimingRequirement) -> Dict[str, Any]:
    """Convert a timing requirement to a dictionary that round-trips fully.

    Unlike the summary block embedded in R-test report exports, this encoding
    carries every field — stimulus/response specifications, separation bound
    and the optional model-level counterpart — so scenario programs can embed
    requirements in campaign artefacts and reconstruct them exactly.
    """
    return {
        "id": requirement.requirement_id,
        "stimulus": event_spec_to_dict(requirement.stimulus),
        "response": event_spec_to_dict(requirement.response),
        "deadline_us": requirement.deadline_us,
        "description": requirement.description,
        "timeout_us": requirement.timeout_us,
        "min_stimulus_separation_us": requirement.min_stimulus_separation_us,
        "model_trigger_event": requirement.model_trigger_event,
        "model_response_variable": requirement.model_response_variable,
        "model_response_value": requirement.model_response_value,
        "model_trigger_state": requirement.model_trigger_state,
    }


def requirement_from_dict(payload: Dict[str, Any]) -> TimingRequirement:
    """Rebuild a timing requirement from :func:`requirement_to_dict` output."""
    return TimingRequirement(
        requirement_id=payload["id"],
        stimulus=event_spec_from_dict(payload["stimulus"]),
        response=event_spec_from_dict(payload["response"]),
        deadline_us=payload["deadline_us"],
        description=payload.get("description", ""),
        timeout_us=payload.get("timeout_us"),
        min_stimulus_separation_us=payload.get("min_stimulus_separation_us", 0),
        model_trigger_event=payload.get("model_trigger_event"),
        model_response_variable=payload.get("model_response_variable"),
        model_response_value=payload.get("model_response_value"),
        model_trigger_state=payload.get("model_trigger_state"),
    )


# ----------------------------------------------------------------------
# Traces
# ----------------------------------------------------------------------
def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    """Convert a trace to a JSON-serialisable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "events": [
            {
                "kind": event.kind.value,
                "variable": event.variable,
                "value": event.value,
                "timestamp_us": event.timestamp_us,
                "meta": dict(event.meta),
            }
            for event in trace
        ],
    }


def trace_from_dict(payload: Dict[str, Any]) -> Trace:
    """Rebuild a trace from :func:`trace_to_dict` output."""
    version = payload.get("format_version", FORMAT_VERSION)
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {version}")
    # Stream straight into the trace's batch-validating builder path rather
    # than materialising an intermediate event list first.
    events = (
        Event(
            kind=EventKind(item["kind"]),
            variable=item["variable"],
            value=item["value"],
            timestamp_us=item["timestamp_us"],
            meta=item.get("meta", {}),
        )
        for item in payload.get("events", [])
    )
    return Trace(events)


def trace_to_json(trace: Trace, *, indent: Optional[int] = None) -> str:
    """Serialise a trace to a JSON string."""
    return json.dumps(trace_to_dict(trace), indent=indent)


def trace_from_json(text: str) -> Trace:
    """Deserialise a trace from a JSON string."""
    return trace_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# R-test reports
# ----------------------------------------------------------------------
def r_report_to_dict(report: RTestReport, *, include_trace: bool = False) -> Dict[str, Any]:
    """Convert an R-test report (verdicts + metadata) to a dictionary."""
    payload: Dict[str, Any] = {
        "format_version": FORMAT_VERSION,
        "sut": report.sut_name,
        "test_case": report.test_case.name,
        "requirement": {
            "id": report.requirement.requirement_id,
            "description": report.requirement.description,
            "deadline_us": report.requirement.deadline_us,
            "timeout_us": report.requirement.effective_timeout_us,
        },
        "passed": report.passed,
        "violations": report.violation_count,
        "timeouts": report.timeout_count,
        "samples": [
            {
                "index": sample.index,
                "stimulus_time_us": sample.stimulus_time_us,
                "response_time_us": sample.response_time_us,
                "latency_us": sample.latency_us,
                "verdict": sample.verdict.value,
            }
            for sample in report.samples
        ],
    }
    if include_trace and report.trace is not None:
        payload["trace"] = trace_to_dict(report.trace)
    return payload


def r_report_samples_from_dict(payload: Dict[str, Any]) -> List[RSample]:
    """Rebuild the sample verdicts of an exported R-test report."""
    return [
        RSample(
            index=item["index"],
            stimulus_time_us=item["stimulus_time_us"],
            response_time_us=item.get("response_time_us"),
            latency_us=item.get("latency_us"),
            verdict=SampleVerdict(item["verdict"]),
        )
        for item in payload.get("samples", [])
    ]


def r_report_from_dict(payload: Dict[str, Any], test_case: RTestCase) -> RTestReport:
    """Rebuild an R-test report from :func:`r_report_to_dict` output.

    The test case is not part of the export (its schedule can be regenerated
    from the generation parameters), so the caller supplies it; the campaign
    engine rebuilds it deterministically from the run's spec.  The trace is
    restored when the export carried one (``include_trace=True``).
    """
    trace = None
    if "trace" in payload:
        trace = trace_from_dict(payload["trace"])
    return RTestReport(
        sut_name=payload["sut"],
        test_case=test_case,
        samples=r_report_samples_from_dict(payload),
        trace=trace,
    )


def r_report_to_csv(report: RTestReport) -> str:
    """Render the per-sample verdict table as CSV (one row per sample)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["sample", "stimulus_time_ms", "response_time_ms", "latency_ms", "verdict"]
    )
    for sample in report.samples:
        writer.writerow(
            [
                sample.index,
                f"{sample.stimulus_time_us / 1000:.3f}",
                "" if sample.response_time_us is None else f"{sample.response_time_us / 1000:.3f}",
                "" if sample.latency_us is None else f"{sample.latency_us / 1000:.3f}",
                sample.verdict.value,
            ]
        )
    return buffer.getvalue()


# ----------------------------------------------------------------------
# M-test reports
# ----------------------------------------------------------------------
def m_report_to_dict(report: MTestReport) -> Dict[str, Any]:
    """Convert an M-test report (delay segments) to a dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "sut": report.sut_name,
        "requirement": report.requirement.requirement_id,
        "dominant_segment": report.dominant_segment(),
        "segments": [
            {
                "sample_index": segment.sample_index,
                "m_time_us": segment.m_time_us,
                "i_time_us": segment.i_time_us,
                "o_time_us": segment.o_time_us,
                "c_time_us": segment.c_time_us,
                "input_delay_us": segment.input_delay_us,
                "code_delay_us": segment.code_delay_us,
                "output_delay_us": segment.output_delay_us,
                "end_to_end_us": segment.end_to_end_us,
                "transitions": [
                    {
                        "transition": delay.transition,
                        "start_us": delay.start_us,
                        "end_us": delay.end_us,
                    }
                    for delay in segment.transition_delays
                ],
            }
            for segment in report.segments
        ],
    }


def segments_from_dict(payload: Dict[str, Any]) -> List[DelaySegments]:
    """Rebuild the delay segments of an exported M-test report."""
    segments = []
    for item in payload.get("segments", []):
        segments.append(
            DelaySegments(
                sample_index=item["sample_index"],
                m_time_us=item.get("m_time_us"),
                i_time_us=item.get("i_time_us"),
                o_time_us=item.get("o_time_us"),
                c_time_us=item.get("c_time_us"),
                transition_delays=[
                    TransitionDelay(t["transition"], t["start_us"], t["end_us"])
                    for t in item.get("transitions", [])
                ],
            )
        )
    return segments


def m_report_from_dict(payload: Dict[str, Any], requirement: TimingRequirement) -> MTestReport:
    """Rebuild an M-test report from :func:`m_report_to_dict` output.

    Like :func:`r_report_from_dict`, the requirement object itself is supplied
    by the caller (the export only carries its identifier).
    """
    segments = segments_from_dict(payload)
    return MTestReport(
        sut_name=payload["sut"],
        requirement=requirement,
        segments=segments,
        analyzed_sample_indices=[segment.sample_index for segment in segments],
    )


def m_report_to_json(report: MTestReport, *, indent: Optional[int] = None) -> str:
    return json.dumps(m_report_to_dict(report), indent=indent)


def r_report_to_json(report: RTestReport, *, include_trace: bool = False, indent: Optional[int] = None) -> str:
    return json.dumps(r_report_to_dict(report, include_trace=include_trace), indent=indent)
