"""R-test case generation from timing requirements.

A test case is a schedule of m-event stimuli to inject into the implemented
system.  The paper's example for REQ1 is::

    {(m-BolusReq, 10 ms), (m-BolusReq, 300 ms), (m-BolusReq, 500 ms), ...}

Generators produce such schedules from a requirement and an inter-arrival
policy (uniform spacing, seeded random spacing, or minimum-separation boundary
spacing).  The paper leaves systematic generation as future work; the
strategies here cover what the case study needs plus the obvious boundary
cases, and the coverage module reports how much of the model each suite
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..platform.kernel.random import RandomSource
from ..platform.kernel.time import ms
from .requirements import TimingRequirement


@dataclass(frozen=True)
class Stimulus:
    """One scheduled m-event injection."""

    at_us: int
    variable: str

    def __post_init__(self) -> None:
        if self.at_us < 0:
            raise ValueError("stimulus time must be non-negative")


@dataclass(frozen=True)
class RTestCase:
    """A named stimulus schedule derived from one timing requirement."""

    name: str
    requirement: TimingRequirement
    stimuli: tuple
    description: str = ""

    def __post_init__(self) -> None:
        ordered = list(self.stimuli)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.at_us < earlier.at_us:
                raise ValueError("stimuli must be scheduled in non-decreasing time order")

    @property
    def sample_count(self) -> int:
        return len(self.stimuli)

    @property
    def last_stimulus_us(self) -> int:
        return self.stimuli[-1].at_us if self.stimuli else 0

    @property
    def run_horizon_us(self) -> int:
        """How long the SUT must run to observe the final response or time-out."""
        return self.last_stimulus_us + self.requirement.effective_timeout_us

    def stimulus_times(self) -> List[int]:
        return [stimulus.at_us for stimulus in self.stimuli]


@dataclass(frozen=True)
class TestGenerationConfig:
    """Parameters shared by the generation strategies.

    ``max_separation_us`` defaults to three times the minimum separation when
    not given, so configs that only state a minimum remain valid.
    """

    # Tell pytest this is library code, not a collectable test class.
    __test__ = False

    sample_count: int = 10
    start_offset_us: int = ms(10)
    min_separation_us: int = ms(200)
    max_separation_us: Optional[int] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.sample_count <= 0:
            raise ValueError("sample count must be positive")
        if self.min_separation_us <= 0:
            raise ValueError("minimum separation must be positive")
        if self.max_separation_us is None:
            object.__setattr__(self, "max_separation_us", self.min_separation_us * 3)
        if self.max_separation_us < self.min_separation_us:
            raise ValueError("maximum separation cannot be below the minimum")


class RTestGenerator:
    """Generates :class:`RTestCase` schedules for a requirement."""

    def __init__(self, requirement: TimingRequirement, config: Optional[TestGenerationConfig] = None) -> None:
        self.requirement = requirement
        self.config = config or TestGenerationConfig()
        if self.config.min_separation_us < requirement.min_stimulus_separation_us:
            raise ValueError(
                "generation config separation is below the requirement's minimum "
                f"({self.config.min_separation_us} < {requirement.min_stimulus_separation_us})"
            )

    # ------------------------------------------------------------------
    def uniform(self, name: Optional[str] = None) -> RTestCase:
        """Evenly spaced stimuli at the configured minimum separation."""
        times = [
            self.config.start_offset_us + index * self.config.min_separation_us
            for index in range(self.config.sample_count)
        ]
        return self._build(name or f"{self.requirement.requirement_id}-uniform", times)

    def randomized(self, name: Optional[str] = None, stream: str = "rtest") -> RTestCase:
        """Seeded random inter-arrival times in ``[min, max]`` separation."""
        rng = RandomSource(self.config.seed).stream(stream)
        times: List[int] = []
        current = self.config.start_offset_us
        for index in range(self.config.sample_count):
            if index > 0:
                current += rng.randint(self.config.min_separation_us, self.config.max_separation_us)
            times.append(current)
        return self._build(name or f"{self.requirement.requirement_id}-random", times)

    def boundary(self, name: Optional[str] = None) -> RTestCase:
        """Stimuli packed at the tightest admissible separation.

        This exercises back-to-back requests, the case most likely to expose
        queue build-up in multi-threaded schemes.
        """
        separation = max(
            self.requirement.min_stimulus_separation_us, self.config.min_separation_us
        )
        times = [
            self.config.start_offset_us + index * separation
            for index in range(self.config.sample_count)
        ]
        return self._build(name or f"{self.requirement.requirement_id}-boundary", times)

    def from_times(self, times_us: Sequence[int], name: Optional[str] = None) -> RTestCase:
        """A test case from explicit stimulus instants (e.g. the paper's example)."""
        return self._build(name or f"{self.requirement.requirement_id}-explicit", list(times_us))

    # ------------------------------------------------------------------
    def _build(self, name: str, times_us: Sequence[int]) -> RTestCase:
        stimuli = tuple(
            Stimulus(at_us=time_us, variable=self.requirement.stimulus.variable)
            for time_us in sorted(times_us)
        )
        return RTestCase(
            name=name,
            requirement=self.requirement,
            stimuli=stimuli,
            description=(
                f"{len(stimuli)} stimuli on {self.requirement.stimulus.variable} "
                f"for {self.requirement.requirement_id}"
            ),
        )


def paper_example_test_case(requirement: TimingRequirement) -> RTestCase:
    """The exact example sequence from Section III of the paper.

    ``{(m-BolusReq, 10 ms), (m-BolusReq, 300 ms), (m-BolusReq, 500 ms)}``
    """
    config = TestGenerationConfig(
        sample_count=3,
        start_offset_us=ms(10),
        min_separation_us=max(ms(200), requirement.min_stimulus_separation_us),
    )
    generator = RTestGenerator(requirement, config)
    return generator.from_times(
        [ms(10), ms(300), ms(500)], name=f"{requirement.requirement_id}-paper-example"
    )
