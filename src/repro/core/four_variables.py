"""Parnas' four-variables model: variables, events, traces and recorders.

The paper uses the four-variables model to define *where* the implemented
system is observed:

* **monitored** (``m``) variables — physical quantities observed by the
  hardware platform (e.g. the electrical state of the bolus-request button);
* **input** (``i``) variables — values read by the auto-generated code
  CODE(M) (e.g. the boolean ``i-BolusReq`` the code generator emitted);
* **output** (``o``) variables — values written by CODE(M)
  (e.g. ``o-MotorState``);
* **controlled** (``c``) variables — physical quantities enforced by the
  hardware platform (e.g. the pump-motor speed).

Every observation of a value change at one of these boundaries is an
:class:`Event` with an exact timestamp; a test run produces a :class:`Trace`.
R-testing consumes only M and C events; M-testing additionally consumes I, O
and transition start/end events.

Trace storage and index design
------------------------------

A trace is append-only and time-ordered.  Recording happens inside the
simulation hot loop (thousands of events per run), while analysis asks the
same three question shapes many times per sample:

* "all events of kind K / variable V (in a time window)" — :meth:`Trace.select`;
* "the first such event at or after t" — :meth:`Trace.first`;
* "all events of any of these kinds, in trace order" — :meth:`Trace.select_kinds`.

Storage is **columnar**: parallel lists of kinds, variables, values,
timestamps and metadata, plus a parallel cache of materialised
:class:`Event` objects.  The recording fast path
(:meth:`Trace._append_raw`, used by :class:`TraceRecorder`) appends one
element to each column and *never constructs an Event object*; events are
materialised lazily — and cached positionally, so repeated queries return
the identical object — only when a query or iteration actually touches
them.  :meth:`Trace.append` / :meth:`Trace.extend` still accept ready-made
events (their objects are stored directly in the cache), so both entry
points yield byte-identical query results.

Query answering keeps the secondary indexes introduced earlier: by ``(kind,
variable)``, by ``kind`` and by ``variable`` — each a :class:`_IndexBucket`
holding the trace *positions* of its events plus a parallel, non-decreasing
timestamp list.  A query picks the most specific bucket for its filters,
bisects the timestamp list to the ``[after_us, before_us]`` window, and
materialises only the matching events, so queries cost O(log n + matches)
instead of O(n).  Positions within a bucket are ascending, which preserves
exact trace order (including ties), so indexed queries return byte-identical
results to a linear scan.  Multi-kind queries merge the per-kind buckets by
position.

The indexes are built *lazily* from the columns directly (no event
materialisation): appending only checks time order and extends the columns,
and the first query indexes the unindexed tail in one pass.  Batch
construction paths — :meth:`Trace.extend` for validated batches and the
trusted :meth:`Trace.from_sorted` used by :meth:`Trace.restricted_to` —
therefore never re-validate or re-index event-by-event.

``docs/architecture.md`` ("The trace index" and "The runtime engine") places
this design in the context of the whole stack and records the measured
speedups.  The pre-columnar implementation is preserved verbatim in
``repro._reference.seed_engine`` as the byte-identity oracle.
"""

from __future__ import annotations

import enum
import heapq
from bisect import bisect_left, bisect_right
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple, Union


class VariableKind(enum.Enum):
    """The four variable kinds of Parnas' model."""

    MONITORED = "m"
    INPUT = "i"
    OUTPUT = "o"
    CONTROLLED = "c"


class EventKind(enum.Enum):
    """Kinds of timestamped observations appearing in a trace."""

    M = "m"
    I = "i"  # noqa: E741 - single-letter name mirrors the paper's notation
    O = "o"  # noqa: E741
    C = "c"
    TRANSITION_START = "trans_start"
    TRANSITION_END = "trans_end"

    @classmethod
    def for_variable(cls, kind: VariableKind) -> "EventKind":
        """Map a variable kind to its event kind."""
        return {
            VariableKind.MONITORED: cls.M,
            VariableKind.INPUT: cls.I,
            VariableKind.OUTPUT: cls.O,
            VariableKind.CONTROLLED: cls.C,
        }[kind]


@dataclass(frozen=True)
class VariableSpec:
    """Declaration of one variable of the four-variable interface."""

    name: str
    kind: VariableKind
    var_type: str = "bool"
    initial: Any = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.var_type not in ("bool", "int", "float", "str"):
            raise ValueError(f"unsupported variable type {self.var_type!r}")


@dataclass(frozen=True)
class InputMapping:
    """Pairing of an m-variable with the i-variable the Input-Device produces."""

    monitored: str
    input: str


@dataclass(frozen=True)
class OutputMapping:
    """Pairing of an o-variable with the c-variable the Output-Device produces."""

    output: str
    controlled: str


class FourVariableInterface:
    """The complete four-variable interface of an implemented system.

    Besides declaring the variables, the interface records the Input-Device
    and Output-Device pairings (which m-variable feeds which i-variable and
    which o-variable drives which c-variable).  M-testing uses the pairings to
    attribute Input-Delay and Output-Delay to the right event pairs.
    """

    def __init__(self) -> None:
        self._variables: Dict[str, VariableSpec] = {}
        self._input_mappings: List[InputMapping] = []
        self._output_mappings: List[OutputMapping] = []

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add(self, spec: VariableSpec) -> VariableSpec:
        if spec.name in self._variables:
            raise ValueError(f"variable {spec.name!r} already declared")
        self._variables[spec.name] = spec
        return spec

    def declare(
        self,
        name: str,
        kind: VariableKind,
        var_type: str = "bool",
        initial: Any = False,
        description: str = "",
    ) -> VariableSpec:
        return self.add(VariableSpec(name, kind, var_type, initial, description))

    def monitored(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.MONITORED, **kwargs)

    def input(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.INPUT, **kwargs)

    def output(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.OUTPUT, **kwargs)

    def controlled(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.CONTROLLED, **kwargs)

    def link_input(self, monitored: str, input_name: str) -> InputMapping:
        """Declare that the Input-Device converts ``monitored`` into ``input_name``."""
        self._require(monitored, VariableKind.MONITORED)
        self._require(input_name, VariableKind.INPUT)
        mapping = InputMapping(monitored, input_name)
        self._input_mappings.append(mapping)
        return mapping

    def link_output(self, output_name: str, controlled: str) -> OutputMapping:
        """Declare that the Output-Device converts ``output_name`` into ``controlled``."""
        self._require(output_name, VariableKind.OUTPUT)
        self._require(controlled, VariableKind.CONTROLLED)
        mapping = OutputMapping(output_name, controlled)
        self._output_mappings.append(mapping)
        return mapping

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _require(self, name: str, kind: VariableKind) -> VariableSpec:
        spec = self.get(name)
        if spec.kind is not kind:
            raise ValueError(f"variable {name!r} is {spec.kind.value!r}, expected {kind.value!r}")
        return spec

    def get(self, name: str) -> VariableSpec:
        try:
            return self._variables[name]
        except KeyError:
            raise KeyError(f"unknown variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._variables

    def variables(self, kind: Optional[VariableKind] = None) -> List[VariableSpec]:
        specs = list(self._variables.values())
        if kind is None:
            return specs
        return [spec for spec in specs if spec.kind is kind]

    def names(self, kind: Optional[VariableKind] = None) -> List[str]:
        return [spec.name for spec in self.variables(kind)]

    @property
    def input_mappings(self) -> Sequence[InputMapping]:
        return tuple(self._input_mappings)

    @property
    def output_mappings(self) -> Sequence[OutputMapping]:
        return tuple(self._output_mappings)

    def input_for_monitored(self, monitored: str) -> Optional[str]:
        for mapping in self._input_mappings:
            if mapping.monitored == monitored:
                return mapping.input
        return None

    def controlled_for_output(self, output_name: str) -> Optional[str]:
        for mapping in self._output_mappings:
            if mapping.output == output_name:
                return mapping.controlled
        return None

    def monitored_for_input(self, input_name: str) -> Optional[str]:
        for mapping in self._input_mappings:
            if mapping.input == input_name:
                return mapping.monitored
        return None

    def output_for_controlled(self, controlled: str) -> Optional[str]:
        for mapping in self._output_mappings:
            if mapping.controlled == controlled:
                return mapping.output
        return None

    def validate(self) -> None:
        """Check structural consistency; raises :class:`ValueError` on problems."""
        for mapping in self._input_mappings:
            self._require(mapping.monitored, VariableKind.MONITORED)
            self._require(mapping.input, VariableKind.INPUT)
        for mapping in self._output_mappings:
            self._require(mapping.output, VariableKind.OUTPUT)
            self._require(mapping.controlled, VariableKind.CONTROLLED)


@dataclass(frozen=True)
class Event:
    """One timestamped observation at a four-variable boundary."""

    kind: EventKind
    variable: str
    value: Any
    timestamp_us: int
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise ValueError("event timestamp must be non-negative")

    def matches(self, kind: Optional[EventKind] = None, variable: Optional[str] = None) -> bool:
        if kind is not None and self.kind is not kind:
            return False
        if variable is not None and self.variable != variable:
            return False
        return True


class _IndexBucket:
    """Trace positions of one index slice plus their (sorted) timestamps.

    Positions are appended in trace order, so both lists are ascending; time
    windows therefore map to contiguous slices found by bisection.
    """

    __slots__ = ("positions", "times")

    def __init__(self) -> None:
        self.positions: List[int] = []
        self.times: List[int] = []

    def add(self, position: int, time_us: int) -> None:
        self.positions.append(position)
        self.times.append(time_us)

    def window(self, after_us: Optional[int], before_us: Optional[int]) -> Tuple[int, int]:
        """Slice bounds of the ``[after_us, before_us]`` window (both inclusive)."""
        lo = 0 if after_us is None else bisect_left(self.times, after_us)
        hi = len(self.times) if before_us is None else bisect_right(self.times, before_us)
        return lo, hi


_EMPTY_BUCKET = _IndexBucket()

#: Shared metadata for raw-path events recorded without any meta kwargs.
#: Events never mutate their meta mapping, so one empty dict can back all of
#: them (materialised events compare equal to seed-path events, whose
#: ``dict(meta)`` of no kwargs is also ``{}``).
_EMPTY_META: Dict[str, Any] = {}


class Trace:
    """An append-only, time-ordered, columnar sequence of :class:`Event` objects.

    Events are stored as parallel columns and materialised lazily (see the
    module docstring); they are indexed on first query by ``(kind, variable)``,
    by ``kind`` and by ``variable``, so :meth:`select`, :meth:`first` and
    :meth:`select_kinds` run in O(log n + matches) rather than scanning the
    whole trace.
    """

    __slots__ = (
        "_kinds",
        "_variables",
        "_values",
        "_timestamps",
        "_metas",
        "_cache",
        "_by_kind",
        "_by_variable",
        "_by_kind_variable",
        "_indexed_upto",
        "_events_view",
    )

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._kinds: List[EventKind] = []
        self._variables: List[str] = []
        self._values: List[Any] = []
        self._timestamps: List[int] = []
        self._metas: List[Mapping[str, Any]] = []
        #: Materialised events, parallel to the columns (None = not yet built).
        self._cache: List[Optional[Event]] = []
        self._by_kind: Dict[EventKind, _IndexBucket] = {}
        self._by_variable: Dict[str, _IndexBucket] = {}
        self._by_kind_variable: Dict[Tuple[EventKind, str], _IndexBucket] = {}
        self._indexed_upto = 0
        self._events_view: Optional[Tuple[Event, ...]] = None
        if events is not None:
            self.extend(events)

    @classmethod
    def from_sorted(cls, events: Iterable[Event]) -> "Trace":
        """Build a trace from events already known to be in timestamp order.

        This is the cheap builder path for trusted sources (another trace, a
        recorder draining in clock order): the columns are bulk-built without
        re-validating order event-by-event, and the indexes are left for the
        first query to build lazily.  The given event objects are kept in the
        materialisation cache, so queries return them identically.
        """
        trace = cls()
        cache = list(events)
        trace._cache = cache
        trace._kinds = [event.kind for event in cache]
        trace._variables = [event.variable for event in cache]
        trace._values = [event.value for event in cache]
        trace._timestamps = [event.timestamp_us for event in cache]
        trace._metas = [event.meta for event in cache]
        return trace

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _append_raw(
        self,
        kind: EventKind,
        variable: str,
        value: Any,
        timestamp_us: int,
        meta: Optional[Dict[str, Any]],
    ) -> None:
        """Record one observation without materialising an :class:`Event`.

        This is the recording fast path (used by :class:`TraceRecorder`): it
        performs exactly the validation the object path performs — monotone
        timestamps, non-negative first timestamp — and appends one element per
        column.  ``meta`` is stored as given (callers pass a fresh dict or
        ``None`` for no metadata).
        """
        timestamps = self._timestamps
        if timestamps:
            if timestamp_us < timestamps[-1]:
                raise ValueError(
                    "events must be appended in non-decreasing timestamp order: "
                    f"{timestamp_us} < {timestamps[-1]}"
                )
        elif timestamp_us < 0:
            raise ValueError("event timestamp must be non-negative")
        self._kinds.append(kind)
        self._variables.append(variable)
        self._values.append(value)
        timestamps.append(timestamp_us)
        self._metas.append(_EMPTY_META if meta is None else meta)
        self._cache.append(None)
        self._events_view = None

    def append(self, event: Event) -> None:
        timestamps = self._timestamps
        if timestamps and event.timestamp_us < timestamps[-1]:
            raise ValueError(
                "events must be appended in non-decreasing timestamp order: "
                f"{event.timestamp_us} < {timestamps[-1]}"
            )
        self._kinds.append(event.kind)
        self._variables.append(event.variable)
        self._values.append(event.value)
        timestamps.append(event.timestamp_us)
        self._metas.append(event.meta)
        self._cache.append(event)
        self._events_view = None

    def extend(self, events: Iterable[Event]) -> None:
        """Append a batch of events, validating order in one cheap pass."""
        timestamps = self._timestamps
        last = timestamps[-1] if timestamps else None
        kinds = self._kinds
        variables = self._variables
        values = self._values
        metas = self._metas
        cache = self._cache
        for event in events:
            if last is not None and event.timestamp_us < last:
                raise ValueError(
                    "events must be appended in non-decreasing timestamp order: "
                    f"{event.timestamp_us} < {last}"
                )
            last = event.timestamp_us
            kinds.append(event.kind)
            variables.append(event.variable)
            values.append(event.value)
            timestamps.append(last)
            metas.append(event.meta)
            cache.append(event)
        self._events_view = None

    def _event_at(self, position: int) -> Event:
        """Materialise (and cache) the event at ``position``.

        Works for negative positions too: Python's negative list indexing
        resolves reads and the cache write-back to the same slot.
        """
        cache = self._cache
        event = cache[position]
        if event is None:
            event = Event(
                self._kinds[position],
                self._variables[position],
                self._values[position],
                self._timestamps[position],
                self._metas[position],
            )
            cache[position] = event
        return event

    def _ensure_index(self) -> None:
        """Index the not-yet-indexed tail of the trace (amortised O(1) per event).

        Operates on the columns directly, so building the index never
        materialises events.
        """
        upto = self._indexed_upto
        count = len(self._timestamps)
        if upto == count:
            return
        kinds = self._kinds
        variables = self._variables
        timestamps = self._timestamps
        by_kind = self._by_kind
        by_variable = self._by_variable
        by_kind_variable = self._by_kind_variable
        for position in range(upto, count):
            time_us = timestamps[position]
            kind = kinds[position]
            variable = variables[position]
            bucket = by_kind.get(kind)
            if bucket is None:
                bucket = by_kind[kind] = _IndexBucket()
            bucket.add(position, time_us)
            bucket = by_variable.get(variable)
            if bucket is None:
                bucket = by_variable[variable] = _IndexBucket()
            bucket.add(position, time_us)
            key = (kind, variable)
            bucket = by_kind_variable.get(key)
            if bucket is None:
                bucket = by_kind_variable[key] = _IndexBucket()
            bucket.add(position, time_us)
        self._indexed_upto = count

    def __len__(self) -> int:
        return len(self._timestamps)

    def __iter__(self) -> Iterator[Event]:
        for position in range(len(self._timestamps)):
            yield self._event_at(position)

    def __getitem__(self, index: Union[int, slice]) -> Any:
        if isinstance(index, slice):
            return [self._event_at(position) for position in range(*index.indices(len(self._timestamps)))]
        # Range-check through the timestamp column (raises IndexError like a
        # list would), then materialise.
        self._timestamps[index]
        return self._event_at(index)

    @property
    def events(self) -> Sequence[Event]:
        """A stable immutable view of the events (cached until the next append)."""
        if self._events_view is None:
            self._events_view = tuple(
                self._event_at(position) for position in range(len(self._timestamps))
            )
        return self._events_view

    @property
    def duration_us(self) -> int:
        if not self._timestamps:
            return 0
        return self._timestamps[-1] - self._timestamps[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _bucket_for(self, kind: Optional[EventKind], variable: Optional[str]) -> Optional[_IndexBucket]:
        """Most specific index bucket for the filters; ``None`` means whole trace.

        Pure time-window queries (no kind/variable filter) bisect the
        timestamp array directly and must not trigger the index build.
        """
        if kind is None and variable is None:
            return None
        self._ensure_index()
        if kind is not None:
            if variable is not None:
                return self._by_kind_variable.get((kind, variable), _EMPTY_BUCKET)
            return self._by_kind.get(kind, _EMPTY_BUCKET)
        return self._by_variable.get(variable, _EMPTY_BUCKET)

    def select(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        """Return events matching all provided filters, in time order."""
        bucket = self._bucket_for(kind, variable)
        event_at = self._event_at
        if bucket is None:
            lo = 0 if after_us is None else bisect_left(self._timestamps, after_us)
            hi = len(self._timestamps) if before_us is None else bisect_right(self._timestamps, before_us)
            selected = [event_at(position) for position in range(lo, hi)]
        else:
            lo, hi = bucket.window(after_us, before_us)
            selected = [event_at(position) for position in bucket.positions[lo:hi]]
        if predicate is not None:
            return [event for event in selected if predicate(event)]
        return selected

    def first(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> Optional[Event]:
        """First event matching the filters at or after ``after_us``.

        ``before_us`` bounds the search window (inclusive), so callers probing
        a window get the early-exit path instead of materialising every match.
        """
        bucket = self._bucket_for(kind, variable)
        event_at = self._event_at
        # Iterate by index (no window slice copy) so the early exit really is
        # O(log n + 1) when the first candidate matches.
        if bucket is None:
            lo = 0 if after_us is None else bisect_left(self._timestamps, after_us)
            hi = len(self._timestamps) if before_us is None else bisect_right(self._timestamps, before_us)
            for position in range(lo, hi):
                event = event_at(position)
                if predicate is None or predicate(event):
                    return event
            return None
        lo, hi = bucket.window(after_us, before_us)
        positions = bucket.positions
        for index in range(lo, hi):
            event = event_at(positions[index])
            if predicate is None or predicate(event):
                return event
        return None

    def select_kinds(
        self,
        kinds: Iterable[EventKind],
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        """Events of any of ``kinds`` in a time window, in trace order.

        Merges the per-kind index buckets by trace position, so the cost is
        O(log n + matches) regardless of how many other kinds the trace holds.
        """
        self._ensure_index()
        slices: List[List[int]] = []
        for kind in dict.fromkeys(kinds):
            bucket = self._by_kind.get(kind)
            if bucket is None:
                continue
            lo, hi = bucket.window(after_us, before_us)
            if lo < hi:
                slices.append(bucket.positions[lo:hi])
        if not slices:
            return []
        event_at = self._event_at
        if len(slices) == 1:
            return [event_at(position) for position in slices[0]]
        return [event_at(position) for position in heapq.merge(*slices)]

    def restricted_to(self, kinds: Iterable[EventKind]) -> "Trace":
        """A copy containing only the given event kinds (e.g. M and C for R-testing)."""
        return Trace.from_sorted(self.select_kinds(kinds))

    def value_changes(self, kind: EventKind, variable: str) -> List[Tuple[int, Any]]:
        """``(timestamp, value)`` pairs where ``variable`` changed value.

        Reads the value/timestamp columns directly — change detection needs no
        event materialisation.
        """
        self._ensure_index()
        bucket = self._by_kind_variable.get((kind, variable))
        if bucket is None:
            return []
        values = self._values
        timestamps = self._timestamps
        changes: List[Tuple[int, Any]] = []
        previous: Any = object()
        for position in bucket.positions:
            value = values[position]
            if value != previous:
                changes.append((timestamps[position], value))
                previous = value
        return changes


class TraceRecorder:
    """Collects events from the platform and integration layers into a trace.

    ``clock`` is a zero-argument callable returning the current simulated time
    in microseconds (usually ``simulator.now`` via a lambda), so the recorder
    does not depend on the platform package.

    All ``record_*`` methods use the trace's columnar fast path: no
    :class:`Event` object is constructed at record time (they return ``None``;
    read ``recorder.trace[-1]`` when a test needs the materialised event).
    """

    __slots__ = ("_clock", "trace")

    def __init__(self, clock: Callable[[], int]) -> None:
        self._clock = clock
        self.trace = Trace()

    @property
    def now(self) -> int:
        return self._clock()

    def record_m(self, variable: str, value: Any, **meta: Any) -> None:
        """Record a monitored-variable change (physical input boundary)."""
        self.trace._append_raw(EventKind.M, variable, value, self._clock(), meta or None)

    def record_i(self, variable: str, value: Any, **meta: Any) -> None:
        """Record an input-variable read by CODE(M)."""
        self.trace._append_raw(EventKind.I, variable, value, self._clock(), meta or None)

    def record_o(self, variable: str, value: Any, **meta: Any) -> None:
        """Record an output-variable write by CODE(M)."""
        self.trace._append_raw(EventKind.O, variable, value, self._clock(), meta or None)

    def record_c(self, variable: str, value: Any, **meta: Any) -> None:
        """Record a controlled-variable change (physical output boundary)."""
        self.trace._append_raw(EventKind.C, variable, value, self._clock(), meta or None)

    def record_transition_start(self, transition_id: str, **meta: Any) -> None:
        """Record that CODE(M) started executing a model transition."""
        self.trace._append_raw(EventKind.TRANSITION_START, transition_id, None, self._clock(), meta or None)

    def record_transition_end(self, transition_id: str, **meta: Any) -> None:
        """Record that CODE(M) finished executing a model transition."""
        self.trace._append_raw(EventKind.TRANSITION_END, transition_id, None, self._clock(), meta or None)

    def reset(self) -> None:
        """Start a fresh trace (used between test-case executions)."""
        self.trace = Trace()
