"""Parnas' four-variables model: variables, events, traces and recorders.

The paper uses the four-variables model to define *where* the implemented
system is observed:

* **monitored** (``m``) variables — physical quantities observed by the
  hardware platform (e.g. the electrical state of the bolus-request button);
* **input** (``i``) variables — values read by the auto-generated code
  CODE(M) (e.g. the boolean ``i-BolusReq`` the code generator emitted);
* **output** (``o``) variables — values written by CODE(M)
  (e.g. ``o-MotorState``);
* **controlled** (``c``) variables — physical quantities enforced by the
  hardware platform (e.g. the pump-motor speed).

Every observation of a value change at one of these boundaries is an
:class:`Event` with an exact timestamp; a test run produces a :class:`Trace`.
R-testing consumes only M and C events; M-testing additionally consumes I, O
and transition start/end events.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple


class VariableKind(enum.Enum):
    """The four variable kinds of Parnas' model."""

    MONITORED = "m"
    INPUT = "i"
    OUTPUT = "o"
    CONTROLLED = "c"


class EventKind(enum.Enum):
    """Kinds of timestamped observations appearing in a trace."""

    M = "m"
    I = "i"  # noqa: E741 - single-letter name mirrors the paper's notation
    O = "o"  # noqa: E741
    C = "c"
    TRANSITION_START = "trans_start"
    TRANSITION_END = "trans_end"

    @classmethod
    def for_variable(cls, kind: VariableKind) -> "EventKind":
        """Map a variable kind to its event kind."""
        return {
            VariableKind.MONITORED: cls.M,
            VariableKind.INPUT: cls.I,
            VariableKind.OUTPUT: cls.O,
            VariableKind.CONTROLLED: cls.C,
        }[kind]


@dataclass(frozen=True)
class VariableSpec:
    """Declaration of one variable of the four-variable interface."""

    name: str
    kind: VariableKind
    var_type: str = "bool"
    initial: Any = False
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")
        if self.var_type not in ("bool", "int", "float", "str"):
            raise ValueError(f"unsupported variable type {self.var_type!r}")


@dataclass(frozen=True)
class InputMapping:
    """Pairing of an m-variable with the i-variable the Input-Device produces."""

    monitored: str
    input: str


@dataclass(frozen=True)
class OutputMapping:
    """Pairing of an o-variable with the c-variable the Output-Device produces."""

    output: str
    controlled: str


class FourVariableInterface:
    """The complete four-variable interface of an implemented system.

    Besides declaring the variables, the interface records the Input-Device
    and Output-Device pairings (which m-variable feeds which i-variable and
    which o-variable drives which c-variable).  M-testing uses the pairings to
    attribute Input-Delay and Output-Delay to the right event pairs.
    """

    def __init__(self) -> None:
        self._variables: Dict[str, VariableSpec] = {}
        self._input_mappings: List[InputMapping] = []
        self._output_mappings: List[OutputMapping] = []

    # ------------------------------------------------------------------
    # Declaration
    # ------------------------------------------------------------------
    def add(self, spec: VariableSpec) -> VariableSpec:
        if spec.name in self._variables:
            raise ValueError(f"variable {spec.name!r} already declared")
        self._variables[spec.name] = spec
        return spec

    def declare(
        self,
        name: str,
        kind: VariableKind,
        var_type: str = "bool",
        initial: Any = False,
        description: str = "",
    ) -> VariableSpec:
        return self.add(VariableSpec(name, kind, var_type, initial, description))

    def monitored(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.MONITORED, **kwargs)

    def input(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.INPUT, **kwargs)

    def output(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.OUTPUT, **kwargs)

    def controlled(self, name: str, **kwargs: Any) -> VariableSpec:
        return self.declare(name, VariableKind.CONTROLLED, **kwargs)

    def link_input(self, monitored: str, input_name: str) -> InputMapping:
        """Declare that the Input-Device converts ``monitored`` into ``input_name``."""
        self._require(monitored, VariableKind.MONITORED)
        self._require(input_name, VariableKind.INPUT)
        mapping = InputMapping(monitored, input_name)
        self._input_mappings.append(mapping)
        return mapping

    def link_output(self, output_name: str, controlled: str) -> OutputMapping:
        """Declare that the Output-Device converts ``output_name`` into ``controlled``."""
        self._require(output_name, VariableKind.OUTPUT)
        self._require(controlled, VariableKind.CONTROLLED)
        mapping = OutputMapping(output_name, controlled)
        self._output_mappings.append(mapping)
        return mapping

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def _require(self, name: str, kind: VariableKind) -> VariableSpec:
        spec = self.get(name)
        if spec.kind is not kind:
            raise ValueError(f"variable {name!r} is {spec.kind.value!r}, expected {kind.value!r}")
        return spec

    def get(self, name: str) -> VariableSpec:
        try:
            return self._variables[name]
        except KeyError:
            raise KeyError(f"unknown variable {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._variables

    def variables(self, kind: Optional[VariableKind] = None) -> List[VariableSpec]:
        specs = list(self._variables.values())
        if kind is None:
            return specs
        return [spec for spec in specs if spec.kind is kind]

    def names(self, kind: Optional[VariableKind] = None) -> List[str]:
        return [spec.name for spec in self.variables(kind)]

    @property
    def input_mappings(self) -> Sequence[InputMapping]:
        return tuple(self._input_mappings)

    @property
    def output_mappings(self) -> Sequence[OutputMapping]:
        return tuple(self._output_mappings)

    def input_for_monitored(self, monitored: str) -> Optional[str]:
        for mapping in self._input_mappings:
            if mapping.monitored == monitored:
                return mapping.input
        return None

    def controlled_for_output(self, output_name: str) -> Optional[str]:
        for mapping in self._output_mappings:
            if mapping.output == output_name:
                return mapping.controlled
        return None

    def monitored_for_input(self, input_name: str) -> Optional[str]:
        for mapping in self._input_mappings:
            if mapping.input == input_name:
                return mapping.monitored
        return None

    def output_for_controlled(self, controlled: str) -> Optional[str]:
        for mapping in self._output_mappings:
            if mapping.controlled == controlled:
                return mapping.output
        return None

    def validate(self) -> None:
        """Check structural consistency; raises :class:`ValueError` on problems."""
        for mapping in self._input_mappings:
            self._require(mapping.monitored, VariableKind.MONITORED)
            self._require(mapping.input, VariableKind.INPUT)
        for mapping in self._output_mappings:
            self._require(mapping.output, VariableKind.OUTPUT)
            self._require(mapping.controlled, VariableKind.CONTROLLED)


@dataclass(frozen=True)
class Event:
    """One timestamped observation at a four-variable boundary."""

    kind: EventKind
    variable: str
    value: Any
    timestamp_us: int
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.timestamp_us < 0:
            raise ValueError("event timestamp must be non-negative")

    def matches(self, kind: Optional[EventKind] = None, variable: Optional[str] = None) -> bool:
        if kind is not None and self.kind is not kind:
            return False
        if variable is not None and self.variable != variable:
            return False
        return True


class Trace:
    """An append-only, time-ordered sequence of :class:`Event` objects."""

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._events: List[Event] = []
        if events is not None:
            for event in events:
                self.append(event)

    def append(self, event: Event) -> None:
        if self._events and event.timestamp_us < self._events[-1].timestamp_us:
            raise ValueError(
                "events must be appended in non-decreasing timestamp order: "
                f"{event.timestamp_us} < {self._events[-1].timestamp_us}"
            )
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    @property
    def events(self) -> Sequence[Event]:
        return tuple(self._events)

    @property
    def duration_us(self) -> int:
        if not self._events:
            return 0
        return self._events[-1].timestamp_us - self._events[0].timestamp_us

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def select(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        """Return events matching all provided filters, in time order."""
        selected = []
        for event in self._events:
            if not event.matches(kind, variable):
                continue
            if after_us is not None and event.timestamp_us < after_us:
                continue
            if before_us is not None and event.timestamp_us > before_us:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def first(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
    ) -> Optional[Event]:
        """First event matching the filters at or after ``after_us``."""
        for event in self._events:
            if after_us is not None and event.timestamp_us < after_us:
                continue
            if not event.matches(kind, variable):
                continue
            if predicate is not None and not predicate(event):
                continue
            return event
        return None

    def restricted_to(self, kinds: Iterable[EventKind]) -> "Trace":
        """A copy containing only the given event kinds (e.g. M and C for R-testing)."""
        wanted = set(kinds)
        return Trace(event for event in self._events if event.kind in wanted)

    def value_changes(self, kind: EventKind, variable: str) -> List[Tuple[int, Any]]:
        """``(timestamp, value)`` pairs where ``variable`` changed value."""
        changes: List[Tuple[int, Any]] = []
        previous: Any = object()
        for event in self.select(kind=kind, variable=variable):
            if event.value != previous:
                changes.append((event.timestamp_us, event.value))
                previous = event.value
        return changes


class TraceRecorder:
    """Collects events from the platform and integration layers into a trace.

    ``clock`` is a zero-argument callable returning the current simulated time
    in microseconds (usually ``simulator.now`` via a lambda), so the recorder
    does not depend on the platform package.
    """

    def __init__(self, clock: Callable[[], int]) -> None:
        self._clock = clock
        self.trace = Trace()

    @property
    def now(self) -> int:
        return self._clock()

    def _record(self, kind: EventKind, variable: str, value: Any, **meta: Any) -> Event:
        event = Event(kind, variable, value, self._clock(), dict(meta))
        self.trace.append(event)
        return event

    def record_m(self, variable: str, value: Any, **meta: Any) -> Event:
        """Record a monitored-variable change (physical input boundary)."""
        return self._record(EventKind.M, variable, value, **meta)

    def record_i(self, variable: str, value: Any, **meta: Any) -> Event:
        """Record an input-variable read by CODE(M)."""
        return self._record(EventKind.I, variable, value, **meta)

    def record_o(self, variable: str, value: Any, **meta: Any) -> Event:
        """Record an output-variable write by CODE(M)."""
        return self._record(EventKind.O, variable, value, **meta)

    def record_c(self, variable: str, value: Any, **meta: Any) -> Event:
        """Record a controlled-variable change (physical output boundary)."""
        return self._record(EventKind.C, variable, value, **meta)

    def record_transition_start(self, transition_id: str, **meta: Any) -> Event:
        """Record that CODE(M) started executing a model transition."""
        return self._record(EventKind.TRANSITION_START, transition_id, None, **meta)

    def record_transition_end(self, transition_id: str, **meta: Any) -> Event:
        """Record that CODE(M) finished executing a model transition."""
        return self._record(EventKind.TRANSITION_END, transition_id, None, **meta)

    def reset(self) -> None:
        """Start a fresh trace (used between test-case executions)."""
        self.trace = Trace()
