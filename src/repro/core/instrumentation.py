"""Layered measurement probes.

The testing framework is layered and so is the instrumentation:

* **R-level** probes observe only the physical boundary (m- and c-events) —
  this is all R-testing is allowed to see;
* **M-level** probes additionally observe the CODE(M) boundary (i- and
  o-events) and the execution span of each generated transition.

The integration schemes take a :class:`ProbeConfiguration` so the same
implemented system can be exercised first with R-level probes (cheap,
non-intrusive) and, if a violation is found, re-run with full M-level probes —
mirroring the R-then-M workflow of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from .four_variables import TraceRecorder


@dataclass(frozen=True)
class ProbeConfiguration:
    """Which boundaries the integration layer instruments."""

    record_io_events: bool = True
    record_transitions: bool = True

    @classmethod
    def r_level(cls) -> "ProbeConfiguration":
        """Only m/c events (what R-testing needs)."""
        return cls(record_io_events=False, record_transitions=False)

    @classmethod
    def m_level(cls) -> "ProbeConfiguration":
        """Full instrumentation (what M-testing needs)."""
        return cls(record_io_events=True, record_transitions=True)


class MeasurementProbes:
    """Convenience facade over :class:`TraceRecorder` honouring a probe level.

    m- and c-events are recorded by the devices themselves; this facade is used
    by the interfacing code inside the implementation schemes to record the
    software-boundary observations, silently dropping them when the probe
    configuration excludes them.
    """

    def __init__(self, recorder: TraceRecorder, configuration: Optional[ProbeConfiguration] = None) -> None:
        self.recorder = recorder
        self.configuration = configuration or ProbeConfiguration.m_level()

    # ------------------------------------------------------------------
    def input_read(self, variable: str, value: Any, **meta: Any) -> None:
        """CODE(M) latched an input variable (the i-event)."""
        if self.configuration.record_io_events:
            self.recorder.record_i(variable, value, **meta)

    def output_written(self, variable: str, value: Any, **meta: Any) -> None:
        """CODE(M) wrote an output variable (the o-event)."""
        if self.configuration.record_io_events:
            self.recorder.record_o(variable, value, **meta)

    def transition_started(self, transition: str, **meta: Any) -> None:
        if self.configuration.record_transitions:
            self.recorder.record_transition_start(transition, **meta)

    def transition_finished(self, transition: str, **meta: Any) -> None:
        if self.configuration.record_transitions:
            self.recorder.record_transition_end(transition, **meta)

    @property
    def now(self) -> int:
        return self.recorder.now
