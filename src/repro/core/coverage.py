"""Test coverage and sufficiency metrics.

The paper's conclusion names "test coverage and test sufficiency from which
test cases can be systematically generated" as future work.  This module
implements the two metrics that make the R-M workflow auditable today:

* **transition coverage** — which generated transitions were actually executed
  by a test run (from the transition probes or the runtime firing history);
* **sample sufficiency** — how confident the pass/fail verdict is given the
  number of samples observed, using a Wilson score interval on the violation
  proportion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Set

from ..codegen.ir import CodeModel
from .four_variables import EventKind, Trace
from .r_testing import RTestReport


@dataclass
class TransitionCoverage:
    """Coverage of generated transitions by one or more test executions."""

    all_transitions: List[str]
    covered: Set[str] = field(default_factory=set)

    @classmethod
    def for_code_model(cls, code_model: CodeModel) -> "TransitionCoverage":
        return cls(all_transitions=list(code_model.transition_names))

    # ------------------------------------------------------------------
    def add_trace(self, trace: Trace) -> None:
        """Count transitions observed through TRANSITION_START probes.

        The probe lookup rides the trace's per-kind index, and membership is
        checked against a set so long traces don't pay a list scan per probe.
        """
        known = set(self.all_transitions)
        for event in trace.select(kind=EventKind.TRANSITION_START):
            if event.variable in known:
                self.covered.add(event.variable)

    def add_fired(self, transition_names: Iterable[str]) -> None:
        """Count transitions reported fired by the generated-code runtime."""
        known = set(self.all_transitions)
        for name in transition_names:
            if name in known:
                self.covered.add(name)

    # ------------------------------------------------------------------
    @property
    def uncovered(self) -> List[str]:
        return [name for name in self.all_transitions if name not in self.covered]

    @property
    def ratio(self) -> float:
        if not self.all_transitions:
            return 1.0
        return len(self.covered) / len(self.all_transitions)

    def summary(self) -> str:
        return (
            f"transition coverage {len(self.covered)}/{len(self.all_transitions)} "
            f"({self.ratio:.0%}); uncovered: {', '.join(self.uncovered) or 'none'}"
        )


@dataclass
class StateCoverage:
    """Coverage of generated states by one or more test executions.

    States are counted as covered when a transition *entering* them (or
    leaving them, for the initial state) was observed.
    """

    all_states: List[str]
    covered: Set[str] = field(default_factory=set)

    @classmethod
    def for_code_model(cls, code_model: CodeModel) -> "StateCoverage":
        coverage = cls(all_states=list(code_model.state_names))
        coverage._targets_by_transition = {
            row.name: (
                code_model.state_names[row.source_index],
                code_model.state_names[row.target_index],
            )
            for row in code_model.transitions
        }
        return coverage

    def add_trace(self, trace: Trace) -> None:
        """Count states entered/left according to TRANSITION_START probes."""
        targets = getattr(self, "_targets_by_transition", {})
        for event in trace.select(kind=EventKind.TRANSITION_START):
            pair = targets.get(event.variable)
            if pair is None:
                continue
            source, target = pair
            self.covered.add(source)
            self.covered.add(target)

    @property
    def uncovered(self) -> List[str]:
        return [name for name in self.all_states if name not in self.covered]

    @property
    def ratio(self) -> float:
        if not self.all_states:
            return 1.0
        return len(self.covered) / len(self.all_states)

    def summary(self) -> str:
        return (
            f"state coverage {len(self.covered)}/{len(self.all_states)} "
            f"({self.ratio:.0%}); uncovered: {', '.join(self.uncovered) or 'none'}"
        )


@dataclass(frozen=True)
class SufficiencyAssessment:
    """Confidence assessment of a pass/fail verdict from a finite sample."""

    samples: int
    violations: int
    confidence: float
    violation_rate: float
    interval_low: float
    interval_high: float

    @property
    def conclusive(self) -> bool:
        """Is the observed verdict statistically separated from the boundary?

        A clean pass is conclusive when the upper bound of the violation-rate
        interval stays below 50 %; an observed violation is always conclusive
        evidence of non-conformance (a single counterexample suffices).
        """
        if self.violations > 0:
            return True
        return self.interval_high < 0.5


def wilson_interval(successes: int, samples: int, confidence: float = 0.95) -> tuple:
    """Wilson score interval for a binomial proportion (no SciPy dependency)."""
    if samples == 0:
        return 0.0, 1.0
    z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}.get(round(confidence, 2), 1.9600)
    phat = successes / samples
    denominator = 1 + z * z / samples
    centre = phat + z * z / (2 * samples)
    margin = z * math.sqrt((phat * (1 - phat) + z * z / (4 * samples)) / samples)
    # The Wilson interval always contains the observed proportion; clamp to
    # that mathematical guarantee, because at phat=0 (or 1) centre and margin
    # are equal in exact arithmetic and sqrt rounding can leave a bound on
    # the wrong side of phat by ~1e-17.
    low = max(0.0, min(phat, (centre - margin) / denominator))
    high = min(1.0, max(phat, (centre + margin) / denominator))
    return low, high


def assess_sufficiency(report: RTestReport, confidence: float = 0.95) -> SufficiencyAssessment:
    """Assess how much confidence the sample count gives in the R-test verdict."""
    samples = len(report.samples)
    violations = report.violation_count
    low, high = wilson_interval(violations, samples, confidence)
    return SufficiencyAssessment(
        samples=samples,
        violations=violations,
        confidence=confidence,
        violation_rate=(violations / samples) if samples else 0.0,
        interval_low=low,
        interval_high=high,
    )


def samples_needed_for_rate(max_violation_rate: float, confidence: float = 0.95) -> int:
    """How many consecutive passing samples bound the violation rate below a target.

    Uses the rule of three generalisation: with ``n`` passes and zero failures,
    the upper confidence bound on the violation probability is about
    ``-ln(1 - confidence) / n``.
    """
    if not 0 < max_violation_rate < 1:
        raise ValueError("target violation rate must be in (0, 1)")
    if not 0 < confidence < 1:
        raise ValueError("confidence must be in (0, 1)")
    return math.ceil(-math.log(1 - confidence) / max_violation_rate)
