"""The paper's contribution: four-variable instrumentation and R/M testing."""

from .coverage import (
    StateCoverage,
    SufficiencyAssessment,
    TransitionCoverage,
    assess_sufficiency,
    samples_needed_for_rate,
    wilson_interval,
)
from .serialization import (
    m_report_to_dict,
    m_report_to_json,
    r_report_to_csv,
    r_report_to_dict,
    r_report_to_json,
    trace_from_dict,
    trace_from_json,
    trace_to_dict,
    trace_to_json,
)
from .delays import DelaySegments, SegmentStatistics, TransitionDelay, summarize_segments
from .four_variables import (
    Event,
    EventKind,
    FourVariableInterface,
    InputMapping,
    OutputMapping,
    Trace,
    TraceRecorder,
    VariableKind,
    VariableSpec,
)
from .instrumentation import MeasurementProbes, ProbeConfiguration
from .m_testing import MTestAnalyzer, MTestReport, MTestingError
from .oracle import MatchedPair, ResponseMatcher
from .r_testing import RSample, RTestReport, RTestRunner, SampleVerdict
from .report import render_layered_summary, render_m_report, render_r_report
from .requirements import EventSpec, MatchMode, RequirementSet, TimingRequirement
from .sut import SutFactory, SystemUnderTest
from .test_generation import (
    RTestCase,
    RTestGenerator,
    Stimulus,
    TestGenerationConfig,
    paper_example_test_case,
)

__all__ = [
    "DelaySegments",
    "Event",
    "EventKind",
    "EventSpec",
    "FourVariableInterface",
    "InputMapping",
    "MTestAnalyzer",
    "MTestReport",
    "MTestingError",
    "MatchMode",
    "MatchedPair",
    "MeasurementProbes",
    "OutputMapping",
    "ProbeConfiguration",
    "RSample",
    "RTestCase",
    "RTestGenerator",
    "RTestReport",
    "RTestRunner",
    "RequirementSet",
    "ResponseMatcher",
    "SampleVerdict",
    "SegmentStatistics",
    "StateCoverage",
    "Stimulus",
    "SufficiencyAssessment",
    "SutFactory",
    "SystemUnderTest",
    "TestGenerationConfig",
    "TimingRequirement",
    "Trace",
    "TraceRecorder",
    "TransitionCoverage",
    "TransitionDelay",
    "VariableKind",
    "VariableSpec",
    "assess_sufficiency",
    "m_report_to_dict",
    "m_report_to_json",
    "paper_example_test_case",
    "r_report_to_csv",
    "r_report_to_dict",
    "r_report_to_json",
    "render_layered_summary",
    "render_m_report",
    "render_r_report",
    "samples_needed_for_rate",
    "summarize_segments",
    "trace_from_dict",
    "trace_from_json",
    "trace_to_dict",
    "trace_to_json",
    "wilson_interval",
]
