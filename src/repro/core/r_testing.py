"""R-testing: requirement-conformance testing at the m/c boundary.

R-testing drives the implemented system with a schedule of m-event stimuli and
checks every observed ``m -> c`` latency against the requirement's deadline.
Only monitored and controlled variables are used — the paper is explicit that
R-test cases "are generated in order to check whether the implemented system
conforms to the requirement using m and c variables only".

A sample verdict is one of:

* **PASS** — the response arrived within the deadline;
* **FAIL** — the response arrived, but after the deadline;
* **MAX**  — no response was observed before the requirement's time-out
  (rendered exactly as the paper's Table I renders it).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .four_variables import Trace
from .oracle import ResponseMatcher
from .requirements import TimingRequirement
from .sut import SutFactory
from .test_generation import RTestCase


class SampleVerdict(enum.Enum):
    PASS = "pass"
    FAIL = "fail"
    MAX = "max"


@dataclass(frozen=True)
class RSample:
    """The R-testing outcome of one stimulus."""

    index: int
    stimulus_time_us: int
    response_time_us: Optional[int]
    latency_us: Optional[int]
    verdict: SampleVerdict

    @property
    def passed(self) -> bool:
        return self.verdict is SampleVerdict.PASS

    @property
    def timed_out(self) -> bool:
        return self.verdict is SampleVerdict.MAX

    def latency_label(self) -> str:
        """Render the latency the way the paper's Table I does (``MAX`` on time-out)."""
        if self.latency_us is None:
            return "MAX"
        return f"{self.latency_us / 1000:.1f}"


@dataclass
class RTestReport:
    """The outcome of running one R-test case against one implemented system."""

    sut_name: str
    test_case: RTestCase
    samples: List[RSample] = field(default_factory=list)
    trace: Optional[Trace] = None

    @property
    def requirement(self) -> TimingRequirement:
        return self.test_case.requirement

    @property
    def passed(self) -> bool:
        """True when every sample met the deadline."""
        return bool(self.samples) and all(sample.passed for sample in self.samples)

    @property
    def violation_count(self) -> int:
        return sum(1 for sample in self.samples if not sample.passed)

    @property
    def timeout_count(self) -> int:
        return sum(1 for sample in self.samples if sample.timed_out)

    @property
    def violating_samples(self) -> List[RSample]:
        return [sample for sample in self.samples if not sample.passed]

    @property
    def observed_latencies_us(self) -> List[int]:
        return [sample.latency_us for sample in self.samples if sample.latency_us is not None]

    @property
    def max_latency_us(self) -> Optional[int]:
        latencies = self.observed_latencies_us
        return max(latencies) if latencies else None

    @property
    def mean_latency_us(self) -> Optional[float]:
        latencies = self.observed_latencies_us
        return sum(latencies) / len(latencies) if latencies else None

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        worst = "MAX" if self.timeout_count else (
            f"{self.max_latency_us / 1000:.1f} ms" if self.max_latency_us is not None else "n/a"
        )
        return (
            f"[{verdict}] {self.requirement.requirement_id} on {self.sut_name}: "
            f"{len(self.samples)} samples, {self.violation_count} violations "
            f"({self.timeout_count} MAX), worst latency {worst}, "
            f"deadline {self.requirement.deadline_us / 1000:.0f} ms"
        )


def execute_r_test(sut_factory: SutFactory, test_case: RTestCase) -> RTestReport:
    """Execute one R-test case: a pure function of (factory, test case).

    Builds a fresh system from the factory, injects the stimuli, runs to the
    case's horizon and judges every sample.  Given a deterministic factory
    (one whose systems are fully seeded) the returned report is a pure
    function of its arguments, which is what lets the campaign engine dispatch
    runs to worker processes and still aggregate bit-identical results.
    """
    sut = sut_factory()
    for stimulus in test_case.stimuli:
        sut.apply_stimulus(stimulus)
    sut.run(test_case.run_horizon_us)
    return evaluate_r_trace(sut.name, test_case, sut.trace)


class RTestRunner:
    """Executes R-test cases against implemented systems."""

    def __init__(self, sut_factory: SutFactory) -> None:
        self._sut_factory = sut_factory

    def run(self, test_case: RTestCase) -> RTestReport:
        """Build a fresh system, inject the stimuli, run, and judge every sample."""
        return execute_r_test(self._sut_factory, test_case)

    def run_many(self, test_cases: List[RTestCase]) -> List[RTestReport]:
        return [self.run(test_case) for test_case in test_cases]

    # ------------------------------------------------------------------
    @staticmethod
    def evaluate(sut_name: str, test_case: RTestCase, trace: Trace) -> RTestReport:
        """Judge an already-recorded trace against the test case's requirement.

        Exposed separately so recorded traces (or traces from real hardware)
        can be re-evaluated without re-running the system.
        """
        return evaluate_r_trace(sut_name, test_case, trace)


def evaluate_r_trace(sut_name: str, test_case: RTestCase, trace: Trace) -> RTestReport:
    """Judge a recorded trace against the test case's requirement (pure function)."""
    requirement = test_case.requirement
    # R-testing must not look at i/o/transition events at all.  The matcher's
    # indexed kind/variable queries only ever touch the m- and c-buckets, so
    # matching the full trace is exactly equivalent to matching a copy
    # restricted to [M, C] — without the O(n) restriction pass per evaluation.
    matcher = ResponseMatcher(requirement.stimulus, requirement.response)
    pairs = matcher.match(trace, timeout_us=requirement.effective_timeout_us)
    samples: List[RSample] = []
    for pair in pairs:
        if pair.response is None:
            verdict = SampleVerdict.MAX
        elif requirement.check_latency(pair.latency_us):
            verdict = SampleVerdict.PASS
        else:
            verdict = SampleVerdict.FAIL
        samples.append(
            RSample(
                index=pair.index,
                stimulus_time_us=pair.stimulus.timestamp_us,
                response_time_us=pair.response.timestamp_us if pair.response else None,
                latency_us=pair.latency_us,
                verdict=verdict,
            )
        )
    return RTestReport(sut_name=sut_name, test_case=test_case, samples=samples, trace=trace)
