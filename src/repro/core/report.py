"""Textual reporting of R-testing and M-testing outcomes.

These renderers produce the per-run reports a test engineer reads; the
paper-style aggregated Table I is produced by :mod:`repro.analysis.tables`.
"""

from __future__ import annotations

from typing import Optional

from .m_testing import MTestReport
from .r_testing import RTestReport


def _format_ms(value_us: Optional[int]) -> str:
    if value_us is None:
        return "MAX"
    return f"{value_us / 1000:.1f}"


def render_r_report(report: RTestReport) -> str:
    """A human-readable R-testing report (one line per sample)."""
    requirement = report.requirement
    lines = [
        f"R-testing report — {requirement.requirement_id} on {report.sut_name}",
        f"  requirement: {requirement.description or requirement.requirement_id}",
        f"  deadline: {requirement.deadline_us / 1000:.0f} ms, "
        f"timeout: {requirement.effective_timeout_us / 1000:.0f} ms",
        f"  samples: {len(report.samples)}",
        "",
        f"  {'#':>3}  {'stimulus (ms)':>14}  {'latency (ms)':>13}  verdict",
    ]
    for sample in report.samples:
        verdict = sample.verdict.value.upper()
        lines.append(
            f"  {sample.index:>3}  {sample.stimulus_time_us / 1000:>14.1f}  "
            f"{sample.latency_label():>13}  {verdict}"
        )
    lines.append("")
    lines.append("  " + report.summary())
    return "\n".join(lines)


def render_m_report(report: MTestReport) -> str:
    """A human-readable M-testing report with per-sample delay segments."""
    lines = [
        f"M-testing report — {report.requirement.requirement_id} on {report.sut_name}",
        f"  samples segmented: {len(report.segments)}",
        "",
        f"  {'#':>3}  {'input (ms)':>11}  {'code (ms)':>10}  {'output (ms)':>12}  "
        f"{'end-to-end (ms)':>16}  transitions",
    ]
    for segment in report.segments:
        transitions = ", ".join(
            f"{delay.transition}={delay.duration_us / 1000:.1f}ms"
            for delay in segment.transition_delays
        ) or "-"
        lines.append(
            f"  {segment.sample_index:>3}  {_format_ms(segment.input_delay_us):>11}  "
            f"{_format_ms(segment.code_delay_us):>10}  {_format_ms(segment.output_delay_us):>12}  "
            f"{_format_ms(segment.end_to_end_us):>16}  {transitions}"
        )
    lines.append("")
    statistics = report.statistics()
    if statistics:
        lines.append("  segment statistics (ms):")
        for stats in statistics:
            lines.append(
                f"    {stats.name:>12}: mean {stats.mean_us / 1000:6.1f}   "
                f"min {stats.min_us / 1000:6.1f}   max {stats.max_us / 1000:6.1f}"
            )
    dominant = report.dominant_segment()
    if dominant is not None:
        lines.append(f"  dominant delay segment: {dominant}")
    return "\n".join(lines)


def render_layered_summary(r_report: RTestReport, m_report: Optional[MTestReport]) -> str:
    """The combined R-then-M narrative for one implemented system."""
    lines = [r_report.summary()]
    if r_report.passed:
        lines.append(
            "R-testing passed; per the layered workflow M-testing is not required."
        )
    elif m_report is None:
        lines.append(
            "R-testing failed; run M-testing to segment the violating samples."
        )
    else:
        lines.append(m_report.summary())
        dominant = m_report.dominant_segment()
        if dominant == "input":
            lines.append(
                "Diagnosis: the Input-Delay dominates — look at sensor sampling "
                "periods and the sensing thread's period/priority."
            )
        elif dominant == "output":
            lines.append(
                "Diagnosis: the Output-Delay dominates — look at actuation "
                "batching and the actuation thread's period/priority."
            )
        elif dominant == "code":
            lines.append(
                "Diagnosis: the CODE(M)-Delay dominates — look at the CODE(M) "
                "thread's period, its preemption by higher-priority threads and "
                "the per-transition execution times."
            )
    return "\n".join(lines)
