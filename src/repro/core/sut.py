"""The system-under-test abstraction shared by R-testing and M-testing.

An implemented system, for the purposes of the testing framework, is anything
that can (1) accept scheduled m-event stimuli, (2) run for a bounded amount of
platform time and (3) hand back the four-variable trace recorded while it ran.
The three implementation schemes in :mod:`repro.integration` implement this
interface on top of the simulated platform; a user with a real test bench
would implement it against their measurement hardware instead.
"""

from __future__ import annotations

import abc
from typing import Callable

from .four_variables import FourVariableInterface, Trace
from .test_generation import Stimulus


class SystemUnderTest(abc.ABC):
    """One built-and-integrated implementation ready to execute test cases."""

    #: Human-readable name used in reports (e.g. ``"scheme1-single-threaded"``).
    name: str = "unnamed-sut"

    @property
    @abc.abstractmethod
    def interface(self) -> FourVariableInterface:
        """The four-variable interface of this implemented system."""

    @abc.abstractmethod
    def apply_stimulus(self, stimulus: Stimulus) -> None:
        """Schedule one m-event stimulus for injection at ``stimulus.at_us``."""

    @abc.abstractmethod
    def run(self, until_us: int) -> None:
        """Execute the implemented system up to platform time ``until_us``."""

    @property
    @abc.abstractmethod
    def trace(self) -> Trace:
        """The four-variable trace recorded so far."""


#: A factory producing a fresh, independent system for each test-case execution.
SutFactory = Callable[[], SystemUnderTest]
