"""Delay-segment data structures produced by M-testing.

The paper defines four delay segments for a stimulus/response pair
(Fig. 3-(c) and (d)):

* **Input-Delay** — m-event to i-event (sensing, driver, queueing before
  CODE(M) reads the input);
* **CODE(M)-Delay** — i-event to o-event (the generated code's reaction,
  including the scheduling of its invocations);
* **Output-Delay** — o-event to c-event (queueing, actuation thread, device
  driver, physical actuation);
* **Transition-Delays** — wall-clock duration of each generated transition
  executed between the i-event and the o-event.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class TransitionDelay:
    """Wall-clock execution span of one generated transition."""

    transition: str
    start_us: int
    end_us: int

    def __post_init__(self) -> None:
        if self.end_us < self.start_us:
            raise ValueError("transition cannot end before it starts")

    @property
    def duration_us(self) -> int:
        return self.end_us - self.start_us


@dataclass
class DelaySegments:
    """The segmented latency of one stimulus/response pair.

    Any of the boundary timestamps may be ``None`` when the corresponding
    event was not observed (e.g. a MAX sample where the c-event never
    appeared); derived segment properties are then ``None`` too.
    """

    sample_index: int
    m_time_us: Optional[int]
    i_time_us: Optional[int]
    o_time_us: Optional[int]
    c_time_us: Optional[int]
    transition_delays: List[TransitionDelay] = field(default_factory=list)

    @staticmethod
    def _diff(later: Optional[int], earlier: Optional[int]) -> Optional[int]:
        if later is None or earlier is None:
            return None
        return later - earlier

    @property
    def input_delay_us(self) -> Optional[int]:
        """m-event to i-event."""
        return self._diff(self.i_time_us, self.m_time_us)

    @property
    def code_delay_us(self) -> Optional[int]:
        """i-event to o-event."""
        return self._diff(self.o_time_us, self.i_time_us)

    @property
    def output_delay_us(self) -> Optional[int]:
        """o-event to c-event."""
        return self._diff(self.c_time_us, self.o_time_us)

    @property
    def end_to_end_us(self) -> Optional[int]:
        """m-event to c-event (what R-testing measures)."""
        return self._diff(self.c_time_us, self.m_time_us)

    @property
    def total_transition_delay_us(self) -> int:
        return sum(delay.duration_us for delay in self.transition_delays)

    @property
    def complete(self) -> bool:
        """True when every boundary event was observed."""
        return None not in (self.m_time_us, self.i_time_us, self.o_time_us, self.c_time_us)

    def segments_consistent(self, tolerance_us: int = 0) -> bool:
        """Do the three segments add up to the end-to-end latency?

        The decomposition is exact by construction; the tolerance parameter
        exists for traces gathered with coarse platform timers.
        """
        if not self.complete:
            return False
        total = self.input_delay_us + self.code_delay_us + self.output_delay_us
        return abs(total - self.end_to_end_us) <= tolerance_us

    def dominant_segment(self) -> Optional[str]:
        """Name of the largest segment (``input`` / ``code`` / ``output``)."""
        if not self.complete:
            return None
        segments = {
            "input": self.input_delay_us,
            "code": self.code_delay_us,
            "output": self.output_delay_us,
        }
        return max(segments, key=lambda key: segments[key])


@dataclass(frozen=True)
class SegmentStatistics:
    """Aggregate statistics of one delay segment across samples."""

    name: str
    count: int
    min_us: int
    max_us: int
    mean_us: float

    @classmethod
    def from_values(cls, name: str, values: Sequence[int]) -> Optional["SegmentStatistics"]:
        values = [value for value in values if value is not None]
        if not values:
            return None
        return cls(
            name=name,
            count=len(values),
            min_us=min(values),
            max_us=max(values),
            mean_us=sum(values) / len(values),
        )


def summarize_segments(segments: Sequence[DelaySegments]) -> List[SegmentStatistics]:
    """Summary statistics of every delay segment over a set of samples."""
    summaries = []
    for name, extractor in (
        ("input_delay", lambda s: s.input_delay_us),
        ("code_delay", lambda s: s.code_delay_us),
        ("output_delay", lambda s: s.output_delay_us),
        ("end_to_end", lambda s: s.end_to_end_us),
    ):
        stats = SegmentStatistics.from_values(name, [extractor(segment) for segment in segments])
        if stats is not None:
            summaries.append(stats)
    return summaries
