"""Stimulus/response matching over four-variable traces.

R-testing needs to pair every injected m-event with the c-event it caused (or
establish that none arrived before the time-out); M-testing needs the same
pairing plus the intermediate i- and o-events.  The matcher implements FIFO
pairing: responses are assigned to stimuli in arrival order, and a response is
never assigned to a stimulus that occurred after it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .four_variables import Event, EventKind, Trace
from .requirements import EventSpec


@dataclass(frozen=True)
class MatchedPair:
    """One stimulus event and the response event attributed to it (if any)."""

    index: int
    stimulus: Event
    response: Optional[Event]

    @property
    def latency_us(self) -> Optional[int]:
        if self.response is None:
            return None
        return self.response.timestamp_us - self.stimulus.timestamp_us


class ResponseMatcher:
    """Pairs stimulus events with response events in a trace."""

    def __init__(
        self,
        stimulus: EventSpec,
        response: EventSpec,
        *,
        stimulus_kind: EventKind = EventKind.M,
        response_kind: EventKind = EventKind.C,
    ) -> None:
        self.stimulus = stimulus
        self.response = response
        self.stimulus_kind = stimulus_kind
        self.response_kind = response_kind

    def match(self, trace: Trace, timeout_us: Optional[int] = None) -> List[MatchedPair]:
        """Pair every stimulus in ``trace`` with its response.

        A response is attributed to the earliest still-unmatched stimulus that
        precedes it.  With ``timeout_us`` given, a response arriving more than
        the timeout after its candidate stimulus is not attributed to it: the
        pair is reported unanswered (which R-testing renders as MAX), and —
        unlike the pre-index implementation, which silently discarded it — the
        late response is **not consumed**.  It remains available as a
        candidate for the *next* stimulus, so one slow sample can never
        cascade into artificial MAX verdicts for every sample after it
        (pinned by ``tests/core/test_oracle.py``).
        """
        stimuli = [
            event
            for event in trace.select(kind=self.stimulus_kind, variable=self.stimulus.variable)
            if self.stimulus.matches(event)
        ]
        responses = [
            event
            for event in trace.select(kind=self.response_kind, variable=self.response.variable)
            if self.response.matches(event)
        ]
        pairs: List[MatchedPair] = []
        response_cursor = 0
        for index, stimulus_event in enumerate(stimuli):
            chosen: Optional[Event] = None
            cursor = response_cursor
            while cursor < len(responses):
                candidate = responses[cursor]
                if candidate.timestamp_us < stimulus_event.timestamp_us:
                    # A response from before this stimulus can only belong to an
                    # earlier stimulus; skip past it permanently.
                    cursor += 1
                    response_cursor = cursor
                    continue
                if timeout_us is not None and candidate.timestamp_us - stimulus_event.timestamp_us > timeout_us:
                    chosen = None
                    break
                chosen = candidate
                response_cursor = cursor + 1
                break
            pairs.append(MatchedPair(index=index, stimulus=stimulus_event, response=chosen))
        return pairs

    # ------------------------------------------------------------------
    # Helpers used by M-testing
    # ------------------------------------------------------------------
    @staticmethod
    def first_event_after(
        trace: Trace,
        kind: EventKind,
        variable: str,
        after_us: int,
        *,
        before_us: Optional[int] = None,
        spec: Optional[EventSpec] = None,
    ) -> Optional[Event]:
        """First event of ``kind``/``variable`` at or after ``after_us``.

        ``before_us`` bounds the search window; ``spec`` optionally filters by
        value (e.g. only ``o-MotorState`` writes of value 1).  Uses the
        trace's indexed early-exit path rather than materialising every
        matching event in the window.
        """
        return trace.first(
            kind=kind,
            variable=variable,
            predicate=spec.matches if spec is not None else None,
            after_us=after_us,
            before_us=before_us,
        )
