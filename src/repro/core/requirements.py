"""Timing requirements expressed over the four-variable boundary.

The paper expresses REQ1 as a pair of m/c events with a deadline::

    (REQ1-a) {(m-BolusReq, tm1), (c-BolusStart, tc1)}
    (REQ1-b) tc1 - tm1 <= 100 ms

:class:`TimingRequirement` captures exactly that structure — a *stimulus*
specification over an m-variable, a *response* specification over a
c-variable, and a deadline — plus the optional model-level counterpart
(i-event / o-variable) used for verification before implementation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Optional

from ..model.verification import BoundedResponseRequirement
from .four_variables import Event


class MatchMode(enum.Enum):
    """How an observed event is matched against an event specification."""

    BECOMES = "becomes"          # value equals the specified target
    BECOMES_POSITIVE = "positive"  # value is truthy / greater than zero
    ANY_CHANGE = "any_change"    # any event on the variable counts


@dataclass(frozen=True)
class EventSpec:
    """Specification of an m-event or c-event of interest."""

    variable: str
    mode: MatchMode = MatchMode.BECOMES
    value: Any = True
    description: str = ""

    def matches(self, event: Event) -> bool:
        """Does ``event`` satisfy this specification?"""
        if event.variable != self.variable:
            return False
        if self.mode is MatchMode.BECOMES:
            return event.value == self.value
        if self.mode is MatchMode.BECOMES_POSITIVE:
            try:
                return bool(event.value) and float(event.value) > 0
            except (TypeError, ValueError):
                return bool(event.value)
        return True

    @classmethod
    def becomes(cls, variable: str, value: Any, description: str = "") -> "EventSpec":
        return cls(variable, MatchMode.BECOMES, value, description)

    @classmethod
    def becomes_positive(cls, variable: str, description: str = "") -> "EventSpec":
        return cls(variable, MatchMode.BECOMES_POSITIVE, True, description)

    @classmethod
    def any_change(cls, variable: str, description: str = "") -> "EventSpec":
        return cls(variable, MatchMode.ANY_CHANGE, None, description)


@dataclass(frozen=True)
class TimingRequirement:
    """A bounded-response timing requirement at the implementation boundary.

    ``deadline_us`` bounds the latency from the stimulus m-event to the
    response c-event.  ``timeout_us`` is how long R-testing waits for the
    response before declaring the sample MAX (response never observed); it
    defaults to five times the deadline.

    The optional ``model_*`` fields give the model-level counterpart of the
    requirement (i-event trigger, o-variable response) so the same requirement
    object drives both Simulink-Design-Verifier-style verification and
    implementation-level R-testing.
    """

    requirement_id: str
    stimulus: EventSpec
    response: EventSpec
    deadline_us: int
    description: str = ""
    timeout_us: Optional[int] = None
    min_stimulus_separation_us: int = 0
    model_trigger_event: Optional[str] = None
    model_response_variable: Optional[str] = None
    model_response_value: Any = None
    model_trigger_state: Optional[str] = None

    def __post_init__(self) -> None:
        if self.deadline_us <= 0:
            raise ValueError("deadline must be positive")
        if self.timeout_us is not None and self.timeout_us < self.deadline_us:
            raise ValueError("timeout cannot be shorter than the deadline")
        if self.min_stimulus_separation_us < 0:
            raise ValueError("minimum stimulus separation must be non-negative")

    @property
    def effective_timeout_us(self) -> int:
        """The time after which a missing response is reported as MAX."""
        return self.timeout_us if self.timeout_us is not None else self.deadline_us * 5

    @property
    def has_model_counterpart(self) -> bool:
        return self.model_trigger_event is not None and self.model_response_variable is not None

    def to_model_requirement(self) -> BoundedResponseRequirement:
        """The model-level bounded-response requirement (deadline in ticks)."""
        if not self.has_model_counterpart:
            raise ValueError(
                f"requirement {self.requirement_id!r} has no model-level counterpart declared"
            )
        return BoundedResponseRequirement(
            requirement_id=self.requirement_id,
            trigger_event=self.model_trigger_event,
            response_variable=self.model_response_variable,
            response_value=self.model_response_value,
            deadline_ticks=self.deadline_us // 1_000,
            trigger_state=self.model_trigger_state,
            description=self.description,
        )

    def check_latency(self, latency_us: Optional[int]) -> bool:
        """Is one observed latency acceptable?  ``None`` (no response) never is."""
        if latency_us is None:
            return False
        return latency_us <= self.deadline_us


class RequirementSet:
    """A named collection of timing requirements (e.g. the GPCA safety requirements)."""

    def __init__(self, name: str, requirements: Optional[Iterable[TimingRequirement]] = None) -> None:
        self.name = name
        self._requirements: Dict[str, TimingRequirement] = {}
        for requirement in requirements or ():
            self.add(requirement)

    def add(self, requirement: TimingRequirement) -> TimingRequirement:
        if requirement.requirement_id in self._requirements:
            raise ValueError(f"duplicate requirement id {requirement.requirement_id!r}")
        self._requirements[requirement.requirement_id] = requirement
        return requirement

    def get(self, requirement_id: str) -> TimingRequirement:
        try:
            return self._requirements[requirement_id]
        except KeyError:
            raise KeyError(f"unknown requirement {requirement_id!r}") from None

    def __contains__(self, requirement_id: str) -> bool:
        return requirement_id in self._requirements

    def __iter__(self) -> Iterator[TimingRequirement]:
        return iter(self._requirements.values())

    def __len__(self) -> int:
        return len(self._requirements)

    @property
    def ids(self) -> List[str]:
        return list(self._requirements.keys())

    def with_model_counterpart(self) -> List[TimingRequirement]:
        """The subset of requirements that can also be verified at model level."""
        return [requirement for requirement in self if requirement.has_model_counterpart]
