"""Implementation Scheme 1: single-threaded periodic integration.

From the paper:

    "The implementation, CODE(M), is executed by a single thread that is
    invoked periodically.  In our case study, CODE(M) is invoked every 25 ms
    to read m-events from the sensors (e.g., bolus-request button); and to
    write c-events to the actuators at the end of CODE(M) computations."

One periodic task therefore performs, per cycle: sense every input device,
run the generated code, and write any produced outputs to the actuators at
the end of the cycle.  A per-cycle housekeeping budget models the rest of the
work a monolithic firmware loop performs (display refresh, logging, watchdog),
which is what makes this scheme's cycle occasionally overrun its period.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional

from ..platform.kernel.random import JitterModel, uniform
from ..platform.kernel.time import ms
from ..platform.rtos.directives import Compute
from .base import ImplementedSystem, SchemeConfig


@dataclass
class SingleThreadedConfig(SchemeConfig):
    """Configuration of the single-threaded scheme."""

    #: Invocation period of the single CODE(M) thread (the paper uses 25 ms).
    period_us: int = ms(25)
    #: Priority of the single thread (only relevant if other tasks are added).
    priority: int = 3
    #: Per-cycle cost of everything else the monolithic loop does.
    housekeeping: JitterModel = field(default_factory=lambda: uniform(ms(13), ms(5)))
    #: Scheme 1 integrations typically step the chart once per invocation,
    #: mirroring a Stateflow periodic step; run-to-completion is opt-in.
    transitions_per_cycle: Optional[int] = 1


class SingleThreadedSystem(ImplementedSystem):
    """Scheme 1: sense, step CODE(M) and actuate in one periodic thread."""

    scheme_name = "scheme1-single-threaded"

    def __init__(self, bundle, artifacts, config: Optional[SingleThreadedConfig] = None) -> None:
        super().__init__(bundle, artifacts, config or SingleThreadedConfig())
        self.config: SingleThreadedConfig

    def _create_tasks(self) -> None:
        config = self.config
        self.scheduler.create_task(
            "codem_loop",
            priority=config.priority,
            job_factory=self._cycle_job,
            period_us=config.period_us,
        )

    # ------------------------------------------------------------------
    def _cycle_job(self) -> Generator[Any, Any, None]:
        """One 25 ms cycle: sense -> CODE(M) -> housekeeping -> actuate."""
        config = self.config
        # Read every sensor through its driver.
        yield Compute(self.execution_model.input_scan_cost(self._rng), label="sense")
        pending = self._collect_inputs()

        # Execute the generated code (per-transition costs are charged inside).
        writes = yield from self._execute_code_cycle(pending, config.transitions_per_cycle)

        # The rest of the monolithic loop's work for this cycle.
        yield Compute(config.housekeeping.sample(self._rng), label="housekeeping")

        # Write c-events to the actuators at the end of the computations.
        if writes:
            yield Compute(
                self.execution_model.output_write_cost(self._rng) * len(writes),
                label="actuate",
            )
            self._apply_outputs(writes)
