"""Platform integration: the three implementation schemes of the case study."""

from .base import ImplementedSystem, PlatformBundle, SchemeConfig, StimulusAction
from .interfacing import (
    EventInputBinding,
    InputInterfacing,
    LevelInputBinding,
    OutputBinding,
    OutputInterfacing,
)
from .interference import (
    InterferedConfig,
    InterferedSystem,
    InterferenceTaskConfig,
    default_interference_profile,
)
from .multi_threaded import MultiThreadedConfig, MultiThreadedSystem
from .single_threaded import SingleThreadedConfig, SingleThreadedSystem

__all__ = [
    "EventInputBinding",
    "ImplementedSystem",
    "InputInterfacing",
    "InterferedConfig",
    "InterferedSystem",
    "InterferenceTaskConfig",
    "LevelInputBinding",
    "MultiThreadedConfig",
    "MultiThreadedSystem",
    "OutputBinding",
    "OutputInterfacing",
    "PlatformBundle",
    "SchemeConfig",
    "SingleThreadedConfig",
    "SingleThreadedSystem",
    "StimulusAction",
    "default_interference_profile",
]
