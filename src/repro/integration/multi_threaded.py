"""Implementation Scheme 2: multi-threaded integration with FIFO queues.

From the paper:

    "This implementation uses multiple threads to read m-events from sensors
    and to write c-events to actuators.  In addition, a thread that executes
    CODE(M) is separately run to read i-events from the sensing threads, and
    to write o-events to the actuation threads. [...] the summation of the
    thread periods along the path of sensing-CODE(M)-actuation routines is
    less than 100 ms [...].  The communication among sensing/actuation threads
    and CODE(M) threads is implemented using FIFO queues."

Three periodic tasks are created — sensing, CODE(M) and actuation — connected
by two FIFO queues.  The default periods (10 ms + 25 ms + 10 ms = 45 ms) keep
the period sum comfortably below the 100 ms REQ1 deadline, as the paper's
scheme 2 does by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, Optional

from ..platform.kernel.time import ms
from ..platform.rtos.directives import Compute, Receive, Send
from ..platform.rtos.queue import MessageQueue
from .base import ImplementedSystem, SchemeConfig


@dataclass
class MultiThreadedConfig(SchemeConfig):
    """Configuration of the multi-threaded scheme."""

    sensing_period_us: int = ms(10)
    codem_period_us: int = ms(25)
    actuation_period_us: int = ms(10)
    sensing_priority: int = 4
    codem_priority: int = 3
    actuation_priority: int = 4
    input_queue_capacity: int = 16
    output_queue_capacity: int = 16

    @property
    def period_sum_us(self) -> int:
        """Sum of the thread periods along the sensing-CODE(M)-actuation path."""
        return self.sensing_period_us + self.codem_period_us + self.actuation_period_us


class MultiThreadedSystem(ImplementedSystem):
    """Scheme 2: sensing, CODE(M) and actuation threads communicating via queues."""

    scheme_name = "scheme2-multi-threaded"

    def __init__(self, bundle, artifacts, config: Optional[MultiThreadedConfig] = None) -> None:
        super().__init__(bundle, artifacts, config or MultiThreadedConfig())
        self.config: MultiThreadedConfig
        self.input_queue: Optional[MessageQueue] = None
        self.output_queue: Optional[MessageQueue] = None

    # ------------------------------------------------------------------
    def _create_tasks(self) -> None:
        config = self.config
        self.input_queue = self.scheduler.create_queue(
            "i_events", capacity=config.input_queue_capacity
        )
        self.output_queue = self.scheduler.create_queue(
            "o_events", capacity=config.output_queue_capacity
        )
        self.scheduler.create_task(
            "sensing",
            priority=config.sensing_priority,
            job_factory=self._sensing_job,
            period_us=config.sensing_period_us,
        )
        self.scheduler.create_task(
            "codem",
            priority=config.codem_priority,
            job_factory=self._codem_job,
            period_us=config.codem_period_us,
        )
        self.scheduler.create_task(
            "actuation",
            priority=config.actuation_priority,
            job_factory=self._actuation_job,
            period_us=config.actuation_period_us,
        )

    # ------------------------------------------------------------------
    # Task bodies
    # ------------------------------------------------------------------
    def _sensing_job(self) -> Generator[Any, Any, None]:
        """Sample every sensor and forward detected occurrences to CODE(M)."""
        yield Compute(self.execution_model.input_scan_cost(self._rng), label="sense")
        for occurrence in self._collect_inputs():
            yield Send(self.input_queue, occurrence)

    def _codem_job(self) -> Generator[Any, Any, None]:
        """Drain the input queue, run the generated code, forward output writes."""
        pending = []
        while True:
            item = yield Receive(self.input_queue, 0)
            if item is None:
                break
            pending.append(item)
        writes = yield from self._execute_code_cycle(pending, self.config.transitions_per_cycle)
        for write in writes:
            yield Send(self.output_queue, write)

    def _actuation_job(self) -> Generator[Any, Any, None]:
        """Drain the output queue and command the actuators."""
        writes = []
        while True:
            item = yield Receive(self.output_queue, 0)
            if item is None:
                break
            writes.append(item)
        if writes:
            yield Compute(
                self.execution_model.output_write_cost(self._rng) * len(writes),
                label="actuate",
            )
            self._apply_outputs(writes)
