"""Common machinery shared by the three implementation schemes.

An *implemented system* (Fig. 1-(3) of the paper) is CODE(M) plus the target
platform plus the interfacing code that connects them.  The scheme classes in
this package differ only in task topology; everything else — the platform
bundle, the generated-code runtime, the execution-time accounting, the
measurement probes and the m-event stimulus routing — lives here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..codegen.execution_model import ExecutionTimeModel
from ..codegen.generator import GeneratedArtifacts
from ..core.four_variables import FourVariableInterface, Trace, TraceRecorder
from ..core.instrumentation import MeasurementProbes, ProbeConfiguration
from ..core.sut import SystemUnderTest
from ..core.test_generation import Stimulus
from ..model.declarations import OutputWrite
from ..platform.environment import PatientEnvironment, PumpHardware
from ..platform.kernel.random import RandomSource
from ..platform.kernel.simulator import Simulator
from ..platform.kernel.time import US_PER_MODEL_TICK
from ..platform.rtos.directives import Compute
from ..platform.rtos.scheduler import RTOSScheduler
from .interfacing import InputInterfacing, OutputInterfacing

#: A callable that injects one m-event stimulus at an absolute platform time.
StimulusAction = Callable[[int], None]


@dataclass(frozen=True)
class EngineProfile:
    """A pluggable runtime engine: the kernel plus the trace recording path.

    The default engine is the optimised production one (``Simulator`` +
    ``TraceRecorder``); ``repro._reference.seed_engine.SEED_ENGINE`` is the
    frozen pre-optimisation engine kept as a byte-identity oracle.  The
    factories are duck-typed — anything with the ``Simulator`` /
    ``TraceRecorder`` surface works — so equivalence tests and benchmarks can
    run whole systems on either engine through
    :func:`repro.gpca.hardware.build_platform_bundle`.
    """

    name: str
    simulator_factory: Callable[[], Any]
    recorder_factory: Callable[[Callable[[], int]], Any]
    #: Optional RTOS-scheduler class override (None = production
    #: ``RTOSScheduler``).  The seed engine uses this to freeze the pre-rebuild
    #: scheduler hot path alongside its kernel and recorder.
    scheduler_class: Optional[Any] = None
    #: Optional wrapper applied to every concrete device class before
    #: instantiation (None = production device behaviour).  The seed engine
    #: substitutes the pre-rebuild sampling/latching implementations.
    device_wrapper: Optional[Callable[[type], type]] = None


#: The production engine: optimised kernel + columnar trace recorder.
DEFAULT_ENGINE = EngineProfile(
    name="default",
    simulator_factory=Simulator,
    recorder_factory=TraceRecorder,
)


@dataclass
class PlatformBundle:
    """Everything the integration layer needs from the platform and case study.

    The case-study package (``repro.gpca``) builds one of these per run: the
    simulator, the recorder, the concrete hardware and environment, the
    four-variable interface declaration, the interfacing code and the mapping
    from monitored variables to environment stimulus actions.
    """

    simulator: Simulator
    recorder: TraceRecorder
    hardware: PumpHardware
    environment: PatientEnvironment
    interface: FourVariableInterface
    input_interfacing: InputInterfacing
    output_interfacing: OutputInterfacing
    stimulus_actions: Dict[str, StimulusAction] = field(default_factory=dict)
    #: Scheduler class the integration layer should instantiate (None =
    #: production ``RTOSScheduler``); carried from the engine profile.
    scheduler_class: Optional[Any] = None


@dataclass
class SchemeConfig:
    """Configuration shared by every implementation scheme."""

    execution_model: ExecutionTimeModel = field(default_factory=ExecutionTimeModel)
    probes: ProbeConfiguration = field(default_factory=ProbeConfiguration.m_level)
    context_switch_us: int = 150
    #: How many transitions one CODE(M) invocation may execute (None = run to
    #: completion, the behaviour of a full generated step function).
    transitions_per_cycle: Optional[int] = None
    seed: int = 0
    #: Optional factory overriding ``artifacts.new_instance()`` as the CODE(M)
    #: executor — the injection point for the compiled-C backend
    #: (``repro.codegen.c_backend``).  The returned object must expose the
    #: ``GeneratedCode`` surface.
    code_factory: Optional[Callable[[], Any]] = None


class ImplementedSystem(SystemUnderTest):
    """Base class of the three implementation schemes."""

    scheme_name = "base"

    def __init__(
        self,
        bundle: PlatformBundle,
        artifacts: GeneratedArtifacts,
        config: Optional[SchemeConfig] = None,
    ) -> None:
        self.bundle = bundle
        self.artifacts = artifacts
        self.config = config or SchemeConfig()
        if self.config.code_factory is not None:
            self.code = self.config.code_factory()
        else:
            self.code = artifacts.new_instance()
        scheduler_class = bundle.scheduler_class or RTOSScheduler
        self.scheduler = scheduler_class(
            bundle.simulator, context_switch_us=self.config.context_switch_us
        )
        self.probes = MeasurementProbes(bundle.recorder, self.config.probes)
        self.execution_model = self.config.execution_model
        self._rng = RandomSource(self.config.seed).stream(f"exec:{self.scheme_name}")
        self._code_clock_anchor_us = 0
        self._built = False
        self.name = self.scheme_name

    # ------------------------------------------------------------------
    # SystemUnderTest interface
    # ------------------------------------------------------------------
    @property
    def interface(self) -> FourVariableInterface:
        return self.bundle.interface

    @property
    def trace(self) -> Trace:
        return self.bundle.recorder.trace

    def apply_stimulus(self, stimulus: Stimulus) -> None:
        action = self.bundle.stimulus_actions.get(stimulus.variable)
        if action is None:
            raise KeyError(
                f"no environment action registered for monitored variable "
                f"{stimulus.variable!r}"
            )
        action(stimulus.at_us)

    def run(self, until_us: int) -> None:
        if not self._built:
            self.build()
        self.bundle.simulator.run_until(until_us)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def build(self) -> None:
        """Create the scheme's tasks, start the device drivers and the scheduler."""
        if self._built:
            return
        self._built = True
        self.bundle.hardware.start()
        self._create_tasks()
        self.scheduler.start()

    def _create_tasks(self) -> None:  # pragma: no cover - abstract hook
        raise NotImplementedError

    # ------------------------------------------------------------------
    # CODE(M) execution (shared by all schemes)
    # ------------------------------------------------------------------
    def _execute_code_cycle(
        self,
        pending_inputs: Sequence[Tuple[str, Any]],
        transitions_limit: Optional[int],
    ) -> Generator[Any, Any, List[OutputWrite]]:
        """One invocation of CODE(M) as a directive-yielding sub-generator.

        Latches the pending i-variable occurrences (recording the i-events),
        advances the model clock by the platform time elapsed since the last
        invocation, then executes up to ``transitions_limit`` transitions,
        charging the execution-time model's CPU cost for each and recording
        transition start/end probes plus o-events as the writes happen.

        Returns the output writes performed so the calling scheme can route
        them (directly to devices in scheme 1, to the actuation queue in
        schemes 2 and 3).
        """
        # Probe gating is hoisted out of the loop: the configuration is
        # immutable for the system's lifetime, so the per-event facade calls
        # collapse to direct recorder calls (or nothing) per cycle.
        probes = self.probes
        configuration = probes.configuration
        record_io = configuration.record_io_events
        record_transitions = configuration.record_transitions
        recorder = probes.recorder
        code = self.code
        for variable, value in pending_inputs:
            code.set_input(variable, value)
            if record_io:
                recorder.record_i(variable, value)
        now = self.bundle.simulator._clock._now_us
        elapsed_us = now - self._code_clock_anchor_us
        ticks = elapsed_us // US_PER_MODEL_TICK
        if ticks > 0:
            code.advance_clock(ticks)
            self._code_clock_anchor_us += ticks * US_PER_MODEL_TICK

        writes: List[OutputWrite] = []
        fired = 0
        while transitions_limit is None or fired < transitions_limit:
            row = code.enabled_transition()
            if row is None:
                if fired == 0:
                    yield Compute(
                        self.execution_model.idle_scan_cost(self._rng), label="idle_scan"
                    )
                break
            if record_transitions:
                recorder.record_transition_start(row.name)
            yield Compute(
                self.execution_model.transition_cost(row, self._rng), label=row.name
            )
            row_writes = code.fire(row)
            if record_transitions:
                recorder.record_transition_end(row.name)
            for write in row_writes:
                if record_io:
                    recorder.record_o(write.variable, write.value)
                writes.append(write)
            fired += 1
        if transitions_limit is None or fired < transitions_limit:
            # The invocation reached quiescence: discard unconsumed input
            # occurrences like the generated step function does.  When the
            # per-cycle transition limit was hit, latched inputs are kept for
            # the next invocation (the event has not been presented to the
            # chart yet).
            self.code.clear_inputs()
        return writes

    def _collect_inputs(self) -> List[Tuple[str, Any]]:
        """Run the input interfacing code (zero simulated time; callers charge cost)."""
        return self.bundle.input_interfacing.collect()

    def _apply_outputs(self, writes: Sequence[OutputWrite]) -> int:
        """Run the output interfacing code (zero simulated time; callers charge cost)."""
        return self.bundle.output_interfacing.apply_all(writes)

    # ------------------------------------------------------------------
    # Diagnostics
    # ------------------------------------------------------------------
    def task_statistics(self) -> Dict[str, Any]:
        """Per-task scheduler statistics, keyed by task name (for reports/tests)."""
        return {task.name: task.stats for task in self.scheduler.tasks}

    def telemetry_snapshot(self) -> Dict[str, int]:
        """Kernel + scheduler lifetime counters in one flat dict.

        The pull surface for :mod:`repro.obs`: the campaign worker calls this
        once after a run and folds the counts into the metrics registry, so
        the simulation itself never touches telemetry.  Engines without the
        counters (the frozen seed kernel) report what they have.
        """
        snapshot: Dict[str, int] = {}
        simulator = self.bundle.simulator
        counters = getattr(simulator, "counters", None)
        if counters is not None:
            snapshot.update(counters())
        else:  # seed engine: processed count only
            snapshot["kernel_events_processed"] = simulator.events_processed
        stats = getattr(self.scheduler, "scheduler_stats", None)
        if stats is not None:
            snapshot.update(stats())
        return snapshot

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(scheme={self.scheme_name!r}, built={self._built})"
