"""Input/output interfacing code between CODE(M) and the device drivers.

Platform integration (step (3) of Fig. 1 in the paper) adds exactly this kind
of code: "input interfacing code converts pressing the bolus request button
[...] into updating the generated boolean variable of CODE(M)".  The bindings
here are that interfacing code for the simulated platform:

* :class:`EventInputBinding` — drains an edge-triggered input device and turns
  each detected edge into an i-variable occurrence;
* :class:`LevelInputBinding` — watches a sampled level sensor and produces an
  i-variable occurrence on the configured edge (e.g. reservoir becomes empty);
* :class:`OutputBinding` — forwards an o-variable write to its actuator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..model.declarations import OutputWrite
from ..platform.devices.device import EventInputDevice, StateInputDevice


class EventInputBinding:
    """Maps detected edges of an :class:`EventInputDevice` to an input variable."""

    def __init__(self, device: EventInputDevice, input_variable: str) -> None:
        self.device = device
        self.input_variable = input_variable

    def collect(self) -> List[Tuple[str, Any]]:
        """Drain the device driver buffer into i-variable occurrences."""
        # Interfacing code is entitled to the driver buffer (it *is* the
        # driver's consumer); the empty check avoids a poll call and two list
        # allocations on the overwhelmingly common idle cycle.
        if not self.device._buffer:
            return []
        variable = self.input_variable
        return [(variable, event.value) for event in self.device.poll()]


class LevelInputBinding:
    """Maps a level-sensor edge (e.g. becomes True) to an input variable occurrence."""

    def __init__(
        self,
        device: StateInputDevice,
        input_variable: str,
        *,
        trigger_value: Any = True,
    ) -> None:
        self.device = device
        self.input_variable = input_variable
        self.trigger_value = trigger_value
        self._previous: Any = device.read()

    def collect(self) -> List[Tuple[str, Any]]:
        current = self.device._latched_value
        if current == self._previous:
            return []
        occurrences: List[Tuple[str, Any]] = []
        if current == self.trigger_value and self._previous != self.trigger_value:
            occurrences.append((self.input_variable, True))
        self._previous = current
        return occurrences


class InputInterfacing:
    """The complete input-side interfacing code: every input binding of the system."""

    def __init__(self, bindings: Optional[Sequence[object]] = None) -> None:
        self._bindings: List[object] = list(bindings or ())

    def add(self, binding: object) -> None:
        self._bindings.append(binding)

    def collect(self) -> List[Tuple[str, Any]]:
        """Poll every binding and return all pending i-variable occurrences."""
        # This runs once per sensing cycle; on the overwhelmingly common idle
        # cycle every binding returns [].  Inlining the two built-in bindings'
        # idle checks skips a method call and a list allocation per binding
        # per cycle; anything else (e.g. a test double) takes the general
        # collect() path unchanged.
        occurrences: List[Tuple[str, Any]] = []
        for binding in self._bindings:
            cls = binding.__class__
            if cls is EventInputBinding:
                if not binding.device._buffer:
                    continue
            elif cls is LevelInputBinding:
                if binding.device._latched_value == binding._previous:
                    continue
            occurrences.extend(binding.collect())
        return occurrences

    @property
    def bindings(self) -> Sequence[object]:
        return tuple(self._bindings)


@dataclass(frozen=True)
class OutputBinding:
    """Maps an o-variable to the output device that realises it."""

    output_variable: str
    device: Any  # OutputDevice; typed loosely to allow test doubles


class OutputInterfacing:
    """The complete output-side interfacing code."""

    def __init__(self, bindings: Optional[Sequence[OutputBinding]] = None) -> None:
        self._by_variable: Dict[str, OutputBinding] = {}
        for binding in bindings or ():
            self.add(binding)
        self.unmapped_writes = 0

    def add(self, binding: OutputBinding) -> None:
        if binding.output_variable in self._by_variable:
            raise ValueError(f"output variable {binding.output_variable!r} already bound")
        self._by_variable[binding.output_variable] = binding

    def apply(self, write: OutputWrite) -> bool:
        """Forward one o-variable write to its device.

        Returns ``False`` (and counts it) when the variable has no bound
        device — legal for model outputs that are not actuated on this
        hardware variant (e.g. a log-only output).
        """
        binding = self._by_variable.get(write.variable)
        if binding is None:
            self.unmapped_writes += 1
            return False
        binding.device.write(write.value)
        return True

    def apply_all(self, writes: Sequence[OutputWrite]) -> int:
        """Apply several writes; returns how many reached a device."""
        return sum(1 for write in writes if self.apply(write))

    @property
    def bound_variables(self) -> List[str]:
        return list(self._by_variable.keys())
