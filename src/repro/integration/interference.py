"""Implementation Scheme 3: multi-threaded integration plus interfering threads.

From the paper:

    "Often, there are additional threads in addition to threads used by the
    model-based implementation (e.g., network drivers on infusion pump
    systems).  [...]  In our case study, three additional threads are
    scheduled.  One of the threads has the same priority with the CODE(M)
    thread, and the other two threads have a higher and a lower priority than
    the CODE(M) thread respectively.  These threads do not communicate with
    the CODE(M), but execute their own independent tasks."

Scheme 3 therefore reuses the scheme-2 topology and adds a configurable set of
periodic CPU-burning tasks.  The default interference profile (a heavy
higher-priority thread plus an equal- and a lower-priority thread) is what
starves the CODE(M) thread badly enough to produce the large violations and
MAX (time-out) samples of the paper's Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Tuple

from ..platform.kernel.random import JitterModel, uniform
from ..platform.kernel.time import ms
from ..platform.rtos.directives import Compute
from .multi_threaded import MultiThreadedConfig, MultiThreadedSystem


@dataclass(frozen=True)
class InterferenceTaskConfig:
    """One interfering thread: its priority relative to the CODE(M) thread,
    its period and how much CPU it burns per activation."""

    name: str
    #: Priority offset relative to the CODE(M) thread (+1 = higher, 0 = equal, -1 = lower).
    priority_offset: int
    period_us: int
    burst: JitterModel

    @property
    def utilization(self) -> float:
        """Nominal CPU utilisation of this thread."""
        if self.period_us <= 0:
            return 0.0
        return self.burst.nominal_us / self.period_us


def default_interference_profile() -> Tuple[InterferenceTaskConfig, ...]:
    """The three interfering threads of the case study.

    The higher-priority thread models a network/communication driver with a
    heavy duty cycle; the equal-priority thread models a logging service; the
    lower-priority thread models background diagnostics.
    """
    return (
        InterferenceTaskConfig(
            name="net_driver",
            priority_offset=+1,
            period_us=ms(60),
            burst=uniform(ms(50), ms(14)),
        ),
        InterferenceTaskConfig(
            name="logger",
            priority_offset=0,
            period_us=ms(90),
            burst=uniform(ms(30), ms(8)),
        ),
        InterferenceTaskConfig(
            name="diagnostics",
            priority_offset=-1,
            period_us=ms(200),
            burst=uniform(ms(25), ms(8)),
        ),
    )


@dataclass
class InterferedConfig(MultiThreadedConfig):
    """Configuration of scheme 3: scheme 2 plus interfering threads."""

    interference: Tuple[InterferenceTaskConfig, ...] = field(
        default_factory=default_interference_profile
    )

    @property
    def interference_utilization(self) -> float:
        """Total nominal CPU utilisation of the interfering threads."""
        return sum(task.utilization for task in self.interference)

    def scaled_interference(self, factor: float) -> "InterferedConfig":
        """A copy whose interference bursts are scaled by ``factor`` (ablation)."""
        scaled = tuple(
            InterferenceTaskConfig(
                name=task.name,
                priority_offset=task.priority_offset,
                period_us=task.period_us,
                burst=task.burst.scaled(factor),
            )
            for task in self.interference
        )
        clone = InterferedConfig(**{**self.__dict__})
        clone.interference = scaled
        return clone


class InterferedSystem(MultiThreadedSystem):
    """Scheme 3: the scheme-2 pipeline competing with unrelated threads."""

    scheme_name = "scheme3-interfered"

    def __init__(self, bundle, artifacts, config: Optional[InterferedConfig] = None) -> None:
        super().__init__(bundle, artifacts, config or InterferedConfig())
        self.config: InterferedConfig

    def _create_tasks(self) -> None:
        super()._create_tasks()
        for index, task_config in enumerate(self.config.interference):
            priority = max(0, self.config.codem_priority + task_config.priority_offset)
            self.scheduler.create_task(
                task_config.name,
                priority=priority,
                job_factory=self._interference_job_factory(task_config, index),
                period_us=task_config.period_us,
                # Stagger releases a little so interferers do not all align with
                # the pipeline tasks at time zero.
                offset_us=(index + 1) * ms(3),
            )

    def _interference_job_factory(self, task_config: InterferenceTaskConfig, index: int):
        rng = self._interference_rng(task_config.name, index)

        def job() -> Generator[Any, Any, None]:
            yield Compute(task_config.burst.sample(rng), label=f"burst:{task_config.name}")

        return job

    def _interference_rng(self, name: str, index: int):
        from ..platform.kernel.random import RandomSource

        return RandomSource(self.config.seed).stream(f"interference:{name}:{index}")
