"""Model-level verification of bounded-response timing requirements.

The paper verifies REQ1 on the Stateflow model with Simulink Design Verifier
("the value of o-MotorState changes from zero to one within 100 ms when
i-BolusReq is triggered while the system is in Idle state").  This module is
the substitute: an explicit-state bounded checker for *bounded response*
properties of the form

    whenever event ``e`` is accepted, output ``v`` takes value ``x``
    within ``d`` model ticks.

Nondeterminism handled by the checker:

* ``before(n)`` transitions may fire at any tick in ``[0, n]`` after their
  source state is entered (they are forced at the bound);
* the trigger event may arrive in *any* reachable stable state in which it is
  accepted (unless the requirement pins a specific state).

The checker explores every admissible resolution of that nondeterminism up to
the deadline and reports the worst-case response time plus a witness path for
violations.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Set, Tuple

from .statechart import Statechart, Transition


@dataclass(frozen=True)
class BoundedResponseRequirement:
    """A model-level bounded response requirement.

    ``trigger_event`` is an input event; the response is observed when
    ``response_variable`` is assigned ``response_value``.  ``deadline_ticks``
    is measured on the model clock (1 ms per tick).  ``trigger_state``
    optionally restricts the requirement to triggers accepted in one state
    (REQ1 names the Idle state).
    """

    requirement_id: str
    trigger_event: str
    response_variable: str
    response_value: Any
    deadline_ticks: int
    trigger_state: Optional[str] = None
    description: str = ""

    def __post_init__(self) -> None:
        if self.deadline_ticks < 0:
            raise ValueError("deadline must be non-negative")


@dataclass
class VerificationResult:
    """Outcome of checking one requirement against the model."""

    requirement: BoundedResponseRequirement
    passed: bool
    worst_case_ticks: Optional[int]
    explored_configurations: int
    trigger_states: List[str] = field(default_factory=list)
    witness: List[str] = field(default_factory=list)

    @property
    def margin_ticks(self) -> Optional[int]:
        """Slack between the worst case and the deadline (None when violated)."""
        if not self.passed or self.worst_case_ticks is None:
            return None
        return self.requirement.deadline_ticks - self.worst_case_ticks

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        worst = "unbounded" if self.worst_case_ticks is None else f"{self.worst_case_ticks} ticks"
        return (
            f"[{verdict}] {self.requirement.requirement_id}: worst-case response {worst} "
            f"(deadline {self.requirement.deadline_ticks} ticks, "
            f"{self.explored_configurations} configurations explored)"
        )


# ----------------------------------------------------------------------
# Reachability of stable states
# ----------------------------------------------------------------------
def reachable_states(chart: Statechart) -> List[str]:
    """States reachable from the initial state treating every transition as possible."""
    chart.check_references()
    seen: Set[str] = {chart.initial_state}
    frontier = deque([chart.initial_state])
    while frontier:
        state = frontier.popleft()
        for transition in chart.transitions_from(state):
            if transition.target not in seen:
                seen.add(transition.target)
                frontier.append(transition.target)
    return [name for name in chart.state_names if name in seen]


# ----------------------------------------------------------------------
# Bounded response checking
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _Config:
    """One explored configuration: the state, its local clock, and elapsed time
    since the trigger event."""

    state: str
    elapsed_in_state: int
    since_trigger: int


class BoundedResponseChecker:
    """Explicit-state checker for :class:`BoundedResponseRequirement`."""

    def __init__(self, chart: Statechart) -> None:
        chart.check_references()
        self.chart = chart

    # ------------------------------------------------------------------
    def check(self, requirement: BoundedResponseRequirement) -> VerificationResult:
        trigger_states = self._trigger_states(requirement)
        worst_case = 0
        explored = 0
        for state in trigger_states:
            outcome = self._check_from(state, requirement)
            explored += outcome[1]
            if outcome[0] is None:
                return VerificationResult(
                    requirement=requirement,
                    passed=False,
                    worst_case_ticks=None,
                    explored_configurations=explored,
                    trigger_states=trigger_states,
                    witness=outcome[2],
                )
            worst_case = max(worst_case, outcome[0])
        passed = worst_case <= requirement.deadline_ticks and bool(trigger_states)
        return VerificationResult(
            requirement=requirement,
            passed=passed,
            worst_case_ticks=worst_case if trigger_states else None,
            explored_configurations=explored,
            trigger_states=trigger_states,
            witness=[] if passed else [f"worst-case response {worst_case} ticks"],
        )

    def check_all(self, requirements: Sequence[BoundedResponseRequirement]) -> List[VerificationResult]:
        return [self.check(requirement) for requirement in requirements]

    # ------------------------------------------------------------------
    def _trigger_states(self, requirement: BoundedResponseRequirement) -> List[str]:
        """States in which the trigger event is accepted (restricted if pinned)."""
        states = []
        for state in reachable_states(self.chart):
            if requirement.trigger_state is not None and state != requirement.trigger_state:
                continue
            accepts = any(
                transition.event == requirement.trigger_event
                for transition in self.chart.transitions_from(state)
            )
            if accepts:
                states.append(state)
        return states

    def _check_from(
        self, trigger_state: str, requirement: BoundedResponseRequirement
    ) -> Tuple[Optional[int], int, List[str]]:
        """Worst-case response from one trigger state.

        Returns ``(worst_case_ticks, explored, witness)``; ``worst_case_ticks``
        is ``None`` when some path exceeds the deadline without responding.
        """
        deadline = requirement.deadline_ticks
        initial_transition = self._event_transition(trigger_state, requirement.trigger_event)
        if initial_transition is None:
            return 0, 0, []

        worst_case = 0
        explored = 0
        visited: Set[_Config] = set()

        # The event transition itself fires instantaneously when the event arrives.
        start_configs, responded = self._apply_transition(
            _Config(trigger_state, 0, 0), initial_transition, requirement
        )
        if responded:
            return 0, 1, []
        frontier = deque(start_configs)
        for config in start_configs:
            visited.add(config)

        while frontier:
            config = frontier.popleft()
            explored += 1
            if config.since_trigger > deadline:
                witness = [
                    f"trigger in state {trigger_state!r}",
                    f"no response after {config.since_trigger} ticks "
                    f"(deadline {deadline}), stuck near state {config.state!r}",
                ]
                return None, explored, witness
            worst_case = max(worst_case, config.since_trigger)
            for successor, responded in self._successors(config, requirement):
                if responded:
                    worst_case = max(worst_case, successor.since_trigger)
                    continue
                if successor in visited:
                    continue
                visited.add(successor)
                frontier.append(successor)
        return worst_case, explored, []

    # ------------------------------------------------------------------
    def _event_transition(self, state: str, event: str) -> Optional[Transition]:
        for transition in self.chart.transitions_from(state):
            if transition.event == event and transition.guard is None:
                return transition
            if transition.event == event and transition.guard is not None:
                # Guards over local variables are evaluated with initial values;
                # a data-dependent trigger is treated conservatively as enabled.
                return transition
        return None

    def _apply_transition(
        self, config: _Config, transition: Transition, requirement: BoundedResponseRequirement
    ) -> Tuple[List[_Config], bool]:
        """Apply a transition instantaneously; detect whether it responds."""
        for action in transition.actions:
            if action.variable == requirement.response_variable and not callable(action.value):
                if action.value == requirement.response_value:
                    return [], True
        successor = _Config(transition.target, 0, config.since_trigger)
        return [successor], False

    def _successors(
        self, config: _Config, requirement: BoundedResponseRequirement
    ) -> List[Tuple[_Config, bool]]:
        """All admissible next configurations (one model tick or a temporal firing)."""
        successors: List[Tuple[_Config, bool]] = []
        forced = False
        for transition in self.chart.transitions_from(config.state):
            if transition.event is not None or transition.temporal is None:
                continue
            temporal = transition.temporal
            if temporal.may_fire(config.elapsed_in_state):
                applied, responded = self._apply_transition(config, transition, requirement)
                if responded:
                    successors.append((config, True))
                else:
                    successors.extend((successor, False) for successor in applied)
            if temporal.must_fire(config.elapsed_in_state):
                forced = True
        if not forced:
            # Letting one more tick pass is admissible only while no temporal
            # bound forces a firing at this instant.
            successors.append(
                (
                    _Config(config.state, config.elapsed_in_state + 1, config.since_trigger + 1),
                    False,
                )
            )
        return successors
