"""Fluent builder for timed statecharts.

The builder keeps model definitions readable::

    chart = (
        StatechartBuilder("infusion_pump")
        .input_events("i-BolusReq", "i-EmptyAlarm", "i-ClearAlarm")
        .output_variable("o-MotorState", initial=0)
        .output_variable("o-BuzzerState", initial=0)
        .state("Idle", initial=True)
        .state("BolusRequested")
        .state("Infusion")
        .state("EmptyAlarm")
        .transition("t_request", "Idle", "BolusRequested", event="i-BolusReq")
        .transition(
            "t_start", "BolusRequested", "Infusion",
            temporal=before(100), assign={"o-MotorState": 1},
        )
        .build()
    )
"""

from __future__ import annotations

from typing import Any, Mapping, Optional

from .declarations import Assign, InputEvent, LocalVariable, OutputVariable
from .statechart import GuardFn, State, Statechart, Transition
from .temporal import TemporalTrigger


class StatechartBuilder:
    """Incrementally assembles a :class:`Statechart` and validates it on build."""

    def __init__(self, name: str) -> None:
        self._chart = Statechart(name)
        self._transition_count = 0

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def input_event(self, name: str, description: str = "") -> "StatechartBuilder":
        self._chart.add_input_event(InputEvent(name, description))
        return self

    def input_events(self, *names: str) -> "StatechartBuilder":
        for name in names:
            self.input_event(name)
        return self

    def output_variable(self, name: str, initial: Any = 0, description: str = "") -> "StatechartBuilder":
        self._chart.add_output_variable(OutputVariable(name, initial, description))
        return self

    def local_variable(self, name: str, initial: Any = 0, description: str = "") -> "StatechartBuilder":
        self._chart.add_local_variable(LocalVariable(name, initial, description))
        return self

    def state(self, name: str, initial: bool = False, description: str = "") -> "StatechartBuilder":
        self._chart.add_state(State(name, description), initial=initial)
        return self

    def states(self, *names: str) -> "StatechartBuilder":
        for name in names:
            self.state(name)
        return self

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def transition(
        self,
        name: str,
        source: str,
        target: str,
        *,
        event: Optional[str] = None,
        temporal: Optional[TemporalTrigger] = None,
        guard: Optional[GuardFn] = None,
        assign: Optional[Mapping[str, Any]] = None,
        priority: Optional[int] = None,
        description: str = "",
    ) -> "StatechartBuilder":
        """Add a transition.

        ``assign`` maps variable names to values (or one-argument callables of
        the local-variable map); entries become :class:`Assign` actions in
        insertion order.  ``priority`` defaults to declaration order.
        """
        actions = tuple(Assign(variable, value) for variable, value in (assign or {}).items())
        if priority is None:
            priority = self._transition_count
        self._transition_count += 1
        self._chart.add_transition(
            Transition(
                name=name,
                source=source,
                target=target,
                event=event,
                temporal=temporal,
                guard=guard,
                actions=actions,
                priority=priority,
                description=description,
            )
        )
        return self

    # ------------------------------------------------------------------
    # Build
    # ------------------------------------------------------------------
    def build(self) -> Statechart:
        """Validate references and return the statechart."""
        self._chart.check_references()
        return self._chart
