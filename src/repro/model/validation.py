"""Well-formedness validation of statecharts.

The code generator refuses malformed charts; this module produces the findings
it relies on, in a form a modeller can act on.  Findings are split into
*errors* (the chart cannot be generated / verified meaningfully) and
*warnings* (legal but suspicious constructs).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Set

from .statechart import Statechart, StatechartError
from .temporal import At, Before
from .verification import reachable_states


class Severity(enum.Enum):
    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One validation finding."""

    severity: Severity
    code: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - formatting helper
        return f"{self.severity.value.upper()} [{self.code}] {self.message}"


def validate_statechart(chart: Statechart) -> List[Finding]:
    """Return all validation findings for ``chart`` (empty list = clean)."""
    findings: List[Finding] = []

    try:
        chart.check_references()
    except StatechartError as exc:
        findings.append(Finding(Severity.ERROR, "REF", str(exc)))
        return findings

    findings.extend(_check_transitions(chart))
    findings.extend(_check_reachability(chart))
    findings.extend(_check_usage(chart))
    findings.extend(_check_determinism(chart))
    return findings


def assert_valid(chart: Statechart) -> List[Finding]:
    """Validate and raise :class:`StatechartError` when any error finding exists.

    Warnings are returned so callers can surface them.
    """
    findings = validate_statechart(chart)
    errors = [finding for finding in findings if finding.severity is Severity.ERROR]
    if errors:
        details = "; ".join(str(error) for error in errors)
        raise StatechartError(f"statechart {chart.name!r} is malformed: {details}")
    return [finding for finding in findings if finding.severity is Severity.WARNING]


# ----------------------------------------------------------------------
# Individual checks
# ----------------------------------------------------------------------
def _check_transitions(chart: Statechart) -> List[Finding]:
    findings: List[Finding] = []
    for transition in chart.transitions:
        if transition.event is not None and transition.temporal is not None:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "TRIGGER",
                    f"transition {transition.name!r} has both an event and a temporal "
                    "trigger; split it into two transitions",
                )
            )
        if transition.event is None and transition.temporal is None:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "ALWAYS",
                    f"transition {transition.name!r} has no trigger and will fire "
                    "immediately whenever its guard holds",
                )
            )
        if isinstance(transition.temporal, At) and transition.temporal.ticks == 0:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "AT0",
                    f"transition {transition.name!r} uses at(0); it behaves like an "
                    "immediate transition",
                )
            )
        if isinstance(transition.temporal, Before) and transition.temporal.ticks == 0:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "BEFORE0",
                    f"transition {transition.name!r} uses before(0); the bound allows "
                    "no implementation latency at all",
                )
            )
        if transition.source == transition.target and transition.temporal is None and transition.event is None:
            findings.append(
                Finding(
                    Severity.ERROR,
                    "SELFLOOP",
                    f"transition {transition.name!r} is an untriggered self-loop "
                    "(zero-time livelock)",
                )
            )
    return findings


def _check_reachability(chart: Statechart) -> List[Finding]:
    findings: List[Finding] = []
    reachable = set(reachable_states(chart))
    for state in chart.state_names:
        if state not in reachable:
            findings.append(
                Finding(Severity.WARNING, "UNREACHABLE", f"state {state!r} is unreachable")
            )
    for state in chart.state_names:
        if not chart.transitions_from(state):
            findings.append(
                Finding(
                    Severity.WARNING,
                    "SINK",
                    f"state {state!r} has no outgoing transitions (terminal state)",
                )
            )
    return findings


def _check_usage(chart: Statechart) -> List[Finding]:
    findings: List[Finding] = []
    used_events: Set[str] = {t.event for t in chart.transitions if t.event is not None}
    for event in chart.input_events:
        if event.name not in used_events:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "UNUSED_EVENT",
                    f"input event {event.name!r} is never used by a transition",
                )
            )
    assigned: Set[str] = set()
    for transition in chart.transitions:
        for action in transition.actions:
            assigned.add(action.variable)
    for variable in chart.output_variables:
        if variable.name not in assigned:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "UNUSED_OUTPUT",
                    f"output variable {variable.name!r} is never assigned",
                )
            )
    return findings


def _check_determinism(chart: Statechart) -> List[Finding]:
    findings: List[Finding] = []
    for state in chart.state_names:
        by_event: Dict[str, int] = {}
        for transition in chart.transitions_from(state):
            if transition.event is None or transition.guard is not None:
                continue
            by_event[transition.event] = by_event.get(transition.event, 0) + 1
        for event, count in by_event.items():
            if count > 1:
                findings.append(
                    Finding(
                        Severity.WARNING,
                        "NONDET",
                        f"state {state!r} has {count} unguarded transitions on event "
                        f"{event!r}; only the highest-priority one can ever fire",
                    )
                )
    return findings
