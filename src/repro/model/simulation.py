"""Model-level executor with zero-time (instantaneous) transition semantics.

This is the reference semantics the generated code must preserve *functionally*
and against which the implemented system's *timing* deviates.  Characteristics:

* Input events are processed instantaneously: a macro-step (run-to-completion
  chain of enabled transitions) takes zero model time.
* Temporal triggers are evaluated against the state-local clock in model ticks
  (1 ms, the paper's ``E_CLK``); the executor resolves ``before(n)`` eagerly.
* The executor records every transition firing and output change with its tick
  timestamp, so model-level traces can be compared against implementation
  traces (Fig. 3-(a) vs Fig. 3-(b) of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .declarations import OutputWrite
from .statechart import Statechart, Transition


class ModelExecutionError(RuntimeError):
    """Raised on executor misuse (unknown events, runaway transition chains)."""


@dataclass(frozen=True)
class OutputChange:
    """An output variable assignment performed by the model."""

    variable: str
    value: Any
    tick: int
    transition: str


@dataclass(frozen=True)
class TransitionFiring:
    """A transition taken by the model at a given tick."""

    transition: str
    source: str
    target: str
    tick: int


@dataclass
class ScenarioResult:
    """Outcome of running a stimulus scenario on the model."""

    output_changes: List[OutputChange] = field(default_factory=list)
    firings: List[TransitionFiring] = field(default_factory=list)
    final_state: str = ""
    final_outputs: Dict[str, Any] = field(default_factory=dict)

    def first_change(self, variable: str, value: Any = None) -> Optional[OutputChange]:
        """First change of ``variable`` (optionally to a specific value)."""
        for change in self.output_changes:
            if change.variable != variable:
                continue
            if value is not None and change.value != value:
                continue
            return change
        return None


class ModelExecutor:
    """Executes a statechart with instantaneous transition semantics."""

    #: Safety bound on the number of transitions in one macro-step.
    MAX_CHAIN = 64

    def __init__(self, chart: Statechart) -> None:
        chart.check_references()
        self.chart = chart
        self.current_state: str = chart.initial_state
        self.current_tick: int = 0
        self.state_entered_tick: int = 0
        self.outputs: Dict[str, Any] = chart.initial_outputs()
        self.locals: Dict[str, Any] = chart.initial_locals()
        self.output_changes: List[OutputChange] = []
        self.firings: List[TransitionFiring] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def elapsed_in_state(self) -> int:
        """Model ticks spent in the current state."""
        return self.current_tick - self.state_entered_tick

    def reset(self) -> None:
        """Return to the initial configuration and clear history."""
        self.current_state = self.chart.initial_state
        self.current_tick = 0
        self.state_entered_tick = 0
        self.outputs = self.chart.initial_outputs()
        self.locals = self.chart.initial_locals()
        self.output_changes = []
        self.firings = []

    def _guard_context(self) -> Dict[str, Any]:
        context = dict(self.locals)
        context.update(self.outputs)
        return context

    # ------------------------------------------------------------------
    # Stepping
    # ------------------------------------------------------------------
    def inject(self, event_name: str) -> List[OutputWrite]:
        """Process one input event instantaneously (a macro-step).

        Returns the output writes performed during the macro-step.
        """
        if not self.chart.has_input_event(event_name):
            raise ModelExecutionError(
                f"model {self.chart.name!r} has no input event {event_name!r}"
            )
        writes = []
        transition = self._enabled_transition(event=event_name)
        if transition is not None:
            writes.extend(self._fire(transition))
            writes.extend(self._run_eager_chain())
        return writes

    def advance(self, ticks: int) -> List[OutputWrite]:
        """Advance model time by ``ticks``, firing temporal transitions as they
        become enabled.  Returns the output writes performed."""
        if ticks < 0:
            raise ModelExecutionError("cannot advance by a negative number of ticks")
        writes: List[OutputWrite] = []
        target_tick = self.current_tick + ticks
        writes.extend(self._run_eager_chain())
        while self.current_tick < target_tick:
            next_firing = self._next_temporal_firing_tick()
            if next_firing is None or next_firing > target_tick:
                self.current_tick = target_tick
                break
            self.current_tick = max(self.current_tick, next_firing)
            transition = self._enabled_transition()
            if transition is None:
                # A temporal bound was reached but its guard is false; move one
                # tick forward so the loop cannot livelock on the same instant.
                self.current_tick = min(self.current_tick + 1, target_tick)
                continue
            writes.extend(self._fire(transition))
            writes.extend(self._run_eager_chain())
        return writes

    def run_scenario(
        self,
        stimuli: Iterable[Tuple[int, str]],
        horizon_ticks: Optional[int] = None,
    ) -> ScenarioResult:
        """Run a sequence of ``(tick, event)`` stimuli from the initial state.

        The executor is reset first.  ``horizon_ticks`` extends the run beyond
        the last stimulus so that pending temporal behaviour (e.g. the 4000 ms
        bolus completion) is observed.
        """
        self.reset()
        ordered = sorted(stimuli, key=lambda item: item[0])
        for tick, event in ordered:
            if tick < self.current_tick:
                raise ModelExecutionError("stimuli must be in non-decreasing tick order")
            self.advance(tick - self.current_tick)
            self.inject(event)
        if horizon_ticks is not None and horizon_ticks > self.current_tick:
            self.advance(horizon_ticks - self.current_tick)
        return ScenarioResult(
            output_changes=list(self.output_changes),
            firings=list(self.firings),
            final_state=self.current_state,
            final_outputs=dict(self.outputs),
        )

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _enabled_transition(self, event: Optional[str] = None) -> Optional[Transition]:
        """Highest-priority enabled transition out of the current state.

        With ``event`` given, only event-triggered transitions on that event
        are considered; otherwise only temporal transitions are considered
        (eager semantics).
        """
        context = self._guard_context()
        for transition in self.chart.transitions_from(self.current_state):
            if event is not None:
                if transition.event != event:
                    continue
            else:
                if transition.event is not None or transition.temporal is None:
                    continue
                if not transition.temporal.eager_fire(self.elapsed_in_state):
                    continue
            if transition.guard is not None and not transition.guard(context):
                continue
            return transition
        return None

    def _run_eager_chain(self) -> List[OutputWrite]:
        """Fire eagerly-enabled temporal transitions until quiescence."""
        writes: List[OutputWrite] = []
        for _ in range(self.MAX_CHAIN):
            transition = self._enabled_transition()
            if transition is None:
                return writes
            writes.extend(self._fire(transition))
        raise ModelExecutionError(
            f"macro-step exceeded {self.MAX_CHAIN} chained transitions in state "
            f"{self.current_state!r}; the model likely has a zero-time loop"
        )

    def _next_temporal_firing_tick(self) -> Optional[int]:
        """Earliest future tick at which a temporal transition becomes enabled."""
        candidates = []
        for transition in self.chart.transitions_from(self.current_state):
            if transition.temporal is None or transition.event is not None:
                continue
            required = transition.temporal.ticks
            if isinstance(required, int):
                firing_tick = self.state_entered_tick + (
                    0 if transition.temporal.eager_fire(0) else required
                )
                candidates.append(max(firing_tick, self.current_tick))
        if not candidates:
            return None
        return min(candidates)

    def _fire(self, transition: Transition) -> List[OutputWrite]:
        writes: List[OutputWrite] = []
        context = self._guard_context()
        for action in transition.actions:
            value = action.evaluate(context)
            if self.chart.has_output_variable(action.variable):
                self.outputs[action.variable] = value
                writes.append(OutputWrite(action.variable, value))
                self.output_changes.append(
                    OutputChange(action.variable, value, self.current_tick, transition.name)
                )
            else:
                self.locals[action.variable] = value
        self.firings.append(
            TransitionFiring(transition.name, transition.source, transition.target, self.current_tick)
        )
        self.current_state = transition.target
        self.state_entered_tick = self.current_tick
        return writes
