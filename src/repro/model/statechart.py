"""The timed statechart structure.

A :class:`Statechart` is a flat state machine with:

* named states (one of them initial);
* transitions with an optional *event trigger* (an input event), an optional
  *temporal trigger* (``after`` / ``at`` / ``before`` on the state-local
  clock), an optional guard over local variables, and a list of output /
  local assignments;
* declared input events, output variables and local variables.

This is exactly the vocabulary of the paper's Fig. 2 (plus local variables
used by the extended GPCA model).  Hierarchy is not needed for the GPCA
fragment and is intentionally left out; composite behaviour is expressed by
explicit states, which also keeps the generated transition table faithful to
the structure the paper's code generator (RealTime Workshop) emits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from .declarations import Assign, InputEvent, LocalVariable, OutputVariable
from .temporal import TemporalTrigger

GuardFn = Callable[[Dict[str, Any]], bool]


@dataclass(frozen=True)
class State:
    """A named state of the chart."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("state name must be non-empty")


@dataclass(frozen=True)
class Transition:
    """A transition between two states.

    ``priority`` orders transitions out of the same source state; lower values
    are evaluated first (document order in Stateflow terms).
    """

    name: str
    source: str
    target: str
    event: Optional[str] = None
    temporal: Optional[TemporalTrigger] = None
    guard: Optional[GuardFn] = None
    actions: Tuple[Assign, ...] = ()
    priority: int = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("transition name must be non-empty")
        if not self.source or not self.target:
            raise ValueError(f"transition {self.name!r} must name source and target states")

    @property
    def is_event_triggered(self) -> bool:
        return self.event is not None

    @property
    def is_temporal(self) -> bool:
        return self.temporal is not None

    @property
    def output_actions(self) -> Tuple[Assign, ...]:
        """The subset of actions assigning output variables (resolved by the chart)."""
        return self.actions


class StatechartError(ValueError):
    """Raised when a statechart is structurally malformed."""


class Statechart:
    """A complete timed statechart model."""

    def __init__(self, name: str) -> None:
        if not name:
            raise StatechartError("statechart name must be non-empty")
        self.name = name
        self._states: Dict[str, State] = {}
        self._transitions: List[Transition] = []
        self._input_events: Dict[str, InputEvent] = {}
        self._output_variables: Dict[str, OutputVariable] = {}
        self._local_variables: Dict[str, LocalVariable] = {}
        self._initial_state: Optional[str] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_state(self, state: State, initial: bool = False) -> State:
        if state.name in self._states:
            raise StatechartError(f"duplicate state {state.name!r}")
        self._states[state.name] = state
        if initial:
            if self._initial_state is not None:
                raise StatechartError("initial state already set")
            self._initial_state = state.name
        return state

    def add_transition(self, transition: Transition) -> Transition:
        if any(existing.name == transition.name for existing in self._transitions):
            raise StatechartError(f"duplicate transition name {transition.name!r}")
        self._transitions.append(transition)
        return transition

    def add_input_event(self, event: InputEvent) -> InputEvent:
        if event.name in self._input_events:
            raise StatechartError(f"duplicate input event {event.name!r}")
        self._input_events[event.name] = event
        return event

    def add_output_variable(self, variable: OutputVariable) -> OutputVariable:
        if variable.name in self._output_variables:
            raise StatechartError(f"duplicate output variable {variable.name!r}")
        self._output_variables[variable.name] = variable
        return variable

    def add_local_variable(self, variable: LocalVariable) -> LocalVariable:
        if variable.name in self._local_variables:
            raise StatechartError(f"duplicate local variable {variable.name!r}")
        self._local_variables[variable.name] = variable
        return variable

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def states(self) -> List[State]:
        return list(self._states.values())

    @property
    def state_names(self) -> List[str]:
        return list(self._states.keys())

    @property
    def initial_state(self) -> str:
        if self._initial_state is None:
            raise StatechartError(f"statechart {self.name!r} has no initial state")
        return self._initial_state

    @property
    def transitions(self) -> List[Transition]:
        return list(self._transitions)

    @property
    def input_events(self) -> List[InputEvent]:
        return list(self._input_events.values())

    @property
    def output_variables(self) -> List[OutputVariable]:
        return list(self._output_variables.values())

    @property
    def local_variables(self) -> List[LocalVariable]:
        return list(self._local_variables.values())

    def state(self, name: str) -> State:
        try:
            return self._states[name]
        except KeyError:
            raise KeyError(f"unknown state {name!r}") from None

    def transition(self, name: str) -> Transition:
        for transition in self._transitions:
            if transition.name == name:
                return transition
        raise KeyError(f"unknown transition {name!r}")

    def has_input_event(self, name: str) -> bool:
        return name in self._input_events

    def has_output_variable(self, name: str) -> bool:
        return name in self._output_variables

    def has_local_variable(self, name: str) -> bool:
        return name in self._local_variables

    def initial_outputs(self) -> Dict[str, Any]:
        """Initial values of all output variables."""
        return {variable.name: variable.initial for variable in self._output_variables.values()}

    def initial_locals(self) -> Dict[str, Any]:
        """Initial values of all local variables."""
        return {variable.name: variable.initial for variable in self._local_variables.values()}

    def transitions_from(self, state_name: str) -> List[Transition]:
        """Outgoing transitions of ``state_name`` in priority (document) order."""
        outgoing = [t for t in self._transitions if t.source == state_name]
        return sorted(outgoing, key=lambda t: t.priority)

    def transitions_on_event(self, event_name: str) -> List[Transition]:
        return [t for t in self._transitions if t.event == event_name]

    # ------------------------------------------------------------------
    # Structural validation (full validation lives in model.validation)
    # ------------------------------------------------------------------
    def check_references(self) -> None:
        """Verify that transitions only reference declared states, events and variables."""
        for transition in self._transitions:
            if transition.source not in self._states:
                raise StatechartError(
                    f"transition {transition.name!r} references unknown source {transition.source!r}"
                )
            if transition.target not in self._states:
                raise StatechartError(
                    f"transition {transition.name!r} references unknown target {transition.target!r}"
                )
            if transition.event is not None and transition.event not in self._input_events:
                raise StatechartError(
                    f"transition {transition.name!r} references undeclared event {transition.event!r}"
                )
            for action in transition.actions:
                known = (
                    action.variable in self._output_variables
                    or action.variable in self._local_variables
                )
                if not known:
                    raise StatechartError(
                        f"transition {transition.name!r} assigns undeclared variable "
                        f"{action.variable!r}"
                    )
        if self._initial_state is None:
            raise StatechartError(f"statechart {self.name!r} has no initial state")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Statechart({self.name!r}, states={len(self._states)}, "
            f"transitions={len(self._transitions)})"
        )
