"""Temporal transition triggers: ``after``, ``at`` and ``before``.

The paper's Stateflow fragment uses two temporal operators on the millisecond
clock ``E_CLK``:

* ``At(4000, E_CLK)`` — the transition fires exactly when the source state has
  been active for 4000 ticks (the bolus duration);
* ``Before(100, E_CLK)`` — the transition fires at some instant no later than
  100 ticks after entering the source state.  At the model level this is a
  *nondeterministic* bound (it is what Simulink Design Verifier checks REQ1
  against); generated code resolves it eagerly (fire at the first opportunity)
  while the verifier explores every admissible firing instant up to the bound.

We additionally provide ``After(n)`` (fire at the first opportunity once the
state has been active at least ``n`` ticks), which the extended GPCA model
uses for periodic housekeeping behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from .declarations import DEFAULT_CLOCK


@dataclass(frozen=True)
class TemporalTrigger:
    """Base class for temporal triggers; ``ticks`` is measured on ``clock``."""

    ticks: int
    clock: str = DEFAULT_CLOCK

    def __post_init__(self) -> None:
        if self.ticks < 0:
            raise ValueError("temporal trigger bound must be non-negative")

    # The three semantic questions the executor and verifier ask -----------
    def may_fire(self, elapsed_ticks: int) -> bool:
        """Is firing *allowed* after ``elapsed_ticks`` in the source state?"""
        raise NotImplementedError

    def must_fire(self, elapsed_ticks: int) -> bool:
        """Is firing *forced* at ``elapsed_ticks`` (cannot be postponed further)?"""
        raise NotImplementedError

    def eager_fire(self, elapsed_ticks: int) -> bool:
        """Does the deterministic (generated-code) semantics fire now?"""
        raise NotImplementedError


@dataclass(frozen=True)
class After(TemporalTrigger):
    """Fire once the source state has been active for at least ``ticks``."""

    def may_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks >= self.ticks

    def must_fire(self, elapsed_ticks: int) -> bool:
        # ``after`` alone never forces firing; pairing with ``before`` does.
        return False

    def eager_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks >= self.ticks


@dataclass(frozen=True)
class At(TemporalTrigger):
    """Fire exactly when the source state has been active for ``ticks``."""

    def may_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks >= self.ticks

    def must_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks >= self.ticks

    def eager_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks >= self.ticks


@dataclass(frozen=True)
class Before(TemporalTrigger):
    """Fire at some instant no later than ``ticks`` after entering the state.

    * Model semantics (verification): the firing instant is nondeterministic in
      ``[0, ticks]``; firing becomes *forced* when the bound is reached.
    * Generated-code semantics (execution): fire eagerly, i.e. at the first
      scan after the state is entered.
    """

    def may_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks <= self.ticks

    def must_fire(self, elapsed_ticks: int) -> bool:
        return elapsed_ticks >= self.ticks

    def eager_fire(self, elapsed_ticks: int) -> bool:
        return True


def after(ticks: int, clock: str = DEFAULT_CLOCK) -> After:
    """Convenience constructor matching the Stateflow-like syntax."""
    return After(ticks, clock)


def at(ticks: int, clock: str = DEFAULT_CLOCK) -> At:
    """Convenience constructor matching the Stateflow-like syntax."""
    return At(ticks, clock)


def before(ticks: int, clock: str = DEFAULT_CLOCK) -> Before:
    """Convenience constructor matching the Stateflow-like syntax."""
    return Before(ticks, clock)
