"""Environment assumptions and model-level scenario generation.

The paper composes the software model with an *environment model* before
verification (Fig. 1-(1)).  We capture the environment as a set of assumptions
on when input events may occur and provide a deterministic scenario generator
that produces stimulus sequences respecting those assumptions.  The same
assumptions parameterise R-test-case generation at the implementation level,
so model-level and implementation-level experiments exercise comparable input
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..platform.kernel.random import RandomSource


@dataclass(frozen=True)
class EnvironmentAssumptions:
    """Constraints on the environment's event behaviour.

    ``min_separation_ticks`` — minimum distance between two consecutive input
    events (of any kind); the GPCA scenarios use a separation longer than the
    model's settle time so every bolus request is accepted from Idle.

    ``event_min_gap_ticks`` — optional per-event minimum gap overriding the
    global one (e.g. bolus requests cannot repeat faster than the lockout).
    """

    allowed_events: Tuple[str, ...]
    min_separation_ticks: int = 1
    event_min_gap_ticks: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.allowed_events:
            raise ValueError("environment must allow at least one event")
        if self.min_separation_ticks < 0:
            raise ValueError("minimum separation must be non-negative")

    def gap_for(self, event: str) -> int:
        return max(self.min_separation_ticks, self.event_min_gap_ticks.get(event, 0))

    def permits(self, schedule: Sequence[Tuple[int, str]]) -> bool:
        """Check a ``(tick, event)`` schedule against the assumptions."""
        last_any: Optional[int] = None
        last_by_event: Dict[str, int] = {}
        for tick, event in sorted(schedule, key=lambda item: item[0]):
            if event not in self.allowed_events:
                return False
            if last_any is not None and tick - last_any < self.min_separation_ticks:
                return False
            per_event_gap = self.event_min_gap_ticks.get(event, 0)
            previous = last_by_event.get(event)
            if previous is not None and tick - previous < per_event_gap:
                return False
            last_any = tick
            last_by_event[event] = tick
        return True


class ScenarioGenerator:
    """Generates stimulus schedules respecting :class:`EnvironmentAssumptions`."""

    def __init__(self, assumptions: EnvironmentAssumptions, randomness: Optional[RandomSource] = None) -> None:
        self.assumptions = assumptions
        self._randomness = randomness or RandomSource(0)

    def periodic(self, event: str, count: int, period_ticks: int, start_tick: int = 0) -> List[Tuple[int, str]]:
        """A fixed-period repetition of one event."""
        if event not in self.assumptions.allowed_events:
            raise ValueError(f"event {event!r} is not allowed by the environment assumptions")
        if period_ticks < self.assumptions.gap_for(event):
            raise ValueError(
                f"period {period_ticks} violates the minimum gap "
                f"{self.assumptions.gap_for(event)} for {event!r}"
            )
        return [(start_tick + index * period_ticks, event) for index in range(count)]

    def randomized(
        self,
        event: str,
        count: int,
        min_gap_ticks: Optional[int] = None,
        max_gap_ticks: Optional[int] = None,
        start_tick: int = 0,
        stream: str = "scenario",
    ) -> List[Tuple[int, str]]:
        """Random inter-arrival times within ``[min_gap, max_gap]`` (seeded)."""
        if event not in self.assumptions.allowed_events:
            raise ValueError(f"event {event!r} is not allowed by the environment assumptions")
        floor = self.assumptions.gap_for(event)
        low = max(floor, min_gap_ticks if min_gap_ticks is not None else floor)
        high = max(low, max_gap_ticks if max_gap_ticks is not None else low * 2)
        rng = self._randomness.stream(stream)
        schedule: List[Tuple[int, str]] = []
        tick = start_tick
        for index in range(count):
            if index > 0:
                tick += rng.randint(low, high)
            schedule.append((tick, event))
        return schedule

    def interleaved(
        self, schedules: Sequence[Sequence[Tuple[int, str]]]
    ) -> List[Tuple[int, str]]:
        """Merge several schedules into one time-ordered schedule.

        Raises :class:`ValueError` when the merge violates the assumptions.
        """
        merged = sorted((item for schedule in schedules for item in schedule), key=lambda i: i[0])
        if not self.assumptions.permits(merged):
            raise ValueError("interleaved schedule violates the environment assumptions")
        return merged
