"""Timed statechart modelling language, simulation and verification.

This package substitutes for the Simulink/Stateflow + Simulink Design Verifier
tool chain of the paper: models are flat timed statecharts with ``after`` /
``at`` / ``before`` temporal operators on a millisecond clock, executed with
zero-time transition semantics and verified against bounded-response timing
requirements by explicit-state exploration.
"""

from .builder import StatechartBuilder
from .composition import EnvironmentAssumptions, ScenarioGenerator
from .declarations import (
    DEFAULT_CLOCK,
    Assign,
    InputEvent,
    LocalVariable,
    OutputVariable,
    OutputWrite,
)
from .simulation import (
    ModelExecutionError,
    ModelExecutor,
    OutputChange,
    ScenarioResult,
    TransitionFiring,
)
from .statechart import State, Statechart, StatechartError, Transition
from .temporal import After, At, Before, after, at, before
from .validation import Finding, Severity, assert_valid, validate_statechart
from .verification import (
    BoundedResponseChecker,
    BoundedResponseRequirement,
    VerificationResult,
    reachable_states,
)

__all__ = [
    "After",
    "Assign",
    "At",
    "Before",
    "BoundedResponseChecker",
    "BoundedResponseRequirement",
    "DEFAULT_CLOCK",
    "EnvironmentAssumptions",
    "Finding",
    "InputEvent",
    "LocalVariable",
    "ModelExecutionError",
    "ModelExecutor",
    "OutputChange",
    "OutputVariable",
    "OutputWrite",
    "ScenarioGenerator",
    "ScenarioResult",
    "Severity",
    "State",
    "Statechart",
    "StatechartBuilder",
    "StatechartError",
    "Transition",
    "TransitionFiring",
    "VerificationResult",
    "after",
    "assert_valid",
    "at",
    "before",
    "reachable_states",
    "validate_statechart",
]
