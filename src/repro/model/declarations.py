"""Declarations used by the timed statechart language.

The modelling vocabulary mirrors what the paper's Stateflow fragment (Fig. 2)
uses: *input events* read by the model (``i-BolusReq``, ``i-EmptyAlarm``,
``i-ClearAlarm``), *output variables* written by it (``o-MotorState``,
``o-BuzzerState``) and a millisecond model clock (``E_CLK``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


#: Name of the default model clock; the paper's Stateflow model counts E_CLK
#: ticks of one millisecond.
DEFAULT_CLOCK = "E_CLK"


@dataclass(frozen=True)
class InputEvent:
    """An input event the model reacts to (an i-variable edge)."""

    name: str
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("input event name must be non-empty")


@dataclass(frozen=True)
class OutputVariable:
    """An output variable the model assigns (an o-variable)."""

    name: str
    initial: Any = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("output variable name must be non-empty")


@dataclass(frozen=True)
class LocalVariable:
    """A model-local (data) variable usable in guards and actions."""

    name: str
    initial: Any = 0
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("local variable name must be non-empty")


@dataclass(frozen=True)
class Assign:
    """Action assigning ``value`` to an output or local variable.

    ``value`` may be a constant or a one-argument callable receiving the
    current local-variable mapping (for computed assignments).
    """

    variable: str
    value: Any

    def evaluate(self, locals_map: dict) -> Any:
        if callable(self.value):
            return self.value(dict(locals_map))
        return self.value


@dataclass(frozen=True)
class OutputWrite:
    """A concrete output assignment produced while executing the model or CODE(M)."""

    variable: str
    value: Any
