"""Baseline: online black-box conformance testing (UPPAAL-Tron style).

The paper compares against online black-box testing of real-time systems from
UPPAAL models (Larsen, Mikucionis, Nielsen): such a tester observes only the
physical boundary of the implementation and emits a pass/fail verdict while
the test runs, but "lacks the ability to measure internal time-delays
occurring in the implemented system such as input and output delay".

This module implements that baseline so the benchmark harness can demonstrate
the comparison quantitatively: the black-box tester reaches the same pass/fail
verdicts as R-testing (it sees the same m/c events) yet yields zero delay
segments, whereas the layered M-testing attributes every violating sample.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..core.four_variables import EventKind, Trace
from ..core.requirements import TimingRequirement
from ..core.sut import SutFactory
from ..core.test_generation import RTestCase


@dataclass(frozen=True)
class OnlineVerdict:
    """A verdict the online tester emitted during the run."""

    at_us: int
    stimulus_index: int
    passed: bool
    reason: str


@dataclass
class BlackBoxReport:
    """Outcome of one online black-box test run."""

    sut_name: str
    test_case: RTestCase
    verdicts: List[OnlineVerdict] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return bool(self.verdicts) and all(verdict.passed for verdict in self.verdicts)

    @property
    def violation_count(self) -> int:
        return sum(1 for verdict in self.verdicts if not verdict.passed)

    def diagnostic_information(self) -> List[str]:
        """What the tester can say about *why* a violation happened.

        Nothing — the black-box tester never observes the CODE(M) boundary.
        The layered framework's M-testing report is the contrast.
        """
        return []

    def summary(self) -> str:
        verdict = "PASS" if self.passed else "FAIL"
        return (
            f"[{verdict}] black-box online testing of "
            f"{self.test_case.requirement.requirement_id} on {self.sut_name}: "
            f"{self.violation_count} violations in {len(self.verdicts)} samples, "
            f"0 delay segments available"
        )


class BlackBoxOnlineTester:
    """Drives the implementation and judges conformance using m/c events only."""

    def __init__(self, sut_factory: SutFactory) -> None:
        self._sut_factory = sut_factory

    def run(self, test_case: RTestCase) -> BlackBoxReport:
        sut = self._sut_factory()
        for stimulus in test_case.stimuli:
            sut.apply_stimulus(stimulus)
        sut.run(test_case.run_horizon_us)
        return self.judge(sut.name, test_case, sut.trace)

    # ------------------------------------------------------------------
    @staticmethod
    def judge(sut_name: str, test_case: RTestCase, trace: Trace) -> BlackBoxReport:
        """Replay the observable trace and emit online verdicts.

        The tester walks the m/c event stream in time order, maintaining the
        deadline of the oldest outstanding stimulus; a response after the
        deadline or an elapsed time-out produces a FAIL verdict at the moment
        the tester can know it (deadline expiry), exactly like an online
        tester that cannot look into the future.
        """
        requirement: TimingRequirement = test_case.requirement
        # The indexed multi-kind query yields the observable m/c stream in
        # trace order without building an intermediate restricted trace.
        observable = trace.select_kinds((EventKind.M, EventKind.C))
        report = BlackBoxReport(sut_name=sut_name, test_case=test_case)
        outstanding: List[tuple] = []  # (stimulus_index, stimulus_time)
        next_index = 0
        for event in observable:
            if event.kind is EventKind.M and requirement.stimulus.matches(event):
                outstanding.append((next_index, event.timestamp_us))
                next_index += 1
                continue
            if event.kind is EventKind.C and requirement.response.matches(event):
                # Expire older stimuli whose deadline passed before this response.
                while outstanding and event.timestamp_us - outstanding[0][1] > requirement.effective_timeout_us:
                    index, stimulus_time = outstanding.pop(0)
                    report.verdicts.append(
                        OnlineVerdict(
                            at_us=stimulus_time + requirement.effective_timeout_us,
                            stimulus_index=index,
                            passed=False,
                            reason="response not observed before time-out",
                        )
                    )
                if not outstanding:
                    continue
                index, stimulus_time = outstanding.pop(0)
                latency = event.timestamp_us - stimulus_time
                report.verdicts.append(
                    OnlineVerdict(
                        at_us=event.timestamp_us,
                        stimulus_index=index,
                        passed=latency <= requirement.deadline_us,
                        reason=(
                            f"response after {latency / 1000:.1f} ms "
                            f"(deadline {requirement.deadline_us / 1000:.0f} ms)"
                        ),
                    )
                )
        # Anything still outstanding at the end of the run timed out.
        for index, stimulus_time in outstanding:
            report.verdicts.append(
                OnlineVerdict(
                    at_us=stimulus_time + requirement.effective_timeout_us,
                    stimulus_index=index,
                    passed=False,
                    reason="response not observed before end of test",
                )
            )
        report.verdicts.sort(key=lambda verdict: verdict.stimulus_index)
        return report
