"""Baselines from the paper's related work: black-box online testing and
functional (SIL-style) conformance checking."""

from .blackbox_online import BlackBoxOnlineTester, BlackBoxReport, OnlineVerdict
from .functional_conformance import (
    ConformanceReport,
    FunctionalConformanceChecker,
    FunctionalStep,
    OutputDifference,
)

__all__ = [
    "BlackBoxOnlineTester",
    "BlackBoxReport",
    "ConformanceReport",
    "FunctionalConformanceChecker",
    "FunctionalStep",
    "OnlineVerdict",
    "OutputDifference",
]
