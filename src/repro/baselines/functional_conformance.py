"""Baseline: functional (SIL-style) conformance checking without timing.

The paper's first comparison point is Software-in-the-Loop / Hardware-in-the-
Loop testing of generated code against the Simulink/Stateflow model: it checks
that "the source code matches the desired behavior developed and specified in
the model" but "lacks an ability to test timing aspects of the code running on
a target platform".

This baseline replays i-event sequences against both the model executor and
the generated code and compares the *sequences* of output writes, ignoring all
timing.  It will happily pass an implementation scheme whose R-testing fails —
which is exactly the gap the paper's framework closes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence, Tuple

from ..codegen.generated import GeneratedCode
from ..codegen.generator import GeneratedArtifacts
from ..model.simulation import ModelExecutor
from ..model.statechart import Statechart


@dataclass(frozen=True)
class FunctionalStep:
    """One step of a functional conformance scenario."""

    #: Model ticks to advance before injecting the events of this step.
    advance_ticks: int = 0
    #: Input events injected at this step (in order).
    events: Tuple[str, ...] = ()


@dataclass(frozen=True)
class OutputDifference:
    """A divergence between the model's and the code's output sequences."""

    step_index: int
    variable: str
    model_value: Any
    code_value: Any


@dataclass
class ConformanceReport:
    """Outcome of one functional conformance run."""

    scenario_name: str
    steps: int
    differences: List[OutputDifference] = field(default_factory=list)
    final_state_matches: bool = True

    @property
    def conformant(self) -> bool:
        return not self.differences and self.final_state_matches

    def summary(self) -> str:
        verdict = "PASS" if self.conformant else "FAIL"
        return (
            f"[{verdict}] functional conformance ({self.scenario_name}): "
            f"{self.steps} steps, {len(self.differences)} output differences, "
            "timing not assessed"
        )


class FunctionalConformanceChecker:
    """Compares the generated code against the model, ignoring timing."""

    def __init__(self, chart: Statechart, artifacts: GeneratedArtifacts) -> None:
        self.chart = chart
        self.artifacts = artifacts

    def run(self, steps: Sequence[FunctionalStep], scenario_name: str = "scenario") -> ConformanceReport:
        """Replay the scenario on both executors and diff their outputs per step."""
        model = ModelExecutor(self.chart)
        code: GeneratedCode = self.artifacts.new_instance()
        report = ConformanceReport(scenario_name=scenario_name, steps=len(steps))

        for index, step in enumerate(steps):
            if step.advance_ticks:
                model.advance(step.advance_ticks)
                code.advance_clock(step.advance_ticks)
                code.scan()
            for event in step.events:
                model.inject(event)
                code.set_input(event)
                code.scan()
            for variable, model_value in model.outputs.items():
                code_value = code.outputs.get(variable)
                if code_value != model_value:
                    report.differences.append(
                        OutputDifference(
                            step_index=index,
                            variable=variable,
                            model_value=model_value,
                            code_value=code_value,
                        )
                    )
        report.final_state_matches = model.current_state == code.state_name
        return report

    # ------------------------------------------------------------------
    @staticmethod
    def bolus_scenario() -> List[FunctionalStep]:
        """The canonical GPCA scenario: request a bolus, let it complete."""
        return [
            FunctionalStep(advance_ticks=10, events=("i-BolusReq",)),
            FunctionalStep(advance_ticks=200),
            FunctionalStep(advance_ticks=4200),
        ]

    @staticmethod
    def alarm_scenario() -> List[FunctionalStep]:
        """Bolus, reservoir empties mid-infusion, caregiver clears the alarm."""
        return [
            FunctionalStep(advance_ticks=10, events=("i-BolusReq",)),
            FunctionalStep(advance_ticks=500, events=("i-EmptyAlarm",)),
            FunctionalStep(advance_ticks=1000, events=("i-ClearAlarm",)),
        ]
