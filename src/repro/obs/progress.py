"""Live campaign progress: run counts, rates and an ETA.

:class:`CampaignProgress` is the runner-side accumulator behind the
``/progress/<campaign>`` endpoint: the runner feeds it run outcomes
(completed / cached / failed) as shards finish, and it renders a compact
snapshot dict that the store persists and the server exposes.

Time comes from an injected monotonic source (``time.perf_counter`` by
default, a fake clock in tests) — progress never reads wall-clock-of-day and
never touches the simulation's clock.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, Optional

__all__ = ["CampaignProgress"]


class CampaignProgress:
    """Thread-safe progress accumulator for one campaign run."""

    def __init__(
        self,
        name: str,
        total_runs: int,
        *,
        monotonic: Optional[Callable[[], float]] = None,
        workers: int = 1,
    ) -> None:
        if monotonic is None:
            from time import perf_counter as monotonic  # type: ignore[no-redef]
        self._monotonic = monotonic
        self._lock = threading.Lock()
        self.name = name
        self.total_runs = total_runs
        self.workers = workers
        self.started = 0
        self.completed = 0
        self.cached = 0
        self.failed = 0
        self._started_at = monotonic()
        self._finished_at: Optional[float] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_started(self, count: int = 1) -> None:
        with self._lock:
            self.started += count

    def record_cached(self, count: int = 1) -> None:
        """Runs satisfied from the store during resume — never executed."""
        with self._lock:
            self.cached += count

    def record_completed(self, count: int = 1) -> None:
        with self._lock:
            self.completed += count

    def record_failed(self, count: int = 1) -> None:
        with self._lock:
            self.failed += count

    def finish(self) -> None:
        with self._lock:
            if self._finished_at is None:
                self._finished_at = self._monotonic()

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def done(self) -> int:
        return self.completed + self.cached + self.failed

    @property
    def remaining(self) -> int:
        return max(0, self.total_runs - self.done)

    def elapsed_s(self) -> float:
        end = self._finished_at
        if end is None:
            end = self._monotonic()
        return end - self._started_at

    def rate_runs_per_s(self) -> float:
        """Execution rate over runs actually executed (cached excluded)."""
        elapsed = self.elapsed_s()
        if elapsed <= 0.0:
            return 0.0
        return (self.completed + self.failed) / elapsed

    def eta_s(self) -> Optional[float]:
        """Seconds until done at the current rate; None before any signal."""
        if self.remaining == 0:
            return 0.0
        rate = self.rate_runs_per_s()
        if rate <= 0.0:
            return None
        return self.remaining / rate

    def snapshot(self) -> Dict[str, Any]:
        """The persisted/served progress view (JSON-shaped)."""
        with self._lock:
            finished = self._finished_at is not None
            snapshot: Dict[str, Any] = {
                "campaign": self.name,
                "total_runs": self.total_runs,
                "workers": self.workers,
                "started": self.started,
                "completed": self.completed,
                "cached": self.cached,
                "failed": self.failed,
                "remaining": self.remaining,
                "finished": finished,
                "elapsed_s": round(self.elapsed_s(), 6),
                "rate_runs_per_s": round(self.rate_runs_per_s(), 6),
            }
        eta = self.eta_s()
        snapshot["eta_s"] = None if eta is None else round(eta, 6)
        return snapshot
