"""``repro.obs`` — the zero-perturbation observability layer.

The framework equivalent of the paper's layered measurement probes
(:mod:`repro.core.instrumentation`): observe the stack — kernel, scheduler,
campaign, store, server — without perturbing it.  Three pieces:

* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms with
  fixed deterministic bucket edges, rendered as JSON or Prometheus text on
  ``repro serve``'s ``/metrics``.
* :mod:`repro.obs.spans` — a span tracer emitting Chrome-trace/Perfetto
  JSON timelines (``repro profile``), with a framework wall-clock lane and a
  simulation virtual-time lane.
* :mod:`repro.obs.telemetry` — the :class:`Telemetry` facade and the
  :data:`NULL_TELEMETRY` null sink; disabled telemetry costs near-nothing
  because hot loops are never instrumented directly — their counters are
  pulled after the fact.
* :mod:`repro.obs.progress` — live campaign progress with ETA, persisted by
  the runner and served on ``/progress/<campaign>``.
"""

from .metrics import (
    Counter,
    DEFAULT_LATENCY_EDGES_S,
    DEFAULT_PHASE_EDGES_S,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from .progress import CampaignProgress
from .spans import Span, SpanTracer, render_self_time_table
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry

__all__ = [
    "CampaignProgress",
    "Counter",
    "DEFAULT_LATENCY_EDGES_S",
    "DEFAULT_PHASE_EDGES_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "REGISTRY",
    "Span",
    "SpanTracer",
    "Telemetry",
    "get_registry",
    "render_self_time_table",
]
