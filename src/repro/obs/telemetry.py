"""The telemetry facade and the null sink.

:class:`Telemetry` bundles the two collection surfaces — a
:class:`~repro.obs.metrics.MetricsRegistry` and an optional
:class:`~repro.obs.spans.SpanTracer` — behind one object that the campaign
layer passes down (``CampaignRunner(telemetry=...)``).

:data:`NULL_TELEMETRY` is the disabled mode and the reason the hot loops pay
near-nothing: it is a module-level singleton whose every method is a no-op
and whose ``phase()`` returns one shared, reusable no-op context manager —
no allocation, no branching beyond an attribute call, nothing conditional
inside the kernel or scheduler loops themselves (those loops never call
telemetry at all; their counters are *pulled* afterwards).

Determinism rules (the repo's signature constraint):

* Telemetry never draws from any RNG and never writes into any structure the
  engine reads, so enabling it cannot change a verdict, a trace, or a store
  coordinate.
* Inside the simulation, the only clock telemetry sees is the simulated one
  (already deterministic).  Outside it, spans use an injected monotonic
  source — ``time.perf_counter`` by default, a fake in tests — never
  wall-clock-of-day.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from .metrics import MetricsRegistry, REGISTRY
from .spans import SpanTracer

__all__ = ["NULL_TELEMETRY", "NullTelemetry", "Telemetry"]


class _NullPhase:
    """A reusable no-op context manager (one instance for the whole process)."""

    __slots__ = ()

    def __enter__(self) -> "_NullPhase":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NULL_PHASE = _NullPhase()


class Telemetry:
    """Enabled telemetry: a metrics registry plus an optional span tracer."""

    __slots__ = ("registry", "tracer")

    #: Class-level flag: ``telemetry.enabled`` avoids isinstance checks.
    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        *,
        spans: bool = False,
        monotonic: Optional[Callable[[], float]] = None,
    ) -> None:
        self.registry = registry if registry is not None else REGISTRY
        if tracer is None and spans:
            tracer = SpanTracer(monotonic)
        self.tracer = tracer

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def count(self, name: str, amount: int = 1, **labels: Any) -> None:
        self.registry.counter(name, labels=labels or None).inc(amount)

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        self.registry.gauge(name, labels=labels or None).set(value)

    def observe(self, name: str, value: float, **labels: Any) -> None:
        self.registry.histogram(name, labels=labels or None).observe(value)

    def pull_counters(self, counters: Dict[str, int], *, prefix: str = "") -> None:
        """Fold a ``{name: count}`` snapshot (e.g. kernel counters) into the
        registry — the pull-collection half of the null-sink pattern."""
        for name, value in counters.items():
            if value:
                self.registry.counter(prefix + name).inc(int(value))

    # ------------------------------------------------------------------
    # Spans
    # ------------------------------------------------------------------
    def phase(self, name: str, **args: Any):
        """A span context for a framework phase; no-op without a tracer."""
        if self.tracer is None:
            return _NULL_PHASE
        return self.tracer.phase(name, args=args or None)


class NullTelemetry:
    """Disabled telemetry: every method is a no-op, ``phase()`` is shared.

    Structurally a drop-in for :class:`Telemetry` so call sites never branch
    on mode — they just call, and in the disabled case the call is an empty
    method returning immediately.
    """

    __slots__ = ()

    enabled = False
    registry = None
    tracer = None

    def count(self, name: str, amount: int = 1, **labels: Any) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: Any) -> None:
        return None

    def observe(self, name: str, value: float, **labels: Any) -> None:
        return None

    def pull_counters(self, counters: Dict[str, int], *, prefix: str = "") -> None:
        return None

    def phase(self, name: str, **args: Any) -> _NullPhase:
        return _NULL_PHASE


#: The module-level null sink: the default everywhere telemetry is optional.
NULL_TELEMETRY = NullTelemetry()
