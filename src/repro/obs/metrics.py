"""Process-local metrics: counters, gauges and fixed-bucket histograms.

The registry is the aggregation point of the observability layer
(:mod:`repro.obs`): every subsystem that wants to be scraped — the campaign
worker, the run store, the serving layer — increments named instruments here,
and ``repro serve`` renders the whole registry on ``/metrics`` in both JSON
and the Prometheus text exposition format.

Design rules, matching the repo's determinism discipline:

* **Fixed deterministic bucket edges.**  A histogram's buckets are declared at
  creation and never adapt to the data, so two runs that observe the same
  values render byte-identical bucket rows regardless of observation order.
* **No wall-clock inside.**  Instruments store only what callers hand them;
  anything time-derived is the caller's responsibility (and the callers use
  the simulated clock or an injected monotonic source — see
  :mod:`repro.obs.telemetry`).
* **Cheap enough to leave on.**  Instrument updates are a lock plus integer
  arithmetic.  Hot loops never call them per event — they keep their own slot
  counters and the telemetry layer *pulls* those after the fact (the
  null-sink rule; see ``docs/architecture.md``).

Everything is stdlib-only and thread-safe: one re-entrant lock per registry
serialises updates, which the threaded serving layer relies on.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_EDGES_S",
    "DEFAULT_PHASE_EDGES_S",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Default bucket edges (seconds) for request-latency histograms.  Fixed and
#: deterministic: the same observations always land in the same buckets.
DEFAULT_LATENCY_EDGES_S: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
)

#: Default bucket edges (seconds) for per-run phase timings — runs are slower
#: than HTTP requests, so the ladder shifts up an order of magnitude.
DEFAULT_PHASE_EDGES_S: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Labels are stored canonically as a sorted tuple of (name, value) pairs so
#: ``{"a": 1, "b": 2}`` and ``{"b": 2, "a": 1}`` address the same instrument.
LabelItems = Tuple[Tuple[str, str], ...]


def _canonical_labels(labels: Optional[Dict[str, Any]]) -> LabelItems:
    if not labels:
        return ()
    return tuple(sorted((str(name), str(value)) for name, value in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition rules."""
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: LabelItems, extra: Sequence[Tuple[str, str]] = ()) -> str:
    items = [*labels, *extra]
    if not items:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(value)}"' for name, value in items)
    return "{" + inner + "}"


def _format_number(value: float) -> str:
    """Render ints without a trailing ``.0`` (Prometheus accepts both; the
    integer form keeps the exposition stable and readable)."""
    if isinstance(value, bool):  # pragma: no cover - defensive
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a gauge for decrements")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A value that can go up and down."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """A fixed-bucket cumulative histogram (Prometheus semantics).

    ``edges`` are the *upper bounds* of the finite buckets, strictly
    increasing; an implicit ``+Inf`` bucket always exists.  Bucket counts are
    rendered cumulatively, exactly as the Prometheus text format requires.
    """

    __slots__ = ("_lock", "edges", "_bucket_counts", "_sum", "_count")

    def __init__(self, lock: threading.RLock, edges: Sequence[float]) -> None:
        if not edges:
            raise ValueError("histogram needs at least one finite bucket edge")
        ordered = tuple(float(edge) for edge in edges)
        if any(b <= a for a, b in zip(ordered, ordered[1:])):
            raise ValueError("histogram bucket edges must be strictly increasing")
        self._lock = lock
        self.edges = ordered
        self._bucket_counts = [0] * (len(ordered) + 1)  # final slot: +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        edges = self.edges
        # Linear probe: edge ladders are short (~12) and observations are not
        # hot-loop events, so simplicity beats bisect here.
        index = len(edges)
        for position, edge in enumerate(edges):
            if value <= edge:
                index = position
                break
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> List[Tuple[str, int]]:
        """``(upper-bound label, cumulative count)`` rows, ``+Inf`` last."""
        rows: List[Tuple[str, int]] = []
        running = 0
        with self._lock:
            counts = list(self._bucket_counts)
        for edge, bucket in zip(self.edges, counts):
            running += bucket
            rows.append((_format_number(edge), running))
        rows.append(("+Inf", running + counts[-1]))
        return rows


class MetricsRegistry:
    """A named collection of instruments, renderable as JSON or Prometheus text.

    Instruments are created on first use and addressed by ``(name, labels)``;
    repeated calls with the same address return the same instrument.  A name
    may not be reused across instrument types.
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        #: name -> (kind, help text)
        self._families: Dict[str, Tuple[str, str]] = {}
        self._instruments: Dict[Tuple[str, LabelItems], Any] = {}

    # ------------------------------------------------------------------
    # Instrument creation / lookup
    # ------------------------------------------------------------------
    def _instrument(
        self,
        kind: str,
        name: str,
        labels: Optional[Dict[str, Any]],
        help: str,
        factory,
    ) -> Any:
        items = _canonical_labels(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                self._families[name] = (kind, help)
            elif family[0] != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {family[0]}, "
                    f"not a {kind}"
                )
            instrument = self._instruments.get((name, items))
            if instrument is None:
                instrument = factory()
                self._instruments[(name, items)] = instrument
        return instrument

    def counter(
        self, name: str, *, labels: Optional[Dict[str, Any]] = None, help: str = ""
    ) -> Counter:
        return self._instrument(
            "counter", name, labels, help, lambda: Counter(self._lock)
        )

    def gauge(
        self, name: str, *, labels: Optional[Dict[str, Any]] = None, help: str = ""
    ) -> Gauge:
        return self._instrument("gauge", name, labels, help, lambda: Gauge(self._lock))

    def histogram(
        self,
        name: str,
        *,
        edges: Sequence[float] = DEFAULT_LATENCY_EDGES_S,
        labels: Optional[Dict[str, Any]] = None,
        help: str = "",
    ) -> Histogram:
        return self._instrument(
            "histogram", name, labels, help, lambda: Histogram(self._lock, edges)
        )

    # ------------------------------------------------------------------
    # Introspection / rendering
    # ------------------------------------------------------------------
    def _sorted_items(self) -> List[Tuple[str, LabelItems, Any]]:
        with self._lock:
            items = [
                (name, labels, instrument)
                for (name, labels), instrument in self._instruments.items()
            ]
        return sorted(items, key=lambda item: (item[0], item[1]))

    def to_dict(self) -> Dict[str, Any]:
        """The whole registry as a JSON-shaped dict (the ``/metrics`` JSON view)."""
        families: Dict[str, Dict[str, Any]] = {}
        for name, labels, instrument in self._sorted_items():
            kind, help_text = self._families[name]
            family = families.setdefault(
                name, {"type": kind, "help": help_text, "series": []}
            )
            series: Dict[str, Any] = {"labels": dict(labels)}
            if kind == "histogram":
                series["count"] = instrument.count
                series["sum"] = instrument.sum
                series["buckets"] = [
                    {"le": le, "count": count}
                    for le, count in instrument.cumulative_buckets()
                ]
            else:
                series["value"] = instrument.value
            family["series"].append(series)
        return {"metrics": families}

    def render_prometheus(self) -> str:
        """The registry in the Prometheus text exposition format (version 0.0.4)."""
        lines: List[str] = []
        seen_header = set()
        for name, labels, instrument in self._sorted_items():
            kind, help_text = self._families[name]
            if name not in seen_header:
                seen_header.add(name)
                if help_text:
                    lines.append(f"# HELP {name} {help_text}")
                lines.append(f"# TYPE {name} {kind}")
            if kind == "histogram":
                for le, count in instrument.cumulative_buckets():
                    lines.append(
                        f"{name}_bucket{_render_labels(labels, (('le', le),))} {count}"
                    )
                lines.append(f"{name}_sum{_render_labels(labels)} {_format_number(instrument.sum)}")
                lines.append(f"{name}_count{_render_labels(labels)} {instrument.count}")
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} {_format_number(instrument.value)}"
                )
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument (tests use this to isolate scrapes)."""
        with self._lock:
            self._families.clear()
            self._instruments.clear()

    def counter_value(self, name: str, labels: Optional[Dict[str, Any]] = None) -> int:
        """The current value of a counter series (0 when it does not exist)."""
        instrument = self._instruments.get((name, _canonical_labels(labels)))
        return 0 if instrument is None else int(instrument.value)


#: The process-local registry: one per worker process, one per serve process.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-local metrics registry."""
    return REGISTRY


def counters_from(
    registry: MetricsRegistry, pairs: Iterable[Tuple[str, int]], *, help: str = ""
) -> None:
    """Bulk-increment counters from ``(name, delta)`` pairs (pull-collection)."""
    for name, delta in pairs:
        if delta:
            registry.counter(name, help=help).inc(delta)
