"""Span timelines: Chrome-trace/Perfetto-compatible JSON from framework phases.

A :class:`SpanTracer` records named intervals (spans) on a small set of
*lanes* and renders them as a Chrome trace-event JSON document — the format
``chrome://tracing`` and https://ui.perfetto.dev open directly.  Two lanes
matter here:

* ``pid 1`` — **framework** wall-clock lane: codegen/build, execute, analyze
  phases measured with an injected monotonic source.
* ``pid 2`` — **simulation** virtual-time lane: task execution segments and
  deadline misses stamped with the simulated clock (microseconds), pulled
  from the scheduler after a run so the hot loop never sees the tracer.

Timestamps inside the simulation lane come from the deterministic simulated
clock, so a timeline re-rendered from the same run is byte-identical.  The
framework lane uses the injected monotonic source (``time.perf_counter`` in
production, a fake in tests) and is the only part of a profile that varies
between runs.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["Span", "SpanTracer", "render_self_time_table"]

#: Lane ids in the rendered timeline.
FRAMEWORK_PID = 1
SIMULATION_PID = 2


class Span:
    """One completed interval: ``ts``/``dur`` are microseconds (trace units)."""

    __slots__ = ("name", "category", "ts_us", "dur_us", "pid", "tid", "args")

    def __init__(
        self,
        name: str,
        category: str,
        ts_us: float,
        dur_us: float,
        pid: int,
        tid: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.name = name
        self.category = category
        self.ts_us = ts_us
        self.dur_us = dur_us
        self.pid = pid
        self.tid = tid
        self.args = args

    def to_event(self) -> Dict[str, Any]:
        event: Dict[str, Any] = {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.ts_us,
            "dur": self.dur_us,
            "pid": self.pid,
            "tid": self.tid,
        }
        if self.args:
            event["args"] = self.args
        return event


class SpanTracer:
    """Collects spans and instant events; renders Chrome-trace JSON.

    ``monotonic`` is the injected time source for the framework lane —
    seconds, monotonic, never wall-clock-of-day.  The simulation lane never
    consults it: simulated timestamps are supplied by the caller.
    """

    def __init__(self, monotonic: Optional[Callable[[], float]] = None) -> None:
        if monotonic is None:
            from time import perf_counter as monotonic  # type: ignore[no-redef]
        self._monotonic = monotonic
        self._origin = monotonic()
        self._spans: List[Span] = []
        self._instants: List[Dict[str, Any]] = []
        self._thread_names: Dict[Tuple[int, int], str] = {}
        self.name_thread(FRAMEWORK_PID, 0, "run phases")

    # ------------------------------------------------------------------
    # Framework lane (wall clock via injected monotonic source)
    # ------------------------------------------------------------------
    def now_us(self) -> float:
        """Microseconds since tracer creation, from the injected source."""
        return (self._monotonic() - self._origin) * 1e6

    def begin(self) -> float:
        """A start stamp for :meth:`end` (framework lane)."""
        return self.now_us()

    def end(
        self,
        name: str,
        started_us: float,
        *,
        category: str = "phase",
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> Span:
        """Close a framework-lane span opened with :meth:`begin`."""
        now = self.now_us()
        span = Span(name, category, started_us, now - started_us, FRAMEWORK_PID, tid, args)
        self._spans.append(span)
        return span

    class _Phase:
        __slots__ = ("_tracer", "_name", "_category", "_args", "_started")

        def __init__(self, tracer: "SpanTracer", name: str, category: str, args) -> None:
            self._tracer = tracer
            self._name = name
            self._category = category
            self._args = args

        def __enter__(self) -> "SpanTracer._Phase":
            self._started = self._tracer.begin()
            return self

        def __exit__(self, *exc_info) -> None:
            self._tracer.end(
                self._name, self._started, category=self._category, args=self._args
            )

    def phase(
        self,
        name: str,
        *,
        category: str = "phase",
        args: Optional[Dict[str, Any]] = None,
    ) -> "SpanTracer._Phase":
        """``with tracer.phase("execute"): ...`` — a framework-lane span."""
        return SpanTracer._Phase(self, name, category, args)

    # ------------------------------------------------------------------
    # Simulation lane (virtual microseconds supplied by the caller)
    # ------------------------------------------------------------------
    def sim_span(
        self,
        name: str,
        start_us: float,
        end_us: float,
        *,
        category: str = "task",
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """A span on the simulated-time lane (e.g. a task execution segment)."""
        self._spans.append(
            Span(name, category, start_us, end_us - start_us, SIMULATION_PID, tid, args)
        )

    def sim_instant(
        self,
        name: str,
        at_us: float,
        *,
        category: str = "event",
        tid: int = 0,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """An instant marker on the simulated-time lane (e.g. a deadline miss)."""
        event: Dict[str, Any] = {
            "name": name,
            "cat": category,
            "ph": "i",
            "s": "t",
            "ts": at_us,
            "pid": SIMULATION_PID,
            "tid": tid,
        }
        if args:
            event["args"] = args
        self._instants.append(event)

    # ------------------------------------------------------------------
    # Naming + rendering
    # ------------------------------------------------------------------
    def name_thread(self, pid: int, tid: int, name: str) -> None:
        self._thread_names[(pid, tid)] = name

    @property
    def spans(self) -> List[Span]:
        return self._spans

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The collected timeline as a Chrome trace-event JSON document."""
        events: List[Dict[str, Any]] = []
        used_pids = {span.pid for span in self._spans}
        used_pids.update(event["pid"] for event in self._instants)
        process_names = {
            FRAMEWORK_PID: "framework (wall clock)",
            SIMULATION_PID: "simulation (virtual time)",
        }
        for pid in sorted(used_pids):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": process_names.get(pid, f"pid {pid}")},
                }
            )
        for (pid, tid), name in sorted(self._thread_names.items()):
            if pid in used_pids:
                events.append(
                    {
                        "name": "thread_name",
                        "ph": "M",
                        "pid": pid,
                        "tid": tid,
                        "args": {"name": name},
                    }
                )
        events.extend(span.to_event() for span in self._spans)
        events.extend(self._instants)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def write_timeline(self, path) -> None:
        """Write the Chrome-trace JSON to ``path`` (openable in Perfetto)."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_chrome_trace(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    def self_times(self) -> Dict[str, Dict[str, float]]:
        """Per-span-name totals on the framework lane.

        Self-time subtracts the duration of spans *nested inside* a span on
        the same thread, so a parent phase is not double-charged for its
        children.  Returns ``{name: {"total_us", "self_us", "count"}}``.
        """
        framework = sorted(
            (span for span in self._spans if span.pid == FRAMEWORK_PID),
            key=lambda span: (span.tid, span.ts_us, -span.dur_us),
        )
        table: Dict[str, Dict[str, float]] = {}
        # Stack-based nesting pass per thread: a span is a child of the most
        # recent still-open span that fully contains it.
        open_stack: List[Span] = []
        child_time: Dict[int, float] = {}
        current_tid: Optional[int] = None
        for span in framework:
            if span.tid != current_tid:
                open_stack = []
                current_tid = span.tid
            while open_stack and span.ts_us >= open_stack[-1].ts_us + open_stack[-1].dur_us:
                open_stack.pop()
            if open_stack:
                parent = open_stack[-1]
                child_time[id(parent)] = child_time.get(id(parent), 0.0) + span.dur_us
            open_stack.append(span)
        for span in framework:
            row = table.setdefault(
                span.name, {"total_us": 0.0, "self_us": 0.0, "count": 0}
            )
            row["total_us"] += span.dur_us
            row["self_us"] += span.dur_us - child_time.get(id(span), 0.0)
            row["count"] += 1
        return table


def render_self_time_table(self_times: Dict[str, Dict[str, float]]) -> str:
    """An aligned text table of per-phase self times, widest first."""
    rows = sorted(
        self_times.items(), key=lambda item: (-item[1]["self_us"], item[0])
    )
    header = f"{'phase':<24} {'count':>5} {'total (ms)':>12} {'self (ms)':>12}"
    lines = [header, "-" * len(header)]
    for name, row in rows:
        lines.append(
            f"{name:<24} {int(row['count']):>5} "
            f"{row['total_us'] / 1000.0:>12.3f} {row['self_us'] / 1000.0:>12.3f}"
        )
    return "\n".join(lines)
