"""Command-line interface for the layered timing-testing framework.

Four sub-commands cover the everyday workflows on the GPCA case study::

    python -m repro verify   [--extended]
    python -m repro codegen  [--extended] [--output FILE]
    python -m repro rtest    --scheme {1,2,3} [--samples N] [--seed S]
                             [--m-test] [--json FILE] [--csv FILE]
    python -m repro table1   [--samples N] [--output FILE]

Every command prints its report to stdout; the optional file arguments
additionally write machine-readable artefacts (JSON/CSV/C source/text).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from .analysis import SchemeResult, TableOne
from .codegen import generate_code
from .core import MTestAnalyzer, RTestRunner, render_m_report, render_r_report
from .core.serialization import m_report_to_json, r_report_to_csv, r_report_to_json
from .gpca import (
    ALL_SCHEMES,
    bolus_request_test_case,
    build_extended_statechart,
    build_fig2_statechart,
    build_pump_interface,
    gpca_requirements,
    req1_bolus_start,
    scheme_factory,
    scheme_name,
)
from .model.verification import BoundedResponseChecker


def _chart_for(extended: bool):
    return build_extended_statechart() if extended else build_fig2_statechart()


# ----------------------------------------------------------------------
# Sub-commands
# ----------------------------------------------------------------------
def cmd_verify(args: argparse.Namespace) -> int:
    """Verify the GPCA timing requirements on the model (Design-Verifier step)."""
    chart = _chart_for(args.extended)
    checker = BoundedResponseChecker(chart)
    all_passed = True
    print(f"model: {chart.name}")
    for requirement in gpca_requirements().with_model_counterpart():
        result = checker.check(requirement.to_model_requirement())
        all_passed &= result.passed
        print("  " + result.summary())
    return 0 if all_passed else 1


def cmd_codegen(args: argparse.Namespace) -> int:
    """Generate CODE(M) and print / write its C-like source."""
    artifacts = generate_code(_chart_for(args.extended))
    print(artifacts.summary())
    for warning in artifacts.warnings:
        print(f"  warning: {warning}")
    if args.output:
        Path(args.output).write_text(artifacts.c_source, encoding="utf-8")
        print(f"C source written to {args.output}")
    else:
        print(artifacts.c_source)
    return 0


def cmd_rtest(args: argparse.Namespace) -> int:
    """R-test one implementation scheme against REQ1 (optionally M-test failures)."""
    requirement = req1_bolus_start()
    test_case = bolus_request_test_case(samples=args.samples, seed=args.seed)
    runner = RTestRunner(scheme_factory(args.scheme, seed=args.seed))
    r_report = runner.run(test_case)
    print(render_r_report(r_report))

    m_report = None
    if args.m_test and not r_report.passed:
        analyzer = MTestAnalyzer(build_pump_interface(), requirement)
        m_report = analyzer.analyze_violations(r_report)
        print()
        print(render_m_report(m_report))

    if args.json:
        Path(args.json).write_text(r_report_to_json(r_report, indent=2), encoding="utf-8")
        print(f"R-test report written to {args.json}")
    if args.csv:
        Path(args.csv).write_text(r_report_to_csv(r_report), encoding="utf-8")
        print(f"sample table written to {args.csv}")
    if args.m_json and m_report is not None:
        Path(args.m_json).write_text(m_report_to_json(m_report, indent=2), encoding="utf-8")
        print(f"M-test report written to {args.m_json}")
    return 0 if r_report.passed else 1


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table I across all three implementation schemes."""
    requirement = req1_bolus_start()
    interface = build_pump_interface()
    test_case = bolus_request_test_case(samples=args.samples, seed=args.seed)
    table = TableOne()
    for scheme in ALL_SCHEMES:
        r_report = RTestRunner(scheme_factory(scheme, seed=scheme * 11)).run(test_case)
        m_report = MTestAnalyzer(interface, requirement).analyze(
            r_report.trace, sut_name=r_report.sut_name
        )
        table.add(SchemeResult(scheme, scheme_name(scheme), r_report, m_report))
    rendered = table.render()
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"table written to {args.output}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Layered timing testing for model-based implementations (DATE 2014 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser("verify", help="verify the GPCA requirements on the model")
    verify.add_argument("--extended", action="store_true", help="use the extended GPCA chart")
    verify.set_defaults(handler=cmd_verify)

    codegen = subparsers.add_parser("codegen", help="generate CODE(M) and emit its C source")
    codegen.add_argument("--extended", action="store_true", help="use the extended GPCA chart")
    codegen.add_argument("--output", help="write the C source to this file")
    codegen.set_defaults(handler=cmd_codegen)

    rtest = subparsers.add_parser("rtest", help="R-test one implementation scheme against REQ1")
    rtest.add_argument("--scheme", type=int, choices=sorted(ALL_SCHEMES), required=True)
    rtest.add_argument("--samples", type=int, default=10)
    rtest.add_argument("--seed", type=int, default=7)
    rtest.add_argument("--m-test", action="store_true", help="run M-testing on violating samples")
    rtest.add_argument("--json", help="write the R-test report as JSON")
    rtest.add_argument("--csv", help="write the per-sample table as CSV")
    rtest.add_argument("--m-json", help="write the M-test report as JSON")
    rtest.set_defaults(handler=cmd_rtest)

    table1 = subparsers.add_parser("table1", help="regenerate Table I across all schemes")
    table1.add_argument("--samples", type=int, default=10)
    table1.add_argument("--seed", type=int, default=7)
    table1.add_argument("--output", help="write the rendered table to this file")
    table1.set_defaults(handler=cmd_table1)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
