"""Command-line interface for the layered timing-testing framework.

Eleven sub-commands cover the everyday workflows on the registered
case-study systems (the GPCA pump by default)::

    python -m repro verify    [--extended]
    python -m repro codegen   [--extended] [--output FILE]
    python -m repro rtest     --scheme {1,2,3} [--samples N] [--seed S]
                              [--m-test] [--json FILE] [--csv FILE]
    python -m repro table1    [--samples N] [--output FILE]
    python -m repro campaign  [--grid NAME] [--workers N] [--samples N]
                              [--seed S] [--json FILE] [--csv FILE]
                              [--baseline FILE] [--store DB] [--resume]
    python -m repro systems   [--list] [--json FILE]
    python -m repro explore   [--scheme {1,2,3}] [--system ID] [--model NAME]
                              [--episodes N] [--seed S] [--json FILE]
    python -m repro faults    [--samples N] [--workers N] [--seed S]
                              [--system ID] [--model NAME] [--hunt N]
                              [--list] [--json FILE] [--store DB] [--resume]
    python -m repro profile   [--grid NAME] [--index I] [--samples N]
                              [--seed S] [--timeline FILE] [--list]
    python -m repro store     {list | runs | diff | export} --db DB ...
    python -m repro serve     --store DB [--host HOST] [--port PORT] [--quiet]

Every command prints its report to stdout; the optional file arguments
additionally write machine-readable artefacts (JSON/CSV/C source/text).
``repro campaign`` runs a whole R-/M-testing grid — optionally sharded across
worker processes (``--workers 0`` auto-detects one worker per schedulable
CPU) — and ``--baseline`` measures serial versus parallel wall-clock
(verifying the aggregates are byte-identical first).
``repro systems`` lists the registered system packs (:mod:`repro.systems`);
``explore`` and ``faults`` take ``--system`` to aim at any registered pack.
``repro explore`` runs the seeded coverage-guided scenario generator
(:mod:`repro.scenarios`): it samples scenario programs, executes them against
one implementation scheme and steers generation toward uncovered model
transitions, printing the per-episode log and the final coverage summary.
``repro faults`` runs the fault-injection / mutation-analysis kill matrix
(:mod:`repro.faults`): the pack's seeded fault suite and the generated model
mutants fanned against its requirement scenarios, with ``--hunt`` aiming
the coverage-guided survivor hunter at any mutants the fixed scenarios miss.

Persistence (:mod:`repro.store`): ``--store DB`` on ``campaign``/``faults``
records every run and a campaign snapshot into a SQLite run store, and
``--resume`` re-executes only the grid points the store has never seen
(reassembled aggregates are byte-identical to cold runs).  ``repro store``
inspects a store — ``list`` (snapshots), ``runs`` (stored runs), ``diff``
(regression analysis between two snapshots), ``export`` (Table I / CSV from
a snapshot) — and ``repro serve`` exposes it as a JSON HTTP API with ETag
caching, live ``/metrics`` (JSON or Prometheus text) and ``/progress/<name>``
campaign telemetry, plus one structured JSON log line per request (silence
with ``--quiet``).  ``repro profile`` executes one grid coordinate with the
span tracer attached (:mod:`repro.obs`) and writes a Chrome-trace timeline
that opens in ``chrome://tracing`` or Perfetto; the profiled record is
byte-identical to the equivalent campaign run.  ``repro --version`` prints
the installed package version.

Exit codes, shared by every sub-command:

* ``0`` — the command completed; for ``verify``/``rtest`` this additionally
  means the model/scheme conformed.  Campaign-style commands (``campaign``,
  ``faults``) return 0 on *completion* — violating schemes and killed
  mutants are the paper's expected outcome, not an error.
* ``1`` — the command ran but the verdict was negative (``verify`` found an
  unmet requirement, ``rtest`` found violations, ``store diff`` found
  regressions with ``--fail-on-regression``) or a runtime precondition
  failed (e.g. ``--baseline`` could not get a process pool, an unknown
  snapshot id).
* ``2`` — usage error: unknown flag or value rejected by validation
  (argparse also uses 2 for parse failures).
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import platform as platform_module
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from .analysis import SchemeResult, TableOne, render_sweep
from .analysis.export import table_one_to_csv, table_one_to_markdown
from .campaign import (
    PRESETS,
    CampaignRunner,
    default_worker_count,
    preset_spec,
    process_cache,
    profile_run,
)
from .codegen import generate_code
from .faults import KillMatrix, SurvivorHunter, default_matrix_spec
from .core import MTestAnalyzer, RTestRunner, render_m_report, render_r_report
from .core.serialization import m_report_to_json, r_report_to_csv, r_report_to_json
from .gpca import (
    ALL_SCHEMES,
    bolus_request_test_case,
    build_extended_statechart,
    build_fig2_statechart,
    build_pump_interface,
    gpca_requirements,
    req1_bolus_start,
    scheme_factory,
    scheme_name,
)
from .model.verification import BoundedResponseChecker
from .obs import Telemetry
from .scenarios import CoverageGuidedExplorer
from .store import ENDPOINTS, RunStore, StoreError, StoreServer, diff_snapshots
from .systems import DEFAULT_SYSTEM, get_pack, iter_packs, pack_ids


def package_version() -> str:
    """The installed distribution's version, falling back to the module's."""
    try:
        from importlib import metadata

        return metadata.version("repro-layered-timing")
    except Exception:
        from . import __version__

        return __version__


def _chart_for(extended: bool):
    return build_extended_statechart() if extended else build_fig2_statechart()


# ----------------------------------------------------------------------
# Sub-commands
# ----------------------------------------------------------------------
def cmd_verify(args: argparse.Namespace) -> int:
    """Verify the GPCA timing requirements on the model (Design-Verifier step)."""
    chart = _chart_for(args.extended)
    checker = BoundedResponseChecker(chart)
    all_passed = True
    print(f"model: {chart.name}")
    for requirement in gpca_requirements().with_model_counterpart():
        result = checker.check(requirement.to_model_requirement())
        all_passed &= result.passed
        print("  " + result.summary())
    return 0 if all_passed else 1


def cmd_codegen(args: argparse.Namespace) -> int:
    """Generate CODE(M) and print / write its C-like source."""
    artifacts = generate_code(_chart_for(args.extended))
    print(artifacts.summary())
    for warning in artifacts.warnings:
        print(f"  warning: {warning}")
    if args.output:
        Path(args.output).write_text(artifacts.c_source, encoding="utf-8")
        print(f"C source written to {args.output}")
    else:
        print(artifacts.c_source)
    return 0


def cmd_rtest(args: argparse.Namespace) -> int:
    """R-test one implementation scheme against REQ1 (optionally M-test failures)."""
    requirement = req1_bolus_start()
    test_case = bolus_request_test_case(samples=args.samples, seed=args.seed)
    runner = RTestRunner(scheme_factory(args.scheme, seed=args.seed))
    r_report = runner.run(test_case)
    print(render_r_report(r_report))

    m_report = None
    if args.m_test and not r_report.passed:
        analyzer = MTestAnalyzer(build_pump_interface(), requirement)
        m_report = analyzer.analyze_violations(r_report)
        print()
        print(render_m_report(m_report))

    if args.json:
        Path(args.json).write_text(r_report_to_json(r_report, indent=2), encoding="utf-8")
        print(f"R-test report written to {args.json}")
    if args.csv:
        Path(args.csv).write_text(r_report_to_csv(r_report), encoding="utf-8")
        print(f"sample table written to {args.csv}")
    if args.m_json and m_report is not None:
        Path(args.m_json).write_text(m_report_to_json(m_report, indent=2), encoding="utf-8")
        print(f"M-test report written to {args.m_json}")
    return 0 if r_report.passed else 1


def cmd_table1(args: argparse.Namespace) -> int:
    """Regenerate Table I across all three implementation schemes."""
    requirement = req1_bolus_start()
    interface = build_pump_interface()
    test_case = bolus_request_test_case(samples=args.samples, seed=args.seed)
    table = TableOne()
    for scheme in ALL_SCHEMES:
        r_report = RTestRunner(scheme_factory(scheme, seed=scheme * 11)).run(test_case)
        m_report = MTestAnalyzer(interface, requirement).analyze(
            r_report.trace, sut_name=r_report.sut_name
        )
        table.add(SchemeResult(scheme, scheme_name(scheme), r_report, m_report))
    rendered = table.render()
    print(rendered)
    if args.output:
        Path(args.output).write_text(rendered + "\n", encoding="utf-8")
        print(f"table written to {args.output}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Profile one grid coordinate: span timeline + per-phase self-time table.

    Executes exactly the run a campaign of the same grid would execute at
    ``--index`` (the record is byte-identical, pinned by the obs test suite),
    with the :mod:`repro.obs` span tracer attached: worker phases
    (codegen → build → execute → analyze) land on the wall-clock lane and
    every scheduler compute segment / deadline miss lands on the simulated
    micro-second lane.  ``--timeline`` writes the Chrome-trace JSON, which
    opens directly in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    try:
        spec = preset_spec(args.grid, samples=args.samples, seed=args.seed)
    except ValueError as error:
        print(f"repro profile: error: {error}", file=sys.stderr)
        return 2
    runs = spec.expand()
    if args.list:
        print(f"grid {spec.name!r}: {len(runs)} coordinates")
        for run in runs:
            print(f"  {run.index:>4}  scheme{run.scheme}/{run.case:<24} model={run.model}")
        return 0
    if not 0 <= args.index < len(runs):
        print(
            f"repro profile: error: index {args.index} outside grid "
            f"{spec.name!r} (0..{len(runs) - 1})",
            file=sys.stderr,
        )
        return 2
    run_spec = runs[args.index]
    print(
        f"profiling {spec.name!r}[{run_spec.index}]: scheme{run_spec.scheme}/"
        f"{run_spec.case} model={run_spec.model} system={run_spec.system} "
        f"({run_spec.samples} samples)"
    )
    result = profile_run(run_spec)
    record = result.record
    print(
        f"verdict: {'PASS' if record.passed else 'FAIL'} "
        f"(violations={record.violation_count}, timeouts={record.timeout_count})"
    )
    print()
    print(result.self_time_table())
    if result.counters:
        print()
        print("engine counters:")
        for name in sorted(result.counters):
            print(f"  {name:<28} {result.counters[name]}")
    result.write_timeline(args.timeline)
    print(f"timeline written to {args.timeline} (open in chrome://tracing or Perfetto)")
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Run one of the stock R-/M-testing campaign grids, optionally in parallel."""
    if args.workers < 0:
        print("repro campaign: error: worker count cannot be negative", file=sys.stderr)
        return 2
    try:
        spec = preset_spec(args.grid, samples=args.samples, seed=args.seed)
        if args.backend != "python":
            spec = dataclasses.replace(spec, backend=args.backend)
    except ValueError as error:
        print(f"repro campaign: error: {error}", file=sys.stderr)
        return 2

    if args.resume and not args.store:
        print("repro campaign: error: --resume needs --store", file=sys.stderr)
        return 2
    if args.baseline and args.store:
        # Baseline mode runs the grid twice for timing; persisting one leg
        # silently would be misleading — make the user pick one mode.
        print(
            "repro campaign: error: --baseline and --store are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.baseline:
        return _campaign_baseline(spec, args)

    try:
        store = None if not args.store else RunStore(args.store)
    except StoreError as error:
        print(f"repro campaign: error: {error}", file=sys.stderr)
        return 1
    # With a store attached, enable telemetry so live progress snapshots land
    # in it for `repro serve` /progress/<name>.  Records stay byte-identical.
    telemetry = Telemetry() if store is not None else None
    try:
        runner = CampaignRunner(
            spec, workers=args.workers, store=store, resume=args.resume, telemetry=telemetry
        )
        result = runner.run()
    finally:
        if store is not None:
            store.close()
    if runner.fell_back_to_serial:
        print(f"warning: process pool unavailable ({runner.fallback_reason}); ran serially")
    print(result.render_summary())
    print(
        f"wall clock: {result.wall_seconds:.2f} s "
        f"({result.workers} worker{'s' if result.workers != 1 else ''})"
    )
    if store is not None:
        reuse = f", {runner.reused_count} reused from store" if args.resume else ""
        print(
            f"store: {runner.executed_count} run(s) executed{reuse}; "
            f"snapshot {runner.campaign_id} saved to {args.store}"
        )
    if args.grid == "table1":
        print()
        print(result.table_one().render())
    elif args.grid == "periods":
        print()
        print(render_sweep(result.sweep_points("period_ms"), "period (ms)"))
    elif args.grid == "interference":
        print()
        print(render_sweep(result.sweep_points("interference_scale"), "interference scale"))

    _write_campaign_outputs(result, args)
    # Violating schemes are an expected campaign outcome (they are the paper's
    # result), so completion — not conformance — determines the exit code.
    return 0


def _write_campaign_outputs(result, args: argparse.Namespace) -> None:
    """Honour the campaign sub-command's --json/--csv export flags."""
    if args.json:
        Path(args.json).write_text(result.to_json(indent=2) + "\n", encoding="utf-8")
        print(f"campaign result written to {args.json}")
    if args.csv:
        Path(args.csv).write_text(result.to_csv(), encoding="utf-8")
        print(f"campaign summary written to {args.csv}")


def _campaign_baseline(spec, args: argparse.Namespace) -> int:
    """Measure serial vs parallel wall-clock and record the baseline JSON.

    Runs the grid twice — once in-process, once sharded across
    ``args.workers`` processes — verifies the canonical aggregates are
    byte-identical, and writes the measured timings (plus enough host
    metadata to interpret them) to ``args.baseline``.
    """
    # The parallel leg defaults to the *schedulable* CPU count (floored at 2,
    # since a 1-worker leg would verify nothing).  Using cpu_count here
    # over-shards inside CPU-limited containers and misreports speedup.
    workers = args.workers if args.workers > 1 else max(2, default_worker_count())
    if args.workers <= 1:
        print(f"note: --baseline needs a parallel leg; using {workers} workers for it")
    # Warm the parent's artifact cache before timing either leg so the serial
    # leg does not pay the one-time codegen cost alone.  This makes the two
    # legs symmetric under the fork start method (Linux), where workers
    # inherit the warmed cache; under spawn each worker re-generates inside
    # its timed window, which is why the start method is recorded in the
    # baseline's host metadata.
    import multiprocessing

    process_cache().artifacts_for_model(spec.model)

    print(f"baseline: running {spec.name!r} grid ({spec.size} runs) serially ...")
    started = time.perf_counter()
    serial = CampaignRunner(spec, workers=1).run()
    serial_s = time.perf_counter() - started

    print(f"baseline: running {spec.name!r} grid with {workers} workers ...")
    started = time.perf_counter()
    parallel_runner = CampaignRunner(spec, workers=workers)
    parallel = parallel_runner.run()
    parallel_s = time.perf_counter() - started

    if parallel_runner.fell_back_to_serial:
        # A serial-vs-serial comparison verifies nothing; fail loudly rather
        # than letting a CI determinism check go green without multiprocessing.
        print(
            "error: process pool unavailable "
            f"({parallel_runner.fallback_reason}); baseline requires a real "
            "parallel run",
            file=sys.stderr,
        )
        return 1

    identical = serial.to_json() == parallel.to_json()
    print(f"aggregates byte-identical: {identical}")
    if not identical:
        print("error: serial and parallel campaign aggregates differ", file=sys.stderr)
        return 1

    # The aggregates are identical, so --json/--csv can be honoured from the
    # serial run rather than silently dropped in baseline mode.
    _write_campaign_outputs(serial, args)

    payload = {
        "campaign": spec.to_dict(),
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "parallel_workers": workers,
        "speedup": round(serial_s / parallel_s, 3) if parallel_s else None,
        "byte_identical": identical,
        "fell_back_to_serial": parallel_runner.fell_back_to_serial,
        "host": {
            "mp_start_method": multiprocessing.get_start_method(),
            "cpu_count": os.cpu_count(),
            "schedulable_cpus": default_worker_count(),
            "python": platform_module.python_version(),
            "platform": platform_module.platform(),
        },
    }
    Path(args.baseline).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(
        f"serial {serial_s:.2f} s, parallel {parallel_s:.2f} s "
        f"(speedup {payload['speedup']}x on {payload['host']['schedulable_cpus']} "
        f"schedulable CPUs); baseline written to {args.baseline}"
    )
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Run the fault-injection / mutation-analysis kill matrix.

    Expands the default seeded fault suite and the generated model mutants
    into a (faults × mutants × schemes × scenarios) grid, fans it through the
    campaign runner (optionally parallel) and prints the scored kill matrix:
    which requirement scenarios detect each platform fault class, which kill
    each mutant, and the resulting mutation score.  ``--hunt N`` afterwards
    aims the coverage-guided survivor hunter at the mutants the fixed
    scenarios missed.
    """
    if args.samples <= 0:
        print("repro faults: error: sample count must be positive", file=sys.stderr)
        return 2
    if args.workers < 0:
        print("repro faults: error: worker count cannot be negative", file=sys.stderr)
        return 2
    resolved = _resolve_pack_model("faults", args)
    if resolved is None:
        return 2
    pack, model = resolved
    spec = default_matrix_spec(
        samples=args.samples, base_seed=args.seed, model=model, system=pack.system_id
    )

    if args.list:
        print(f"fault suite of system {pack.system_id!r} ({len(spec.fault_plans)} plans):")
        for plan in spec.fault_plans:
            print(f"  {plan.describe()}")
        print(f"mutants of model {model!r} ({len(spec.mutants)}):")
        for mutant in spec.mutants:
            print(f"  {mutant.mutant_id:<40} {mutant.description}")
        return 0

    if args.resume and not args.store:
        print("repro faults: error: --resume needs --store", file=sys.stderr)
        return 2
    print(
        f"kill matrix: {len(spec.fault_plans)} fault plans x {len(spec.mutants)} mutants "
        f"x schemes {spec.baseline_schemes} x {len(spec.cases)} scenarios "
        f"({spec.size} runs, {args.samples} samples each)"
    )
    try:
        store = None if not args.store else RunStore(args.store)
    except StoreError as error:
        print(f"repro faults: error: {error}", file=sys.stderr)
        return 1
    telemetry = Telemetry() if store is not None else None
    try:
        runner = CampaignRunner(
            spec, workers=args.workers, store=store, resume=args.resume, telemetry=telemetry
        )
        result = runner.run()
    finally:
        if store is not None:
            store.close()
    if runner.fell_back_to_serial:
        print(f"warning: process pool unavailable ({runner.fallback_reason}); ran serially")
    matrix = KillMatrix.from_campaign(spec, result)
    print(matrix.render())
    print(
        f"wall clock: {result.wall_seconds:.2f} s "
        f"({result.workers} worker{'s' if result.workers != 1 else ''})"
    )
    if store is not None:
        reuse = f", {runner.reused_count} reused from store" if args.resume else ""
        print(
            f"store: {runner.executed_count} run(s) executed{reuse}; "
            f"snapshot {runner.campaign_id} saved to {args.store}"
        )

    hunt_report = None
    if args.hunt > 0 and matrix.surviving_mutants():
        surviving = set(matrix.surviving_mutants())
        survivors = [mutant for mutant in spec.mutants if mutant.mutant_id in surviving]
        hunter = SurvivorHunter(
            pack.scenario_space(),
            survivors,
            scheme=spec.mutant_schemes[0],
            model=model,
            system=pack.system_id,
            seed=args.seed,
        )
        hunt_report = hunter.hunt(args.hunt)
        print()
        print(hunt_report.summary())
    elif args.hunt > 0:
        print("no surviving mutants to hunt")

    if args.json:
        payload = {
            "matrix": matrix.to_dict(),
            "hunt": None if hunt_report is None else hunt_report.to_dict(),
        }
        Path(args.json).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"kill-matrix report written to {args.json}")
    if args.csv:
        Path(args.csv).write_text(result.to_csv(), encoding="utf-8")
        print(f"per-run summary written to {args.csv}")
    # Like `repro campaign`, completion — not conformance — sets the exit
    # code: killed mutants and detected faults are the *expected* outcome.
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    """Inspect a persistent run store: snapshots, runs, diffs and exports."""
    try:
        store = RunStore(args.db)
    except StoreError as error:
        print(f"repro store: error: {error}", file=sys.stderr)
        return 1
    try:
        return _store_action(store, args)
    except StoreError as error:
        print(f"repro store: error: {error}", file=sys.stderr)
        return 1
    finally:
        store.close()


def _store_action(store: RunStore, args: argparse.Namespace) -> int:
    counts = store.counts()
    if args.action == "list":
        rows = store.campaign_rows(name=args.name)
        print(
            f"store {args.db}: {counts['runs']} stored run(s), "
            f"{counts['campaigns']} campaign snapshot(s)"
        )
        for row in rows:
            print(
                f"  {row['campaign_id']}  {row['name']:<14} {row['size']:>4} runs  "
                f"{row['created_at']}"
            )
        return 0

    if args.action == "runs":
        try:
            rows = store.run_rows(
                scheme=args.scheme,
                case=args.case,
                system=args.system,
                limit=args.limit,
                offset=args.offset,
                order="slowest" if args.slowest else "newest",
            )
        except ValueError as error:
            print(f"repro store: error: {error}", file=sys.stderr)
            return 2
        order_note = "slowest first" if args.slowest else "newest first"
        print(
            f"store {args.db}: {len(rows)} matching run(s) of {counts['runs']} "
            f"({order_note})"
        )
        for row in rows:
            injected = row["fault_plan"] or row["mutant"] or "-"
            timing = row.get("timing")
            if timing is not None:

                def _fmt(value):
                    return "-" if value is None else f"{value:.2f}"

                phases = "/".join(
                    _fmt(timing.get(key)) for key in ("codegen_s", "execute_s", "analyze_s")
                )
                timed = f"  {_fmt(timing.get('elapsed_s'))}s (c/e/a {phases})"
            else:
                timed = ""
            print(
                f"  {row['key'][:16]}  scheme{row['scheme']}/{row['case']:<22} "
                f"{'PASS' if row['passed'] else 'FAIL':>4}  viol={row['violations']:<3} "
                f"MAX={row['timeouts']:<3} inject={injected}{timed}"
            )
        return 0

    if args.action == "diff":
        diff = diff_snapshots(store, args.old, args.new, name=args.name)
        print(diff.render())
        if args.json:
            Path(args.json).write_text(
                json.dumps(diff.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
            )
            print(f"diff report written to {args.json}")
        if args.fail_on_regression and diff.regressions():
            return 1
        return 0

    if args.action == "export":
        campaign_id = store.resolve_campaign_id(args.campaign, name=args.name)
        result = store.load_campaign(campaign_id)
        print(f"snapshot {campaign_id}: campaign {result.spec.name!r}, {len(result)} runs")
        if args.json:
            Path(args.json).write_text(result.to_json(indent=2) + "\n", encoding="utf-8")
            print(f"campaign result written to {args.json}")
        if args.csv:
            Path(args.csv).write_text(result.to_csv(), encoding="utf-8")
            print(f"per-run summary written to {args.csv}")
        if args.table1:
            table = result.table_one(args.case)
            text = (
                table_one_to_markdown(table)
                if args.table1.endswith(".md")
                else table.render() + "\n"
            )
            Path(args.table1).write_text(text, encoding="utf-8")
            print(f"Table I written to {args.table1}")
        if args.table1_csv:
            Path(args.table1_csv).write_text(
                table_one_to_csv(result.table_one(args.case)), encoding="utf-8"
            )
            print(f"Table I rows written to {args.table1_csv}")
        return 0

    raise AssertionError(f"unhandled store action {args.action!r}")  # pragma: no cover


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve a run store as a JSON HTTP API (``repro serve``)."""
    try:
        store = RunStore(args.store)
    except StoreError as error:
        print(f"repro serve: error: {error}", file=sys.stderr)
        return 1
    server = StoreServer(store, host=args.host, port=args.port, verbose=not args.quiet)
    counts = store.counts()
    print(
        f"serving {args.store} ({counts['runs']} runs, {counts['campaigns']} snapshots) "
        f"on {server.url}"
    )
    for endpoint, description in sorted(ENDPOINTS.items()):
        print(f"  GET {endpoint:<16} {description}")
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive serving
        print("shutting down")
    finally:
        server.shutdown()
        store.close()
    return 0


def _resolve_pack_model(command: str, args: argparse.Namespace):
    """Resolve (pack, model) from --system/--model, or None after a usage error."""
    try:
        pack = get_pack(args.system)
    except ValueError as error:
        print(f"repro {command}: error: {error}", file=sys.stderr)
        return None
    model = args.model if args.model is not None else pack.default_model
    if model not in pack.model_builders:
        known = ", ".join(sorted(pack.model_builders))
        print(
            f"repro {command}: error: unknown model {model!r} for system "
            f"{pack.system_id!r} (known: {known})",
            file=sys.stderr,
        )
        return None
    return pack, model


def cmd_systems(args: argparse.Namespace) -> int:
    """List the registered system packs and their inventory counts."""
    rows = []
    for pack in iter_packs():
        space = pack.scenario_space()
        rows.append(
            {
                "system": pack.system_id,
                "title": pack.title,
                "description": pack.description,
                "default_model": pack.default_model,
                "models": sorted(pack.model_builders),
                "schemes": list(pack.schemes),
                "cases": sorted(pack.case_builders),
                "requirement_count": len(pack.requirements()),
                "case_count": len(pack.case_builders),
                "model_count": len(pack.model_builders),
                "scheme_count": len(pack.schemes),
                "scenario_space": {
                    "requirement_count": len(space.requirements),
                    "setup_variable_count": len(space.setup_variables),
                    "teardown_variable_count": len(space.teardown_variables),
                },
            }
        )
    print(f"registered systems ({len(rows)}):")
    for row in rows:
        print(f"  {row['system']:<10} {row['title']} — {row['description']}")
        print(
            f"  {'':<10} models: {', '.join(row['models'])} (default {row['default_model']}); "
            f"schemes: {', '.join(str(s) for s in row['schemes'])}"
        )
        space = row["scenario_space"]
        print(
            f"  {'':<10} {row['requirement_count']} requirements, {row['case_count']} scenarios, "
            f"space: {space['requirement_count']} reqs x "
            f"{space['setup_variable_count']} setup / "
            f"{space['teardown_variable_count']} teardown vars"
        )
    if args.json:
        Path(args.json).write_text(
            json.dumps({"systems": rows}, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"system inventory written to {args.json}")
    return 0


def cmd_explore(args: argparse.Namespace) -> int:
    """Run seeded coverage-guided scenario exploration against one scheme.

    Samples scenario programs from the chosen system pack's scenario space,
    executes each compiled program against a fresh system of the requested
    scheme, and biases further sampling toward programs that covered new
    generated transitions.  The whole run is a pure function of the
    arguments, so the same seed always prints the same episode log and
    coverage summary.
    """
    if args.episodes <= 0:
        print("repro explore: error: episode count must be positive", file=sys.stderr)
        return 2
    resolved = _resolve_pack_model("explore", args)
    if resolved is None:
        return 2
    pack, model = resolved
    artifacts = process_cache().artifacts_for_model(model)

    def factory():
        return pack.build_system(
            args.scheme, model=model, seed=args.sut_seed, artifacts=artifacts
        )

    explorer = CoverageGuidedExplorer(
        pack.scenario_space(), factory, artifacts.code_model, seed=args.seed
    )
    report = explorer.explore(args.episodes)
    print(f"system: {pack.system_id}, scheme: {pack.scheme_name(args.scheme)}, model: {model}")
    print(report.summary())
    if args.json:
        Path(args.json).write_text(
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"exploration report written to {args.json}")
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Layered timing testing for model-based implementations (DATE 2014 reproduction).",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
        help="print the installed package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    verify = subparsers.add_parser("verify", help="verify the GPCA requirements on the model")
    verify.add_argument("--extended", action="store_true", help="use the extended GPCA chart")
    verify.set_defaults(handler=cmd_verify)

    codegen = subparsers.add_parser("codegen", help="generate CODE(M) and emit its C source")
    codegen.add_argument("--extended", action="store_true", help="use the extended GPCA chart")
    codegen.add_argument("--output", help="write the C source to this file")
    codegen.set_defaults(handler=cmd_codegen)

    rtest = subparsers.add_parser("rtest", help="R-test one implementation scheme against REQ1")
    rtest.add_argument("--scheme", type=int, choices=sorted(ALL_SCHEMES), required=True)
    rtest.add_argument("--samples", type=int, default=10)
    rtest.add_argument("--seed", type=int, default=7)
    rtest.add_argument("--m-test", action="store_true", help="run M-testing on violating samples")
    rtest.add_argument("--json", help="write the R-test report as JSON")
    rtest.add_argument("--csv", help="write the per-sample table as CSV")
    rtest.add_argument("--m-json", help="write the M-test report as JSON")
    rtest.set_defaults(handler=cmd_rtest)

    table1 = subparsers.add_parser("table1", help="regenerate Table I across all schemes")
    table1.add_argument("--samples", type=int, default=10)
    table1.add_argument("--seed", type=int, default=7)
    table1.add_argument("--output", help="write the rendered table to this file")
    table1.set_defaults(handler=cmd_table1)

    profile = subparsers.add_parser(
        "profile",
        help="profile one grid coordinate: Chrome-trace timeline + self-time table",
    )
    profile.add_argument(
        "--grid",
        choices=PRESETS,
        default="table1",
        help="which stock grid the coordinate comes from (default: table1)",
    )
    profile.add_argument(
        "--index",
        type=int,
        default=0,
        help="grid coordinate to profile (default: 0; see --list)",
    )
    profile.add_argument(
        "--samples", type=int, default=None, help="samples per test case (default: grid-specific)"
    )
    profile.add_argument(
        "--seed", type=int, default=None, help="campaign seed (default: grid-specific)"
    )
    profile.add_argument(
        "--timeline",
        default="timeline.json",
        help="write the Chrome-trace timeline here (default: timeline.json)",
    )
    profile.add_argument(
        "--list",
        action="store_true",
        help="list the grid's coordinates (index, scheme, case) without running",
    )
    profile.set_defaults(handler=cmd_profile)

    campaign = subparsers.add_parser(
        "campaign", help="run an R-/M-testing campaign grid (optionally in parallel)"
    )
    campaign.add_argument(
        "--grid",
        choices=PRESETS,
        default="table1",
        help="which stock grid to run (default: table1)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard the grid across "
        "(default: 1, serial; 0 = one per schedulable CPU)",
    )
    campaign.add_argument(
        "--samples", type=int, default=None, help="samples per test case (default: grid-specific)"
    )
    campaign.add_argument(
        "--seed", type=int, default=None, help="campaign seed (default: grid-specific)"
    )
    campaign.add_argument(
        "--backend",
        choices=("python", "c"),
        default="python",
        help="CODE(M) executor: the Python runtime or the compiled emitted C "
        "(falls back to python, with the reason recorded per run, when no C "
        "compiler is available)",
    )
    campaign.add_argument("--json", help="write the full campaign aggregate as JSON")
    campaign.add_argument("--csv", help="write the per-run summary as CSV")
    campaign.add_argument(
        "--baseline",
        help="measure serial vs parallel wall-clock (verifying byte-identical "
        "aggregates) and write the timings to this JSON file",
    )
    campaign.add_argument(
        "--store",
        help="persist every run and a campaign snapshot into this SQLite run store",
    )
    campaign.add_argument(
        "--resume",
        action="store_true",
        help="with --store: execute only grid points the store has never seen",
    )
    campaign.set_defaults(handler=cmd_campaign)

    systems = subparsers.add_parser(
        "systems", help="list the registered system packs (repro.systems)"
    )
    systems.add_argument(
        "--list",
        action="store_true",
        help="print the pack inventory (the default behaviour, for symmetry)",
    )
    systems.add_argument("--json", help="write the pack inventory as JSON")
    systems.set_defaults(handler=cmd_systems)

    explore = subparsers.add_parser(
        "explore",
        help="coverage-guided scenario generation against one implementation scheme",
    )
    explore.add_argument(
        "--scheme",
        type=int,
        choices=sorted(ALL_SCHEMES),
        default=1,
        help="implementation scheme to explore (default: 1, single-threaded)",
    )
    explore.add_argument(
        "--system",
        default=DEFAULT_SYSTEM,
        help=f"registered system pack to explore (default: {DEFAULT_SYSTEM}; "
        f"known: {', '.join(pack_ids())})",
    )
    explore.add_argument(
        "--model",
        default=None,
        help="model whose generated transitions are the coverage target "
        "(default: the system's default model)",
    )
    explore.add_argument(
        "--episodes",
        type=int,
        default=24,
        help="exploration episodes to run (default: 24)",
    )
    explore.add_argument(
        "--seed", type=int, default=0, help="exploration seed (default: 0)"
    )
    explore.add_argument(
        "--sut-seed",
        type=int,
        default=11,
        help="seed of the systems under test (default: 11)",
    )
    explore.add_argument("--json", help="write the exploration report as JSON")
    explore.set_defaults(handler=cmd_explore)

    faults = subparsers.add_parser(
        "faults",
        help="fault-injection / mutation-analysis kill matrix (repro.faults)",
    )
    faults.add_argument(
        "--samples", type=int, default=3, help="samples per scenario run (default: 3)"
    )
    faults.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes to shard the matrix across "
        "(default: 1, serial; 0 = one per schedulable CPU)",
    )
    faults.add_argument("--seed", type=int, default=0, help="matrix seed (default: 0)")
    faults.add_argument(
        "--system",
        default=DEFAULT_SYSTEM,
        help=f"registered system pack the matrix runs against (default: "
        f"{DEFAULT_SYSTEM}; known: {', '.join(pack_ids())})",
    )
    faults.add_argument(
        "--model",
        default=None,
        help="model the mutants are generated from (default: the system's "
        "default model)",
    )
    faults.add_argument(
        "--hunt",
        type=int,
        default=0,
        help="run up to N survivor-hunter episodes on mutants the fixed "
        "scenarios miss (default: 0, off)",
    )
    faults.add_argument(
        "--list",
        action="store_true",
        help="list the fault suite and generated mutants without running",
    )
    faults.add_argument("--json", help="write the kill-matrix (and hunt) report as JSON")
    faults.add_argument("--csv", help="write the per-run summary as CSV")
    faults.add_argument(
        "--store",
        help="persist every matrix run and a snapshot into this SQLite run store",
    )
    faults.add_argument(
        "--resume",
        action="store_true",
        help="with --store: execute only matrix points the store has never seen",
    )
    faults.set_defaults(handler=cmd_faults)

    store = subparsers.add_parser(
        "store", help="inspect a persistent run store (snapshots, runs, diffs, exports)"
    )
    store_actions = store.add_subparsers(dest="action", required=True)

    store_list = store_actions.add_parser("list", help="list stored campaign snapshots")
    store_list.add_argument("--db", required=True, help="run-store file")
    store_list.add_argument("--name", help="only snapshots of this campaign name")
    store_list.set_defaults(handler=cmd_store)

    store_runs = store_actions.add_parser("runs", help="list stored runs")
    store_runs.add_argument("--db", required=True, help="run-store file")
    store_runs.add_argument("--scheme", type=int, help="only runs of this scheme")
    store_runs.add_argument("--case", help="only runs of this scenario")
    store_runs.add_argument("--system", help="only runs of this system pack")
    store_runs.add_argument("--limit", type=int, help="at most this many rows")
    store_runs.add_argument(
        "--offset", type=int, default=0, help="skip this many rows first (default: 0)"
    )
    store_runs.add_argument(
        "--slowest",
        action="store_true",
        help="order by stored wall-clock, slowest first (default: newest first)",
    )
    store_runs.set_defaults(handler=cmd_store)

    store_diff = store_actions.add_parser(
        "diff", help="regression diff between two stored snapshots"
    )
    store_diff.add_argument("--db", required=True, help="run-store file")
    store_diff.add_argument("old", help="old snapshot id, or 'latest' / 'prev'")
    store_diff.add_argument("new", help="new snapshot id, or 'latest' / 'prev'")
    store_diff.add_argument("--name", help="resolve latest/prev within this campaign name")
    store_diff.add_argument("--json", help="write the diff report as JSON")
    store_diff.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit 1 when the diff contains regressions (for CI gates)",
    )
    store_diff.set_defaults(handler=cmd_store)

    store_export = store_actions.add_parser(
        "export", help="export a stored snapshot (JSON / CSV / Table I)"
    )
    store_export.add_argument("--db", required=True, help="run-store file")
    store_export.add_argument(
        "--campaign", default="latest", help="snapshot id, or 'latest' / 'prev' (default: latest)"
    )
    store_export.add_argument("--name", help="resolve latest/prev within this campaign name")
    store_export.add_argument("--case", default="bolus-request", help="Table I scenario")
    store_export.add_argument("--json", help="write the full campaign aggregate as JSON")
    store_export.add_argument("--csv", help="write the per-run summary as CSV")
    store_export.add_argument(
        "--table1", help="write Table I (Markdown for .md files, plain text otherwise)"
    )
    store_export.add_argument("--table1-csv", help="write the structured Table I rows as CSV")
    store_export.set_defaults(handler=cmd_store)

    serve = subparsers.add_parser(
        "serve", help="serve a run store as a JSON HTTP API (ETag-cached)"
    )
    serve.add_argument("--store", required=True, help="run-store file to serve")
    serve.add_argument("--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)")
    serve.add_argument(
        "--port", type=int, default=8035, help="TCP port (default: 8035; 0 = ephemeral)"
    )
    serve.add_argument(
        "--quiet",
        action="store_true",
        help="suppress the per-request structured log lines on stderr",
    )
    serve.set_defaults(handler=cmd_serve)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
