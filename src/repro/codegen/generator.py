"""The code generator: statechart in, CODE(M) artefacts out.

This is the stand-in for RealTime Workshop / Simulink Coder in the paper's
tool chain.  Generation performs three steps:

1. validate the statechart (errors abort generation, warnings are attached to
   the artefacts);
2. lower it to the transition-table IR;
3. package the executable runtime factory, the C-like source text and the
   traceability map into :class:`GeneratedArtifacts`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..model.statechart import Statechart
from ..model.validation import Finding, assert_valid
from .c_emitter import emit_c_source
from .generated import GeneratedCode
from .ir import CodeModel, lower_statechart
from .traceability import TraceabilityMap


@dataclass
class GeneratedArtifacts:
    """Everything produced by one code-generation run."""

    chart: Statechart
    code_model: CodeModel
    c_source: str
    traceability: TraceabilityMap
    warnings: List[Finding] = field(default_factory=list)

    def new_instance(self) -> GeneratedCode:
        """Instantiate a fresh CODE(M) runtime (equivalent to flashing the target)."""
        return GeneratedCode(self.code_model)

    @property
    def transition_names(self) -> List[str]:
        return self.code_model.transition_names

    def summary(self) -> str:
        """One-line description used by reports and examples."""
        return (
            f"CODE({self.chart.name}): {len(self.code_model.state_names)} states, "
            f"{len(self.code_model.transitions)} transitions, "
            f"{len(self.code_model.input_names)} inputs, "
            f"{len(self.code_model.output_initials)} outputs"
        )


class CodeGenerator:
    """Generates CODE(M) artefacts from validated statecharts."""

    def generate(self, chart: Statechart) -> GeneratedArtifacts:
        """Generate artefacts for ``chart``; raises on structural errors."""
        warnings = assert_valid(chart)
        code_model = lower_statechart(chart)
        c_source = emit_c_source(code_model)
        traceability = TraceabilityMap(chart, code_model)
        return GeneratedArtifacts(
            chart=chart,
            code_model=code_model,
            c_source=c_source,
            traceability=traceability,
            warnings=warnings,
        )


def generate_code(chart: Statechart) -> GeneratedArtifacts:
    """Module-level convenience wrapper around :class:`CodeGenerator`."""
    return CodeGenerator().generate(chart)
