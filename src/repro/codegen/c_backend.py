"""Compiled-C SUT backend: execute the emitted C chart through ctypes.

The emitter (:mod:`repro.codegen.c_emitter`) produces the C translation unit
the paper's toolchain would deploy on the MCU.  This module actually compiles
that C (plus a thin harness) into a shared library with the host C compiler
and executes it through :mod:`ctypes`, giving the campaign layer a second,
independent CODE(M) executor (``--backend c``).

Design constraints, in order:

* **Byte-identical verdicts.**  The integration schemes drive CODE(M) at
  transition granularity — ``enabled_transition()`` asks which row would fire
  (so its CPU cost can be charged first) and ``fire(row)`` commits it.  The
  emitted ``*_step`` function conflates both, so the harness emits an
  ``enabled``/``fire`` pair built from the *same* condition and action
  generators the emitter uses for ``*_step``.  The C side is authoritative
  for control flow (current state, input flags, state clock); the Python
  wrapper mirrors inputs/outputs/locals from the rows' literal actions so the
  objects flowing into traces keep their exact Python types (``True`` stays
  ``bool``, not ``1``).
* **Graceful degradation.**  Anything that prevents compiled execution — no
  C compiler on PATH, a chart using features the emitter cannot express
  (guards, computed action values), a compile failure — resolves to the
  Python backend with a human-readable reason, which the campaign worker
  records in the run record.  CI runners without a toolchain stay green.
* **No new dependencies.**  Compilation is a ``subprocess`` call to the host
  ``cc``/``gcc``/``clang``; loading and calling is plain :mod:`ctypes`.

Compiled libraries are cached per source hash, so a campaign process
compiles each distinct chart (the GPCA model, each mutant) once.
"""

from __future__ import annotations

import ctypes
import hashlib
import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..model.declarations import OutputWrite
from .c_emitter import _emit_actions, _emit_transition_condition, _identifier, emit_c_source
from .generated import Firing, GeneratedCodeError
from .generator import GeneratedArtifacts
from .ir import CodeModel

#: Backend identifiers accepted by the campaign layer.
BACKEND_PYTHON = "python"
BACKEND_C = "c"
KNOWN_BACKENDS = (BACKEND_PYTHON, BACKEND_C)

#: Compiler executables probed on PATH, in preference order.
_COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: source-hash -> loaded shared library (one compile per chart per process).
_COMPILED_CACHE: Dict[str, ctypes.CDLL] = {}
#: Keep the temporary build directories alive for the process lifetime (the
#: loaded .so must stay on disk on some platforms).
_WORKDIRS: List[tempfile.TemporaryDirectory] = []


class BackendUnavailable(RuntimeError):
    """The compiled-C backend cannot run in this environment/for this chart."""


def find_c_compiler() -> Optional[str]:
    """Absolute path of the first available host C compiler, or ``None``."""
    for name in _COMPILER_CANDIDATES:
        path = shutil.which(name)
        if path:
            return path
    return None


def check_compilable(model: CodeModel) -> Optional[str]:
    """Why ``model`` cannot be executed as compiled C, or ``None`` if it can.

    The emitter renders guards as calls to undefined ``guard_N`` functions and
    computed action values as ``/* computed */ 0`` placeholders; charts using
    either feature have no faithful C form, so they run on the Python backend.
    """
    for row in model.transitions:
        if row.guard is not None:
            return f"transition {row.name!r} has a guard (not expressible in emitted C)"
        for action in row.actions:
            if callable(action.value):
                return (
                    f"transition {row.name!r} assigns a computed value to "
                    f"{action.variable!r} (not expressible in emitted C)"
                )
            if not isinstance(action.value, (bool, int)):
                return (
                    f"transition {row.name!r} assigns non-integer value "
                    f"{action.value!r} to {action.variable!r}"
                )
    for name, value in list(model.output_initials.items()) + list(model.local_initials.items()):
        if not isinstance(value, (bool, int)):
            return f"variable {name!r} has non-integer initial value {value!r}"
    return None


# ----------------------------------------------------------------------
# Harness emission
# ----------------------------------------------------------------------
def emit_harness_source(model: CodeModel) -> str:
    """The emitted chart C plus the transition-granular test harness.

    The harness owns a heap-allocated instance struct (so one process can run
    many instances — campaign workers build a fresh SUT per sample) and
    exposes:

    * ``harness_new`` / ``harness_free`` / ``harness_reset`` — lifecycle;
    * ``harness_set_input`` / ``harness_clear_inputs`` /
      ``harness_advance_clock`` — the interfacing-code API, by variable index;
    * ``harness_enabled`` — index of the highest-priority enabled transition
      row out of the current state (or -1), evaluating exactly the conditions
      ``*_step`` evaluates, without committing;
    * ``harness_fire`` — commit one row by index (event consumption, actions,
      state switch, clock reset), rejecting rows whose source state does not
      match;
    * ``harness_state`` / ``harness_state_clock`` / ``harness_output`` /
      ``harness_local`` — state inspection for the Python mirror cross-checks.
    """
    chart_id = _identifier(model.name)
    lines: List[str] = [emit_c_source(model)]
    lines.append("#include <stdlib.h>")
    lines.append("")
    lines.append("typedef struct {")
    lines.append(f"    {chart_id}_dwork_t dw;")
    lines.append(f"    {chart_id}_io_t io;")
    lines.append("} harness_t;")
    lines.append("")
    lines.append("harness_t *harness_new(void)")
    lines.append("{")
    lines.append("    harness_t *h = (harness_t *)malloc(sizeof(harness_t));")
    lines.append(f"    if (h) {{ {chart_id}_init(&h->dw, &h->io); }}")
    lines.append("    return h;")
    lines.append("}")
    lines.append("")
    lines.append("void harness_free(harness_t *h)")
    lines.append("{")
    lines.append("    free(h);")
    lines.append("}")
    lines.append("")
    lines.append("void harness_reset(harness_t *h)")
    lines.append("{")
    lines.append(f"    {chart_id}_init(&h->dw, &h->io);")
    lines.append("}")
    lines.append("")
    lines.append("void harness_set_input(harness_t *h, int32_t input, int32_t value)")
    lines.append("{")
    lines.append("    switch (input) {")
    for index, name in enumerate(model.input_names):
        lines.append(f"    case {index}: h->io.{_identifier(name)} = (uint8_t)(value ? 1u : 0u); break;")
    lines.append("    default: break;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    lines.append("void harness_clear_inputs(harness_t *h)")
    lines.append("{")
    for name in model.input_names:
        lines.append(f"    h->io.{_identifier(name)} = 0u;")
    if not model.input_names:
        lines.append("    (void)h;")
    lines.append("}")
    lines.append("")
    lines.append("void harness_advance_clock(harness_t *h, uint32_t ticks)")
    lines.append("{")
    lines.append("    h->dw.state_clock_ms += ticks;")
    lines.append("}")
    lines.append("")
    lines.append("int32_t harness_state(harness_t *h)")
    lines.append("{")
    lines.append("    return (int32_t)h->dw.current_state;")
    lines.append("}")
    lines.append("")
    lines.append("uint32_t harness_state_clock(harness_t *h)")
    lines.append("{")
    lines.append("    return h->dw.state_clock_ms;")
    lines.append("}")
    lines.append("")
    lines.append("int32_t harness_output(harness_t *h, int32_t output)")
    lines.append("{")
    lines.append("    switch (output) {")
    for index, name in enumerate(model.output_initials):
        lines.append(f"    case {index}: return h->io.{_identifier(name)};")
    lines.append("    default: return 0;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    lines.append("int32_t harness_local(harness_t *h, int32_t index)")
    lines.append("{")
    lines.append("    switch (index) {")
    for index, name in enumerate(model.local_initials):
        lines.append(f"    case {index}: return h->dw.{_identifier(name)};")
    lines.append("    default: return 0;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    lines.append("int32_t harness_enabled(harness_t *h)")
    lines.append("{")
    lines.append(f"    {chart_id}_dwork_t *dw = &h->dw;")
    lines.append(f"    {chart_id}_io_t *io = &h->io;")
    lines.append("    (void)io;")
    lines.append("    switch (dw->current_state) {")
    for state_index, state_name in enumerate(model.state_names):
        lines.append(f"    case {chart_id}_STATE_{_identifier(state_name).upper()}: {{")
        for row in model.transitions_from(state_index):
            condition = _emit_transition_condition(row, chart_id)
            lines.append(f"        if ({condition}) {{ return {row.index}; }}  /* {row.name} */")
        lines.append("        return -1;")
        lines.append("    }")
    lines.append("    default:")
    lines.append("        return -1;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    lines.append("int32_t harness_fire(harness_t *h, int32_t row)")
    lines.append("{")
    lines.append(f"    {chart_id}_dwork_t *dw = &h->dw;")
    lines.append(f"    {chart_id}_io_t *io = &h->io;")
    lines.append("    (void)io;")
    lines.append("    switch (row) {")
    for row in model.transitions:
        source_state = model.state_names[row.source_index]
        lines.append(f"    case {row.index}: {{  /* {row.name} */")
        lines.append(
            f"        if (dw->current_state != {chart_id}_STATE_{_identifier(source_state).upper()})"
            " { return -1; }"
        )
        # _emit_actions renders at the *_step indentation depth; the extra
        # indentation is harmless inside this switch case.
        lines.extend(_emit_actions(row, chart_id, model))
        lines.append("        return 0;")
        lines.append("    }")
    lines.append("    default:")
    lines.append("        return -1;")
    lines.append("    }")
    lines.append("}")
    lines.append("")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Compilation
# ----------------------------------------------------------------------
def compile_harness(model: CodeModel, compiler: Optional[str] = None) -> ctypes.CDLL:
    """Compile the harness for ``model`` into a loaded shared library.

    Raises :class:`BackendUnavailable` with a usable reason when no compiler
    exists or compilation fails.  Results are cached per source hash.
    """
    reason = check_compilable(model)
    if reason is not None:
        raise BackendUnavailable(reason)
    source = emit_harness_source(model)
    key = hashlib.sha256(source.encode("utf-8")).hexdigest()
    cached = _COMPILED_CACHE.get(key)
    if cached is not None:
        return cached
    compiler = compiler or find_c_compiler()
    if compiler is None:
        raise BackendUnavailable(
            "no C compiler found on PATH (tried " + ", ".join(_COMPILER_CANDIDATES) + ")"
        )
    workdir = tempfile.TemporaryDirectory(prefix="repro-c-backend-")
    directory = Path(workdir.name)
    source_path = directory / "harness.c"
    library_path = directory / "harness.so"
    source_path.write_text(source, encoding="utf-8")
    command = [
        compiler,
        "-shared",
        "-fPIC",
        "-O2",
        "-o",
        str(library_path),
        str(source_path),
    ]
    result = subprocess.run(command, capture_output=True, text=True)
    if result.returncode != 0:
        detail = (result.stderr or result.stdout).strip().splitlines()
        summary = detail[0] if detail else f"exit status {result.returncode}"
        raise BackendUnavailable(f"harness compilation failed: {summary}")
    try:
        library = ctypes.CDLL(str(library_path))
    except OSError as exc:
        raise BackendUnavailable(f"compiled harness failed to load: {exc}") from exc
    _configure_prototypes(library)
    _COMPILED_CACHE[key] = library
    _WORKDIRS.append(workdir)
    return library


def _configure_prototypes(library: ctypes.CDLL) -> None:
    handle = ctypes.c_void_p
    library.harness_new.restype = handle
    library.harness_new.argtypes = []
    library.harness_free.restype = None
    library.harness_free.argtypes = [handle]
    library.harness_reset.restype = None
    library.harness_reset.argtypes = [handle]
    library.harness_set_input.restype = None
    library.harness_set_input.argtypes = [handle, ctypes.c_int32, ctypes.c_int32]
    library.harness_clear_inputs.restype = None
    library.harness_clear_inputs.argtypes = [handle]
    library.harness_advance_clock.restype = None
    library.harness_advance_clock.argtypes = [handle, ctypes.c_uint32]
    library.harness_state.restype = ctypes.c_int32
    library.harness_state.argtypes = [handle]
    library.harness_state_clock.restype = ctypes.c_uint32
    library.harness_state_clock.argtypes = [handle]
    library.harness_output.restype = ctypes.c_int32
    library.harness_output.argtypes = [handle, ctypes.c_int32]
    library.harness_local.restype = ctypes.c_int32
    library.harness_local.argtypes = [handle, ctypes.c_int32]
    library.harness_enabled.restype = ctypes.c_int32
    library.harness_enabled.argtypes = [handle]
    library.harness_fire.restype = ctypes.c_int32
    library.harness_fire.argtypes = [handle, ctypes.c_int32]


# ----------------------------------------------------------------------
# The compiled executor
# ----------------------------------------------------------------------
class CompiledGeneratedCode:
    """CODE(M) executor backed by the compiled emitted C.

    Exposes the exact :class:`repro.codegen.generated.GeneratedCode` surface
    the integration schemes use.  The compiled chart is authoritative for
    control flow — which transition is enabled, state switching, event
    consumption, the state clock — while ``inputs``/``outputs``/``locals``
    are Python mirrors maintained from the rows' literal actions so values
    keep their Python types.  :meth:`crosscheck` verifies the two sides agree.
    """

    def __init__(self, model: CodeModel, library: Optional[ctypes.CDLL] = None) -> None:
        self.model = model
        self._library = library if library is not None else compile_harness(model)
        self._handle = self._library.harness_new()
        if not self._handle:
            raise BackendUnavailable("harness instance allocation failed")
        self._input_index = {name: index for index, name in enumerate(model.input_names)}
        self._output_index = {name: index for index, name in enumerate(model.output_initials)}
        self._local_index = {name: index for index, name in enumerate(model.local_initials)}
        self._rows_by_index = {row.index: row for row in model.transitions}
        self.inputs: Dict[str, bool] = {name: False for name in model.input_names}
        self.outputs: Dict[str, Any] = dict(model.output_initials)
        self.locals: Dict[str, Any] = dict(model.local_initials)
        self.firing_history: List[Firing] = []

    def __del__(self) -> None:  # pragma: no cover - interpreter-shutdown timing
        handle = getattr(self, "_handle", None)
        if handle:
            try:
                self._library.harness_free(handle)
            except Exception:
                pass
            self._handle = None

    # Introspection ------------------------------------------------------
    @property
    def state_index(self) -> int:
        return self._library.harness_state(self._handle)

    @property
    def state_clock_ticks(self) -> int:
        return self._library.harness_state_clock(self._handle)

    @property
    def state_name(self) -> str:
        return self.model.state_names[self.state_index]

    def output(self, name: str) -> Any:
        try:
            return self.outputs[name]
        except KeyError:
            raise GeneratedCodeError(f"unknown output variable {name!r}") from None

    # Interfacing-code API -----------------------------------------------
    def set_input(self, name: str, value: bool = True) -> None:
        index = self._input_index.get(name)
        if index is None:
            raise GeneratedCodeError(f"unknown input variable {name!r}")
        self._library.harness_set_input(self._handle, index, 1 if value else 0)
        self.inputs[name] = bool(value)

    def advance_clock(self, ticks: int) -> None:
        if ticks < 0:
            raise GeneratedCodeError("cannot advance the clock by a negative amount")
        self._library.harness_advance_clock(self._handle, ticks)

    def clear_inputs(self) -> None:
        self._library.harness_clear_inputs(self._handle)
        for name in self.inputs:
            self.inputs[name] = False

    def reset(self) -> None:
        self._library.harness_reset(self._handle)
        self.inputs = {name: False for name in self.model.input_names}
        self.outputs = dict(self.model.output_initials)
        self.locals = dict(self.model.local_initials)
        self.firing_history = []

    # Transition-table execution -----------------------------------------
    def enabled_transition(self):
        row_index = self._library.harness_enabled(self._handle)
        if row_index < 0:
            return None
        return self._rows_by_index[row_index]

    def fire(self, row) -> List[OutputWrite]:
        if row.source_index != self.state_index:
            raise GeneratedCodeError(
                f"cannot fire {row.name!r} from state {self.state_name!r}"
            )
        status = self._library.harness_fire(self._handle, row.index)
        if status != 0:
            raise GeneratedCodeError(
                f"compiled harness rejected transition {row.name!r} (status {status})"
            )
        if row.trigger_kind == "event":
            self.inputs[row.trigger_param] = False
        writes: List[OutputWrite] = []
        for action in row.actions:
            value = action.value
            if action.is_output:
                self.outputs[action.variable] = value
                writes.append(OutputWrite(action.variable, value))
            else:
                self.locals[action.variable] = value
        firing = Firing(row, tuple(writes))
        self.firing_history.append(firing)
        return writes

    def scan(self, max_transitions: Optional[int] = None) -> List[Firing]:
        limit = max_transitions if max_transitions is not None else 64
        firings: List[Firing] = []
        for _ in range(limit):
            row = self.enabled_transition()
            if row is None:
                break
            writes = self.fire(row)
            firings.append(Firing(row, tuple(writes)))
        self.clear_inputs()
        return firings

    # Verification --------------------------------------------------------
    def crosscheck(self) -> None:
        """Assert the compiled state agrees with the Python mirrors.

        Used by the lockstep equivalence tests: any divergence between the C
        control flow and the mirror bookkeeping raises immediately.
        """
        for name, index in self._output_index.items():
            c_value = self._library.harness_output(self._handle, index)
            if int(self.outputs[name]) != c_value:
                raise AssertionError(
                    f"output {name!r} diverged: python={self.outputs[name]!r} c={c_value!r}"
                )
        for name, index in self._local_index.items():
            c_value = self._library.harness_local(self._handle, index)
            if int(self.locals[name]) != c_value:
                raise AssertionError(
                    f"local {name!r} diverged: python={self.locals[name]!r} c={c_value!r}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledGeneratedCode({self.model.name!r}, state={self.state_name!r}, "
            f"clock={self.state_clock_ticks})"
        )


# ----------------------------------------------------------------------
# Backend resolution
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BackendResolution:
    """Outcome of resolving a requested SUT backend for one chart.

    ``effective`` is the backend that will actually run; when it differs from
    ``requested``, ``reason`` says why (recorded in the run record so degraded
    runs are auditable).  ``code_factory`` is the executor factory to thread
    into :class:`repro.integration.base.SchemeConfig` (``None`` for the
    default Python executor).
    """

    requested: str
    effective: str
    reason: Optional[str] = None
    code_factory: Optional[Callable[[], Any]] = None

    @property
    def degraded(self) -> bool:
        return self.effective != self.requested

    def to_payload(self) -> Dict[str, Any]:
        """JSON-friendly form stored in run records (omit the factory)."""
        payload: Dict[str, Any] = {"requested": self.requested, "effective": self.effective}
        if self.reason is not None:
            payload["reason"] = self.reason
        return payload


def resolve_backend(backend: Optional[str], artifacts: GeneratedArtifacts) -> BackendResolution:
    """Resolve ``backend`` for ``artifacts``, degrading gracefully.

    ``"python"`` (or ``None``) always resolves to the Python executor.
    ``"c"`` compiles the emitted chart when possible; otherwise it falls back
    to Python with the failure reason recorded, never raising for
    environmental problems (missing compiler, failed compile, inexpressible
    chart).  Unknown backend names raise :class:`ValueError`.
    """
    if backend is None or backend == BACKEND_PYTHON:
        return BackendResolution(requested=BACKEND_PYTHON, effective=BACKEND_PYTHON)
    if backend != BACKEND_C:
        raise ValueError(f"unknown backend {backend!r} (expected one of {KNOWN_BACKENDS})")
    model = artifacts.code_model
    try:
        library = compile_harness(model)
    except BackendUnavailable as exc:
        return BackendResolution(requested=BACKEND_C, effective=BACKEND_PYTHON, reason=str(exc))
    return BackendResolution(
        requested=BACKEND_C,
        effective=BACKEND_C,
        code_factory=lambda: CompiledGeneratedCode(model, library),
    )
