"""Emission of C-like source text from the lowered code model.

The generated text is not compiled anywhere in this repository — the runtime
semantics live in :class:`repro.codegen.generated.GeneratedCode` — but
emitting it serves two purposes:

* it documents, in a reviewable artefact, that the lowering preserves the
  model structure (states become an enum, transitions become switch cases),
  which is the property the paper's methodology relies on when it trusts
  CODE(M) functionally; and
* downstream users who want to cross-compile for a real MCU get a faithful
  starting point whose structure matches the simulated runtime one-to-one.
"""

from __future__ import annotations

from typing import Any, List

from .ir import CodeModel, TransitionIR


def _identifier(name: str) -> str:
    """Convert a model name ('i-BolusReq') into a C identifier ('i_BolusReq')."""
    cleaned = []
    for char in name:
        cleaned.append(char if char.isalnum() or char == "_" else "_")
    identifier = "".join(cleaned)
    if identifier and identifier[0].isdigit():
        identifier = "_" + identifier
    return identifier


def _literal(value: Any) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if callable(value):
        return "/* computed */ 0"
    return str(value)


def emit_c_source(model: CodeModel) -> str:
    """Render the complete C-like translation unit for ``model``."""
    lines: List[str] = []
    chart_id = _identifier(model.name)
    lines.append(f"/* Auto-generated from statechart '{model.name}'. Do not edit. */")
    lines.append("#include <stdint.h>")
    lines.append("")
    lines.extend(_emit_state_enum(model, chart_id))
    lines.append("")
    lines.extend(_emit_io_struct(model, chart_id))
    lines.append("")
    lines.extend(_emit_state_struct(model, chart_id))
    lines.append("")
    lines.extend(_emit_init_function(model, chart_id))
    lines.append("")
    lines.extend(_emit_step_function(model, chart_id))
    lines.append("")
    return "\n".join(lines)


def _emit_state_enum(model: CodeModel, chart_id: str) -> List[str]:
    lines = [f"typedef enum {{"]
    for index, name in enumerate(model.state_names):
        lines.append(f"    {chart_id}_STATE_{_identifier(name).upper()} = {index},")
    lines.append(f"}} {chart_id}_state_t;")
    return lines


def _emit_io_struct(model: CodeModel, chart_id: str) -> List[str]:
    lines = [f"typedef struct {{"]
    for name in model.input_names:
        lines.append(f"    uint8_t {_identifier(name)};   /* input occurrence flag */")
    for name in model.output_initials:
        lines.append(f"    int32_t {_identifier(name)};   /* output variable */")
    lines.append(f"}} {chart_id}_io_t;")
    return lines


def _emit_state_struct(model: CodeModel, chart_id: str) -> List[str]:
    lines = [f"typedef struct {{"]
    lines.append(f"    {chart_id}_state_t current_state;")
    lines.append("    uint32_t state_clock_ms;")
    for name, value in model.local_initials.items():
        lines.append(f"    int32_t {_identifier(name)};   /* local variable, initial {_literal(value)} */")
    lines.append(f"}} {chart_id}_dwork_t;")
    return lines


def _emit_init_function(model: CodeModel, chart_id: str) -> List[str]:
    initial_state = model.state_names[model.initial_state_index]
    lines = [f"void {chart_id}_init({chart_id}_dwork_t *dw, {chart_id}_io_t *io)"]
    lines.append("{")
    lines.append(f"    dw->current_state = {chart_id}_STATE_{_identifier(initial_state).upper()};")
    lines.append("    dw->state_clock_ms = 0u;")
    for name, value in model.local_initials.items():
        lines.append(f"    dw->{_identifier(name)} = {_literal(value)};")
    for name in model.input_names:
        lines.append(f"    io->{_identifier(name)} = 0u;")
    for name, value in model.output_initials.items():
        lines.append(f"    io->{_identifier(name)} = {_literal(value)};")
    lines.append("}")
    return lines


def _emit_transition_condition(row: TransitionIR, chart_id: str) -> str:
    if row.trigger_kind == "event":
        condition = f"io->{_identifier(row.trigger_param)}"
    elif row.trigger_kind in ("after", "at"):
        condition = f"dw->state_clock_ms >= {row.trigger_param}u"
    else:  # before: eager resolution, matching the runtime semantics
        condition = "1 /* before(%s): fire at first opportunity */" % row.trigger_param
    if row.guard is not None:
        condition += " && guard_%d(dw, io)" % row.index
    return condition


def _emit_actions(row: TransitionIR, chart_id: str, model: CodeModel) -> List[str]:
    lines: List[str] = []
    if row.trigger_kind == "event":
        lines.append(f"            io->{_identifier(row.trigger_param)} = 0u;  /* consume event */")
    for action in row.actions:
        target = "io" if action.is_output else "dw"
        lines.append(f"            {target}->{_identifier(action.variable)} = {_literal(action.value)};")
    target_state = model.state_names[row.target_index]
    lines.append(
        f"            dw->current_state = {chart_id}_STATE_{_identifier(target_state).upper()};"
    )
    lines.append("            dw->state_clock_ms = 0u;")
    return lines


def _emit_step_function(model: CodeModel, chart_id: str) -> List[str]:
    lines = [
        f"void {chart_id}_step({chart_id}_dwork_t *dw, {chart_id}_io_t *io, uint32_t elapsed_ms)",
        "{",
        "    dw->state_clock_ms += elapsed_ms;",
        "    switch (dw->current_state) {",
    ]
    for state_index, state_name in enumerate(model.state_names):
        lines.append(f"    case {chart_id}_STATE_{_identifier(state_name).upper()}: {{")
        rows = model.transitions_from(state_index)
        if not rows:
            lines.append("        /* terminal state */")
        for position, row in enumerate(rows):
            keyword = "if" if position == 0 else "} else if"
            lines.append(f"        {keyword} ({_emit_transition_condition(row, chart_id)}) {{")
            lines.append(f"            /* transition: {row.name} */")
            lines.extend(_emit_actions(row, chart_id, model))
        if rows:
            lines.append("        }")
        lines.append("        break;")
        lines.append("    }")
    lines.append("    default:")
    lines.append("        break;")
    lines.append("    }")
    lines.append("}")
    return lines
