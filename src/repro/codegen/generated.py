"""Executable form of the generated code: CODE(M).

:class:`GeneratedCode` is the runtime object the integration schemes execute
on the simulated platform.  Its API is deliberately shaped like the C code the
paper's code generator produces:

* input occurrences are boolean flags (``set_input``), latched until consumed;
* output occurrences are variable writes collected per transition;
* the execution logic is a transition-table scan over the current state.

The implementation schemes need to charge CPU time *per transition* (that is
what Transition-Delay measures), so the stepping API is exposed at transition
granularity: ``enabled_transition()`` returns the next row that would fire and
``fire(row)`` commits it.  ``scan()`` is the convenience wrapper that chains
them for callers that do not need per-transition instrumentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..model.declarations import OutputWrite
from .ir import CodeModel, TransitionIR


class GeneratedCodeError(RuntimeError):
    """Raised on misuse of the generated-code runtime."""


@dataclass(frozen=True)
class Firing:
    """One committed transition together with the output writes it produced."""

    transition: TransitionIR
    writes: Tuple[OutputWrite, ...]


class GeneratedCode:
    """Runtime state of CODE(M): current state, latched inputs, outputs, clock."""

    def __init__(self, model: CodeModel) -> None:
        self.model = model
        self.state_index: int = model.initial_state_index
        self.state_clock_ticks: int = 0
        self.inputs: Dict[str, bool] = {name: False for name in model.input_names}
        self.outputs: Dict[str, Any] = dict(model.output_initials)
        self.locals: Dict[str, Any] = dict(model.local_initials)
        self.firing_history: List[Firing] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def state_name(self) -> str:
        return self.model.state_names[self.state_index]

    def output(self, name: str) -> Any:
        try:
            return self.outputs[name]
        except KeyError:
            raise GeneratedCodeError(f"unknown output variable {name!r}") from None

    # ------------------------------------------------------------------
    # Interfacing-code API (platform integration calls these)
    # ------------------------------------------------------------------
    def set_input(self, name: str, value: bool = True) -> None:
        """Latch an input occurrence (what the input-interfacing code does)."""
        if name not in self.inputs:
            raise GeneratedCodeError(f"unknown input variable {name!r}")
        self.inputs[name] = bool(value)

    def advance_clock(self, ticks: int) -> None:
        """Advance the state-local clock by ``ticks`` (driven by the platform timer)."""
        if ticks < 0:
            raise GeneratedCodeError("cannot advance the clock by a negative amount")
        self.state_clock_ticks += ticks

    def clear_inputs(self) -> None:
        """Discard unconsumed input occurrences at the end of a step.

        The model's instantaneous semantics discards an event that no
        transition of the current state reacts to; the generated step function
        preserves that behaviour by clearing its input flags at the end of
        every invocation.  Integration code must call this (or use
        :meth:`scan`, which does) once per CODE(M) invocation.
        """
        for name in self.inputs:
            self.inputs[name] = False

    def reset(self) -> None:
        """Return to the initial configuration (power-on reset)."""
        self.state_index = self.model.initial_state_index
        self.state_clock_ticks = 0
        self.inputs = {name: False for name in self.model.input_names}
        self.outputs = dict(self.model.output_initials)
        self.locals = dict(self.model.local_initials)
        self.firing_history = []

    # ------------------------------------------------------------------
    # Transition-table execution
    # ------------------------------------------------------------------
    def _guard_context(self) -> Dict[str, Any]:
        context = dict(self.locals)
        context.update(self.outputs)
        return context

    def _row_enabled(self, row: TransitionIR) -> bool:
        if row.trigger_kind == "event":
            if not self.inputs.get(row.trigger_param, False):
                return False
        elif row.trigger_kind == "after":
            if self.state_clock_ticks < row.trigger_param:
                return False
        elif row.trigger_kind == "at":
            if self.state_clock_ticks < row.trigger_param:
                return False
        elif row.trigger_kind == "before":
            # Generated code resolves the nondeterministic bound eagerly.
            pass
        else:  # pragma: no cover - lowering guarantees the kinds above
            raise GeneratedCodeError(f"unknown trigger kind {row.trigger_kind!r}")
        if row.guard is not None and not row.guard(self._guard_context()):
            return False
        return True

    def enabled_transition(self) -> Optional[TransitionIR]:
        """The highest-priority enabled row out of the current state, if any."""
        for row in self.model.transitions_from(self.state_index):
            if self._row_enabled(row):
                return row
        return None

    def fire(self, row: TransitionIR) -> List[OutputWrite]:
        """Commit ``row``: consume its trigger, run its actions, switch state.

        Returns the output writes performed (in action order).
        """
        if row.source_index != self.state_index:
            raise GeneratedCodeError(
                f"cannot fire {row.name!r} from state {self.state_name!r}"
            )
        if row.trigger_kind == "event":
            self.inputs[row.trigger_param] = False
        writes: List[OutputWrite] = []
        # The context snapshot only exists for computed action values; literal
        # actions (the common case in generated tables) skip the dict builds.
        context = (
            self._guard_context()
            if any(callable(action.value) for action in row.actions)
            else None
        )
        for action in row.actions:
            value = action.value(dict(context)) if callable(action.value) else action.value
            if action.is_output:
                self.outputs[action.variable] = value
                writes.append(OutputWrite(action.variable, value))
            else:
                self.locals[action.variable] = value
        self.state_index = row.target_index
        self.state_clock_ticks = 0
        firing = Firing(row, tuple(writes))
        self.firing_history.append(firing)
        return writes

    def scan(self, max_transitions: Optional[int] = None) -> List[Firing]:
        """Fire enabled transitions until quiescence (or ``max_transitions``).

        This mirrors one invocation of the generated step function; the
        integration schemes configure how many transitions a single invocation
        may take (``transitions_per_cycle``).
        """
        limit = max_transitions if max_transitions is not None else 64
        firings: List[Firing] = []
        for _ in range(limit):
            row = self.enabled_transition()
            if row is None:
                break
            writes = self.fire(row)
            firings.append(Firing(row, tuple(writes)))
        self.clear_inputs()
        return firings

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GeneratedCode({self.model.name!r}, state={self.state_name!r}, "
            f"clock={self.state_clock_ticks})"
        )
