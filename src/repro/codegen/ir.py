"""Intermediate representation produced by lowering a statechart.

The paper's code generator (RealTime Workshop / Simulink Coder) emits C code
that "implements transition tables, boolean (or integer) variables to
represent input and output occurrences, and execution logic (switch-case or
if-then-else statements), which maps to the model structure".  The IR here is
exactly that: numbered states, input flags, output variables and a transition
table whose rows keep a reference back to the model transition they came from
(the traceability M-testing needs to name Trans1 / Trans2 delays).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..model.statechart import Statechart, Transition
from ..model.temporal import After, At, Before, TemporalTrigger


class LoweringError(ValueError):
    """Raised when a statechart cannot be lowered to the IR."""


@dataclass(frozen=True)
class ActionIR:
    """One assignment executed when a transition fires."""

    variable: str
    value: Any
    is_output: bool


@dataclass(frozen=True)
class TransitionIR:
    """One row of the generated transition table."""

    index: int
    name: str
    source_index: int
    target_index: int
    #: ``"event"`` or one of the temporal kinds ``"after"`` / ``"at"`` / ``"before"``.
    trigger_kind: str
    #: Event name for event triggers; tick bound for temporal triggers.
    trigger_param: Any
    guard: Optional[Callable[[Dict[str, Any]], bool]]
    actions: Tuple[ActionIR, ...]
    priority: int

    @property
    def is_event_triggered(self) -> bool:
        return self.trigger_kind == "event"

    @property
    def is_temporal(self) -> bool:
        return self.trigger_kind in ("after", "at", "before")


@dataclass
class CodeModel:
    """The complete lowered model: everything the runtime and emitters need."""

    name: str
    state_names: List[str]
    initial_state_index: int
    input_names: List[str]
    output_initials: Dict[str, Any]
    local_initials: Dict[str, Any]
    transitions: List[TransitionIR] = field(default_factory=list)

    # transitions_from cache.  Deliberately plain class attributes (no
    # annotations), so they are not dataclass fields and equality/repr
    # semantics stay unchanged; rebuilt whenever the row count changes
    # (lowering appends rows before the first lookup).
    _rows_by_state = None
    _rows_cached_count = -1

    def transitions_from(self, state_index: int) -> List[TransitionIR]:
        """Rows out of ``state_index`` in descending evaluation priority.

        Called once per CODE(M) invocation in the execution hot loop, so the
        grouped-and-sorted rows are cached.  Callers must treat the returned
        list as read-only.
        """
        count = len(self.transitions)
        cache = self._rows_by_state
        if cache is None or self._rows_cached_count != count:
            cache = {}
            for row in self.transitions:
                cache.setdefault(row.source_index, []).append(row)
            for rows in cache.values():
                # Stable sort: equal priorities keep table order, matching the
                # previous per-call filter+sort exactly.
                rows.sort(key=lambda row: row.priority)
            self._rows_by_state = cache
            self._rows_cached_count = count
        return cache.get(state_index, [])

    def state_index(self, name: str) -> int:
        try:
            return self.state_names.index(name)
        except ValueError:
            raise KeyError(f"unknown state {name!r}") from None

    @property
    def transition_names(self) -> List[str]:
        return [row.name for row in self.transitions]


def _temporal_kind(trigger: TemporalTrigger) -> str:
    if isinstance(trigger, After):
        return "after"
    if isinstance(trigger, At):
        return "at"
    if isinstance(trigger, Before):
        return "before"
    raise LoweringError(f"unsupported temporal trigger {type(trigger).__name__}")


def lower_statechart(chart: Statechart) -> CodeModel:
    """Lower a validated statechart into a :class:`CodeModel`."""
    chart.check_references()
    state_names = chart.state_names
    output_names = {variable.name for variable in chart.output_variables}
    model = CodeModel(
        name=chart.name,
        state_names=state_names,
        initial_state_index=state_names.index(chart.initial_state),
        input_names=[event.name for event in chart.input_events],
        output_initials=chart.initial_outputs(),
        local_initials=chart.initial_locals(),
    )
    for index, transition in enumerate(chart.transitions):
        model.transitions.append(_lower_transition(index, transition, state_names, output_names))
    return model


def _lower_transition(
    index: int,
    transition: Transition,
    state_names: Sequence[str],
    output_names: set,
) -> TransitionIR:
    if transition.event is not None and transition.temporal is not None:
        raise LoweringError(
            f"transition {transition.name!r} has both an event and a temporal trigger"
        )
    if transition.event is not None:
        trigger_kind = "event"
        trigger_param: Any = transition.event
    elif transition.temporal is not None:
        trigger_kind = _temporal_kind(transition.temporal)
        trigger_param = transition.temporal.ticks
    else:
        # Untriggered transitions fire whenever the guard holds; represent them
        # as after(0) so the runtime has a single uniform mechanism.
        trigger_kind = "after"
        trigger_param = 0
    actions = tuple(
        ActionIR(action.variable, action.value, action.variable in output_names)
        for action in transition.actions
    )
    return TransitionIR(
        index=index,
        name=transition.name,
        source_index=list(state_names).index(transition.source),
        target_index=list(state_names).index(transition.target),
        trigger_kind=trigger_kind,
        trigger_param=trigger_param,
        guard=transition.guard,
        actions=actions,
        priority=transition.priority,
    )
