"""Code generation: lowering statecharts to executable CODE(M) artefacts."""

from .c_emitter import emit_c_source
from .execution_model import ExecutionTimeModel
from .generated import Firing, GeneratedCode, GeneratedCodeError
from .generator import CodeGenerator, GeneratedArtifacts, generate_code
from .ir import ActionIR, CodeModel, LoweringError, TransitionIR, lower_statechart
from .traceability import TraceabilityMap, TransitionLink

__all__ = [
    "ActionIR",
    "CodeGenerator",
    "CodeModel",
    "ExecutionTimeModel",
    "Firing",
    "GeneratedArtifacts",
    "GeneratedCode",
    "GeneratedCodeError",
    "LoweringError",
    "TraceabilityMap",
    "TransitionIR",
    "TransitionLink",
    "emit_c_source",
    "generate_code",
    "lower_statechart",
]
