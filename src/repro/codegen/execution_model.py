"""Execution-time model for CODE(M) and the interfacing code.

The paper measures Transition-Delays of 11 ms and 20 ms on its ARM7 target —
executing one generated transition is far from free.  The integration schemes
need a way to charge realistic CPU time when they run the generated code on
the simulated RTOS; this model provides it.

Costs are expressed as :class:`JitterModel` durations so every scheme can be
run deterministically (tests) or with bounded jitter (benchmarks).  Per-
transition overrides let the case-study hardware profile give individual model
transitions their own cost (matching the asymmetric Trans1 / Trans2 delays the
paper reports).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..platform.kernel.random import JitterModel, constant
from ..platform.kernel.time import ms, us
from .ir import TransitionIR


@dataclass
class ExecutionTimeModel:
    """CPU-time costs of the generated code and its interfacing code."""

    #: Reading / latching all input devices at the start of a cycle.
    input_scan: JitterModel = field(default_factory=lambda: constant(ms(1)))
    #: Base cost of evaluating the transition table once (no transition taken).
    idle_scan: JitterModel = field(default_factory=lambda: constant(us(300)))
    #: Cost of executing one transition (guard + actions + state switch).
    transition_base: JitterModel = field(default_factory=lambda: constant(ms(8)))
    #: Additional cost per action of the transition.
    per_action: JitterModel = field(default_factory=lambda: constant(ms(2)))
    #: Writing one output value to its device / queue.
    output_write: JitterModel = field(default_factory=lambda: constant(ms(1)))
    #: Per-model-transition overrides of the *total* transition cost.
    transition_overrides: Dict[str, JitterModel] = field(default_factory=dict)

    def input_scan_cost(self, rng: Optional[random.Random] = None) -> int:
        return self.input_scan.sample(rng)

    def idle_scan_cost(self, rng: Optional[random.Random] = None) -> int:
        return self.idle_scan.sample(rng)

    def output_write_cost(self, rng: Optional[random.Random] = None) -> int:
        return self.output_write.sample(rng)

    def transition_cost(self, row: TransitionIR, rng: Optional[random.Random] = None) -> int:
        """CPU time for executing ``row`` once."""
        override = self.transition_overrides.get(row.name)
        if override is not None:
            return override.sample(rng)
        base = self.transition_base.sample(rng)
        actions = sum(self.per_action.sample(rng) for _ in row.actions)
        return base + actions

    def worst_case_transition_us(self, row: TransitionIR) -> int:
        """Upper bound of :meth:`transition_cost` for ``row`` (used by analysis)."""
        override = self.transition_overrides.get(row.name)
        if override is not None:
            return override.worst_case_us
        return self.transition_base.worst_case_us + len(row.actions) * self.per_action.worst_case_us

    def scaled(self, factor: float) -> "ExecutionTimeModel":
        """A copy with every cost scaled by ``factor`` (used by ablation benches)."""
        return ExecutionTimeModel(
            input_scan=self.input_scan.scaled(factor),
            idle_scan=self.idle_scan.scaled(factor),
            transition_base=self.transition_base.scaled(factor),
            per_action=self.per_action.scaled(factor),
            output_write=self.output_write.scaled(factor),
            transition_overrides={
                name: model.scaled(factor) for name, model in self.transition_overrides.items()
            },
        )
