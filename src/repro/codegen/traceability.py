"""Model-to-code traceability.

M-testing reports Transition-Delays by *model* transition (the paper's
Trans1 / Trans2 of the (i-BolusReq, o-MotorState) pair), while the platform
instrumentation records firings of *generated* transition-table rows.  The
traceability map ties the two together and also answers structural queries
used by coverage analysis ("which rows implement the transitions on the path
from Idle to Infusion?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..model.statechart import Statechart
from .ir import CodeModel


@dataclass(frozen=True)
class TransitionLink:
    """Pairing of a model transition name with its generated table row."""

    model_transition: str
    row_index: int
    source_state: str
    target_state: str


class TraceabilityMap:
    """Bidirectional mapping between model elements and generated-code elements."""

    def __init__(self, chart: Statechart, code_model: CodeModel) -> None:
        self.chart = chart
        self.code_model = code_model
        self._links: List[TransitionLink] = []
        self._by_model_name: Dict[str, TransitionLink] = {}
        self._by_row_index: Dict[int, TransitionLink] = {}
        self._build()

    def _build(self) -> None:
        for row in self.code_model.transitions:
            link = TransitionLink(
                model_transition=row.name,
                row_index=row.index,
                source_state=self.code_model.state_names[row.source_index],
                target_state=self.code_model.state_names[row.target_index],
            )
            self._links.append(link)
            self._by_model_name[link.model_transition] = link
            self._by_row_index[link.row_index] = link

    # ------------------------------------------------------------------
    @property
    def links(self) -> Sequence[TransitionLink]:
        return tuple(self._links)

    def row_for_transition(self, model_transition: str) -> TransitionLink:
        try:
            return self._by_model_name[model_transition]
        except KeyError:
            raise KeyError(f"no generated row for model transition {model_transition!r}") from None

    def transition_for_row(self, row_index: int) -> TransitionLink:
        try:
            return self._by_row_index[row_index]
        except KeyError:
            raise KeyError(f"no model transition for generated row {row_index}") from None

    def state_name(self, state_index: int) -> str:
        return self.code_model.state_names[state_index]

    # ------------------------------------------------------------------
    def path_between(self, source_state: str, target_state: str) -> List[TransitionLink]:
        """Shortest transition path from ``source_state`` to ``target_state``.

        Used to enumerate the transitions whose delays make up a CODE(M)-Delay
        (for REQ1 this is Idle -> BolusRequested -> Infusion).
        """
        if source_state == target_state:
            return []
        frontier: List[Tuple[str, List[TransitionLink]]] = [(source_state, [])]
        visited = {source_state}
        while frontier:
            state, path = frontier.pop(0)
            for link in self._links:
                if link.source_state != state:
                    continue
                next_path = path + [link]
                if link.target_state == target_state:
                    return next_path
                if link.target_state not in visited:
                    visited.add(link.target_state)
                    frontier.append((link.target_state, next_path))
        raise KeyError(f"no path from {source_state!r} to {target_state!r}")

    def transitions_writing(self, output_variable: str) -> List[TransitionLink]:
        """All links whose generated row assigns ``output_variable``."""
        result = []
        for row in self.code_model.transitions:
            if any(action.is_output and action.variable == output_variable for action in row.actions):
                result.append(self._by_row_index[row.index])
        return result
