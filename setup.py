"""Setuptools entry point.

Metadata lives here (rather than a ``[project]`` table in pyproject.toml) so
that editable installs work on minimal offline environments that lack the
``wheel`` package: pip falls back to the legacy ``setup.py develop`` path,
which needs the complete package description below.  CI installs the package
with ``pip install -e ".[test]"`` and runs the test suite against the
installed distribution — no ``PYTHONPATH`` required.
"""

from setuptools import find_packages, setup

setup(
    name="repro-layered-timing",
    version="1.5.0",
    description=(
        "Reproduction of 'A Layered Approach for Testing Timing in the "
        "Model-Based Implementation' (DATE 2014): R-/M-testing, three "
        "implementation schemes, a parallel test-campaign engine and a "
        "persistent result store with incremental campaigns"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages("src"),
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    extras_require={
        "test": [
            "pytest>=7",
            "pytest-benchmark>=4",
            "hypothesis>=6",
        ],
        "lint": [
            "ruff>=0.4",
        ],
    },
)
