"""Setuptools entry point.

The pyproject.toml [project] table is the canonical metadata; this file exists
so that editable installs work on minimal offline environments that lack the
``wheel`` package (pip falls back to the legacy ``setup.py develop`` path).
"""

from setuptools import setup

setup()
