"""Benchmark: Fig. 2 — model-level verification of the timing requirements.

The paper verifies REQ1 on the Stateflow model of Fig. 2 with Simulink Design
Verifier before any code is generated.  This benchmark reproduces that step
with the explicit-state bounded-response checker: every GPCA timing
requirement is verified on both the Fig. 2 fragment and the extended chart,
and a deliberately tightened REQ1 (50 ms < the model's 100 ms bound) is shown
to fail — demonstrating the checker is not vacuous.
"""

from __future__ import annotations


from repro.gpca import (
    build_extended_statechart,
    build_fig2_statechart,
    gpca_requirements,
    req1_bolus_start,
)
from repro.model.verification import BoundedResponseChecker


def verify_all():
    results = []
    for chart in (build_fig2_statechart(), build_extended_statechart()):
        checker = BoundedResponseChecker(chart)
        for requirement in gpca_requirements().with_model_counterpart():
            result = checker.check(requirement.to_model_requirement())
            results.append((chart.name, result))
    return results


def test_fig2_model_verification(benchmark, write_artifact):
    results = benchmark.pedantic(verify_all, rounds=1, iterations=1)
    lines = [f"{chart_name:>14}  {result.summary()}" for chart_name, result in results]
    write_artifact("fig2_verification.txt", "\n".join(lines))
    assert all(result.passed for _, result in results)
    # REQ1's worst case on the Fig. 2 chart equals the before(100) bound.
    req1_results = [result for _, result in results if result.requirement.requirement_id == "REQ1"]
    assert all(result.worst_case_ticks == 100 for result in req1_results)


def test_tightened_requirement_is_rejected(benchmark, write_artifact):
    """A 50 ms bolus-start deadline is not satisfiable by the model."""
    checker = BoundedResponseChecker(build_fig2_statechart())
    tight = req1_bolus_start(deadline_ms=50).to_model_requirement()
    result = benchmark.pedantic(lambda: checker.check(tight), rounds=1, iterations=1)
    write_artifact("fig2_verification_tightened.txt", result.summary())
    assert not result.passed
