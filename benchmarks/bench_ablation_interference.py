"""Ablation A2: interference load versus REQ1 violations on scheme 3.

Scales the CPU bursts of scheme 3's interfering threads from zero (equivalent
to scheme 2) to 1.2x the default profile — one campaign grid of scheme-3
points (:func:`repro.campaign.interference_sweep_spec`) — and regenerates the
REQ1 R-testing verdicts at every point.  The sweep shows the mechanism behind
the paper's scheme-3 results: violations (and eventually MAX samples) appear
as the higher-priority interference approaches CPU saturation.
"""

from __future__ import annotations

from repro.analysis import render_sweep
from repro.campaign import CampaignRunner, interference_sweep_spec

SCALES = (0.0, 0.4, 0.8, 1.0, 1.2)
SAMPLES = 6


def run_sweep():
    spec = interference_sweep_spec(scales=SCALES, samples=SAMPLES)
    return CampaignRunner(spec).run().sweep_points("interference_scale")


def test_interference_sweep(benchmark, write_artifact):
    points = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    write_artifact("ablation_interference.txt", render_sweep(points, "interference scale"))

    by_scale = {point.parameter: point for point in points}
    # Without interference the scheme-2 pipeline conforms.
    assert by_scale[0.0].violation_rate == 0.0
    # At the default profile the requirement is violated for most samples.
    assert by_scale[1.0].violation_rate >= 0.5
    # Latency grows monotonically from no interference to full interference.
    assert by_scale[1.0].mean_latency_ms > by_scale[0.4].mean_latency_ms > by_scale[0.0].mean_latency_ms
    # Past saturation, time-outs (MAX samples) appear.
    assert by_scale[1.2].timeout_count >= by_scale[0.0].timeout_count
