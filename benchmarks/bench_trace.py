"""Benchmark: indexed trace queries vs the seed linear-scan implementation.

PR 2 rebuilt :class:`repro.core.four_variables.Trace` around per-(kind,
variable) indexes with bisect-based time-window slicing, so ``select`` /
``first`` / ``select_kinds`` cost O(log n + matches) instead of O(n).  This
benchmark replays the query shapes the analysis stack actually issues —
stimulus/response selects (``ResponseMatcher.match``), windowed first-event
probes (``first_event_after``), transition-probe windows
(``MTestAnalyzer._transition_delays``) and the R-testing m/c restriction —
against a ~100k-event synthetic trace, once through the indexed ``Trace`` and
once through :class:`LinearScanTrace`, a faithful copy of the seed's linear
scans.  Results (and the per-workload speedups) are recorded to
``BENCH_trace.json`` at the repository root.

Every workload is also checked for exact result equality, so the benchmark
doubles as an end-to-end equivalence test of the index rewrite.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.four_variables import Event, EventKind, Trace

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_trace.json"

EVENT_COUNT = 100_000
WINDOW_QUERIES = 60
SEED = 20140324  # the paper's conference date


class LinearScanTrace:
    """Reference implementation: the seed ``Trace`` query semantics, verbatim.

    Kept as the benchmark baseline (and the oracle for the equivalence
    checks); every query walks the full event list exactly like the
    pre-index implementation did.
    """

    def __init__(self, events: List[Event]) -> None:
        self._events = list(events)

    def select(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        selected = []
        for event in self._events:
            if not event.matches(kind, variable):
                continue
            if after_us is not None and event.timestamp_us < after_us:
                continue
            if before_us is not None and event.timestamp_us > before_us:
                continue
            if predicate is not None and not predicate(event):
                continue
            selected.append(event)
        return selected

    def first(
        self,
        kind: Optional[EventKind] = None,
        variable: Optional[str] = None,
        predicate: Optional[Callable[[Event], bool]] = None,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> Optional[Event]:
        # The seed's ``first_event_after`` materialised the entire filtered
        # window via ``select`` just to return its head; reproduce that
        # faithfully so the baseline measures what PR 2 replaced.
        for event in self.select(kind, variable, predicate, after_us, before_us):
            return event
        return None

    def select_kinds(
        self,
        kinds,
        after_us: Optional[int] = None,
        before_us: Optional[int] = None,
    ) -> List[Event]:
        wanted = set(kinds)
        selected = []
        for event in self._events:
            if event.kind not in wanted:
                continue
            if after_us is not None and event.timestamp_us < after_us:
                continue
            if before_us is not None and event.timestamp_us > before_us:
                continue
            selected.append(event)
        return selected

    def restricted_to(self, kinds) -> List[Event]:
        # The seed rebuilt a Trace through its append path, re-checking time
        # order on every kept event; reproduce that per-event validation.
        wanted = set(kinds)
        out: List[Event] = []
        last = None
        for event in self._events:
            if event.kind in wanted:
                if last is not None and event.timestamp_us < last:
                    raise ValueError("unsorted trace")
                last = event.timestamp_us
                out.append(event)
        return out


# ----------------------------------------------------------------------
# Synthetic campaign-shaped trace
# ----------------------------------------------------------------------
def build_events(count: int = EVENT_COUNT, seed: int = SEED) -> List[Event]:
    """A deterministic ~``count``-event trace shaped like a campaign run.

    Each "cycle" carries the instrumented m -> i -> transitions -> o -> c
    path of one stimulus, padded with periodic sensor/actuator noise so the
    analysis queries are as selective as they are on real traces.
    """
    rng = random.Random(seed)
    events: List[Event] = []
    now = 0

    def emit(kind: EventKind, variable: str, value) -> None:
        nonlocal now
        now += rng.randint(10, 100)
        events.append(Event(kind, variable, value, now))

    while len(events) < count:
        emit(EventKind.M, "m-BolusReq", True)
        emit(EventKind.I, "i-BolusReq", True)
        for _ in range(rng.randint(1, 3)):
            transition = f"t_{rng.randrange(5)}"
            emit(EventKind.TRANSITION_START, transition, None)
            emit(EventKind.TRANSITION_END, transition, None)
        emit(EventKind.O, "o-MotorState", 1)
        emit(EventKind.C, "c-PumpMotor", 1)
        for _ in range(rng.randint(8, 14)):  # interleaved platform noise
            index = rng.randrange(5)
            if rng.random() < 0.5:
                emit(EventKind.M, f"m-Sensor{index}", rng.random())
            else:
                emit(EventKind.C, f"c-Actuator{index}", rng.random())
    return events[:count]


# ----------------------------------------------------------------------
# Workloads (each returns a comparable result so equality can be asserted)
# ----------------------------------------------------------------------
def workload_stimulus_response_select(trace) -> Tuple[int, List[Event]]:
    """The selects behind ``ResponseMatcher.match`` on every sample variable."""
    out: List[Event] = []
    for variable in ("m-BolusReq", "m-Sensor0", "m-Sensor3"):
        out.extend(trace.select(kind=EventKind.M, variable=variable))
    for variable in ("c-PumpMotor", "c-Actuator0", "c-Actuator3"):
        out.extend(trace.select(kind=EventKind.C, variable=variable))
    return len(out), out


def workload_windowed_first(trace, horizon_us: int) -> Tuple[int, List[Optional[Event]]]:
    """``first_event_after``-style probes across the trace."""
    out = []
    step = horizon_us // WINDOW_QUERIES
    for query in range(WINDOW_QUERIES):
        after = query * step
        out.append(
            trace.first(
                kind=EventKind.I,
                variable="i-BolusReq",
                after_us=after,
                before_us=after + 4 * step,
            )
        )
    return len(out), out


def workload_transition_windows(trace, horizon_us: int) -> Tuple[int, List[Event]]:
    """``_transition_delays``-style multi-kind window queries."""
    out: List[Event] = []
    step = horizon_us // WINDOW_QUERIES
    for query in range(WINDOW_QUERIES):
        after = query * step
        out.extend(
            trace.select_kinds(
                (EventKind.TRANSITION_START, EventKind.TRANSITION_END),
                after_us=after,
                before_us=after + step,
            )
        )
    return len(out), out


def workload_r_evaluate_indexed(trace: Trace) -> Tuple[int, List[Event]]:
    """The new ``evaluate_r_trace`` path: match straight on the full trace.

    The indexed kind/variable queries only touch the m- and c-buckets, so no
    restricted copy is needed at all.
    """
    out = trace.select(kind=EventKind.M, variable="m-BolusReq")
    out += trace.select(kind=EventKind.C, variable="c-PumpMotor")
    return len(out), out


def workload_r_evaluate_linear(linear: "LinearScanTrace") -> Tuple[int, List[Event]]:
    """The seed ``evaluate_r_trace`` path: restrict to m/c, then scan twice."""
    restricted = LinearScanTrace(linear.restricted_to([EventKind.M, EventKind.C]))
    out = restricted.select(kind=EventKind.M, variable="m-BolusReq")
    out += restricted.select(kind=EventKind.C, variable="c-PumpMotor")
    return len(out), out


def _measure(workload: Callable[[], object], repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        workload()
        best = min(best, time.perf_counter() - started)
    return best


# ----------------------------------------------------------------------
# Pytest entry points
# ----------------------------------------------------------------------
def test_indexed_queries_match_linear_scan_and_record():
    events = build_events()
    horizon = events[-1].timestamp_us
    indexed = Trace(events)
    linear = LinearScanTrace(events)

    workloads: Dict[str, Tuple[Callable[[], tuple], Callable[[], tuple]]] = {
        "stimulus_response_select": (
            lambda: workload_stimulus_response_select(indexed),
            lambda: workload_stimulus_response_select(linear),
        ),
        "windowed_first": (
            lambda: workload_windowed_first(indexed, horizon),
            lambda: workload_windowed_first(linear, horizon),
        ),
        "transition_windows": (
            lambda: workload_transition_windows(indexed, horizon),
            lambda: workload_transition_windows(linear, horizon),
        ),
        "r_test_evaluate": (
            lambda: workload_r_evaluate_indexed(indexed),
            lambda: workload_r_evaluate_linear(linear),
        ),
    }

    results: Dict[str, Dict[str, float]] = {}
    for name, (run_indexed, run_linear) in workloads.items():
        count_indexed, out_indexed = run_indexed()
        count_linear, out_linear = run_linear()
        assert count_indexed == count_linear, name
        assert out_indexed == out_linear, f"{name}: indexed result differs from linear scan"

        # Same best-of-3 policy on both sides so runner noise cannot inflate
        # the recorded speedups; the one-time lazy index build is measured
        # separately below and reported alongside.
        indexed_s = _measure(run_indexed)
        linear_s = _measure(run_linear)
        results[name] = {
            "result_size": count_indexed,
            "indexed_s": round(indexed_s, 6),
            "linear_s": round(linear_s, 6),
            # Floor the divisor so a zero perf_counter delta on a
            # coarse-timer platform can't emit non-JSON Infinity.
            "speedup": round(linear_s / max(indexed_s, 1e-9), 2),
        }

    speedups = [entry["speedup"] for entry in results.values()]
    geomean = 1.0
    for value in speedups:
        geomean *= value
    geomean **= 1.0 / len(speedups)

    # One-time cost a cold trace pays on its first indexed query.
    def build_index_cold():
        Trace.from_sorted(events).select(kind=EventKind.M, variable="m-BolusReq")

    payload = {
        "benchmark": "trace-query-throughput",
        "trace_events": EVENT_COUNT,
        "window_queries": WINDOW_QUERIES,
        "index_build_s": round(_measure(build_index_cold), 6),
        "workloads": results,
        "min_speedup": min(speedups),
        "geomean_speedup": round(geomean, 2),
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    # The rewrite must never be slower than the seed scans on any analysis
    # query shape (the ISSUE's acceptance bar of >= 5x is asserted offline
    # from BENCH_trace.json, not here, to keep CI robust on noisy runners).
    assert min(speedups) >= 1.0
