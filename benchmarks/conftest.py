"""Shared helpers for the benchmark harness.

Every benchmark regenerates one artefact of the paper's evaluation (Table I,
the Fig. 2 verification, the Fig. 3 delay segmentation, the ablation sweeps)
and writes its rendered output under ``benchmarks/output/`` so the numbers
recorded in EXPERIMENTS.md can be reproduced with a single pytest run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def write_artifact(output_dir):
    """Write a rendered benchmark artefact and return its path."""

    def _write(name: str, content: str) -> Path:
        path = output_dir / name
        path.write_text(content + "\n", encoding="utf-8")
        return path

    return _write
