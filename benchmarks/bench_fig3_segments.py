"""Benchmark: Fig. 3 — the four timing views of the R-M testing framework.

Fig. 3 of the paper illustrates, for one bolus request, (a) the model-level
timing, (b) the R-testing view (m -> c), (c) the M-testing I/O view
(Input/CODE(M)/Output delays) and (d) the M-testing transition view
(Trans1/Trans2 delays).  This benchmark regenerates all four views — the
scheme executions now run through the campaign engine — and checks their
internal consistency.
"""

from __future__ import annotations

from repro.analysis import fig3_views, model_timing_view
from repro.campaign import CampaignRunner, CampaignSpec, CasePoint, SchemePoint
from repro.gpca import build_fig2_statechart, req1_bolus_start


def fig3_spec(scheme: int, seed: int) -> CampaignSpec:
    """A one-run campaign: one scheme executing the Fig. 3 bolus scenario."""
    return CampaignSpec(
        name=f"fig3-scheme{scheme}",
        schemes=(SchemePoint(scheme, sut_seed=seed),),
        cases=(CasePoint("bolus-request", samples=5, seed=3),),
    )


def build_views(scheme: int, seed: int):
    chart = build_fig2_statechart()
    requirement = req1_bolus_start()
    record = CampaignRunner(fig3_spec(scheme, seed)).run().records[0]
    return record.r_report(), fig3_views(chart, requirement, record.m_report())


def test_fig3_model_view(benchmark, write_artifact):
    """Fig. 3-(a): the model responds instantaneously, within the verified bound."""
    view = benchmark.pedantic(
        lambda: model_timing_view(build_fig2_statechart(), req1_bolus_start()),
        rounds=1,
        iterations=1,
    )
    write_artifact(
        "fig3a_model_view.txt",
        f"trigger at tick {view.trigger_tick}, response at tick {view.response_tick}, "
        f"deadline {view.deadline_ticks} ticks",
    )
    assert view.within_deadline
    assert view.response_latency_ticks == 0


def test_fig3_views_scheme1(benchmark, write_artifact):
    r_report, views = benchmark.pedantic(lambda: build_views(1, 11), rounds=1, iterations=1)
    write_artifact("fig3_scheme1.txt", "\n\n".join(view.render() for view in views))
    for view in views:
        segments = view.segments
        if segments.complete:
            assert segments.segments_consistent()
            # R-view latency equals the m->c difference of the I/O view.
            m_time, c_time = view.r_view
            assert c_time - m_time == segments.end_to_end_us
        # Transition spans fall between the i-event and the o-event.
        for _, start, end in view.transition_view:
            assert segments.i_time_us <= start <= end
            assert segments.o_time_us is None or end <= segments.o_time_us


def test_fig3_views_scheme3_show_inflated_transitions(benchmark, write_artifact):
    """Under interference the wall-clock transition spans inflate (preemption)."""
    _, scheme1_views = build_views(1, 11)
    _, scheme3_views = benchmark.pedantic(lambda: build_views(3, 33), rounds=1, iterations=1)
    write_artifact("fig3_scheme3.txt", "\n\n".join(view.render() for view in scheme3_views))

    def worst_transition_span(views):
        spans = [
            end - start
            for view in views
            for _, start, end in view.transition_view
        ]
        return max(spans) if spans else 0

    assert worst_transition_span(scheme3_views) > worst_transition_span(scheme1_views)
