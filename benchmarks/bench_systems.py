"""Benchmark: the three system packs through the full layered pipeline.

For every registered pack (the GPCA pump, the rate-adaptive pacemaker and
the cruise/AEB controller) this benchmark records:

* **campaign throughput** — runs per second of a scheme-2 R+M campaign over
  the pack's entire fixed-scenario inventory;
* **exploration cost** — how many coverage-guided episodes the stock
  explorer needs to reach *full* chart transition coverage of the pack's
  scenario space at seed 0;
* **detection power** — the kill-matrix verdict of a fast per-pack
  sub-matrix (two fault plans x the pack's killable mutants x one
  scenario), asserting at least one killed mutant per pack.

Results land in ``BENCH_systems.json`` at the repository root.
"""

from __future__ import annotations

import dataclasses
import json
import time
from pathlib import Path

from repro.campaign import ArtifactCache, CampaignRunner
from repro.campaign.spec import CampaignSpec, CasePoint, SchemePoint
from repro.faults.matrix import default_matrix_spec, run_kill_matrix
from repro.scenarios import CoverageGuidedExplorer
from repro.systems import iter_packs

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_systems.json"

SAMPLES = 2
SEED = 0

#: Per-pack exploration budgets (episodes) and the mutants the pack's fixed
#: scenarios are known to kill, with the scenario that kills them.
EXPLORE_BUDGET = {"gpca": 30, "pacemaker": 60, "cruise": 40}
KILL_TARGETS = {
    "gpca": (("drop:t_start_infusion:0:o-MotorState",), "bolus-request"),
    "pacemaker": (
        ("retarget:t_sense_inhibit:MagnetTest", "drop:t_sense_inhibit:0:o-MarkerState"),
        "sense-inhibit",
    ),
    "cruise": (
        ("retarget:t_engage:Override", "drop:t_engage:0:o-ThrottleState"),
        "engage",
    ),
}


def campaign_throughput(pack):
    spec = CampaignSpec(
        name=f"bench-{pack.system_id}",
        schemes=(SchemePoint(2),),
        cases=tuple(
            CasePoint(case, samples=SAMPLES, system=pack.system_id)
            for case in sorted(pack.case_builders)
        ),
        base_seed=SEED,
        model=pack.default_model,
    )
    started = time.perf_counter()
    result = CampaignRunner(spec, workers=1).run()
    seconds = time.perf_counter() - started
    assert all(record.passed for record in result.records), (
        f"{pack.system_id}: scheme-2 campaign must conform"
    )
    return {
        "runs": len(result.records),
        "seconds": round(seconds, 3),
        "runs_per_second": round(len(result.records) / seconds, 2),
    }


def exploration_cost(pack):
    artifacts = ArtifactCache().artifacts_for_model(pack.default_model)

    def factory():
        return pack.build_system(1, seed=11, artifacts=artifacts)

    explorer = CoverageGuidedExplorer(
        pack.scenario_space(), factory, artifacts.code_model, seed=SEED
    )
    budget = EXPLORE_BUDGET[pack.system_id]
    started = time.perf_counter()
    report = explorer.explore(budget)
    seconds = time.perf_counter() - started
    assert report.transition_coverage.ratio == 1.0, (
        f"{pack.system_id}: uncovered {sorted(report.transition_coverage.uncovered)}"
    )
    to_full = next(
        index + 1
        for index, episode in enumerate(report.episodes)
        if episode.transition_ratio_after == 1.0
    )
    return {
        "budget": budget,
        "episodes_to_full_coverage": to_full,
        "transitions": len(report.transition_coverage.covered),
        "seconds": round(seconds, 3),
    }


def detection_power(pack):
    mutant_ids, case = KILL_TARGETS[pack.system_id]
    spec = default_matrix_spec(samples=SAMPLES, base_seed=SEED, system=pack.system_id)
    keep = tuple(m for m in spec.mutants if m.mutant_id in mutant_ids)
    assert len(keep) == len(mutant_ids), f"{pack.system_id}: expected mutants missing"
    spec = dataclasses.replace(
        spec,
        mutants=keep,
        fault_plans=spec.fault_plans[:2],
        cases=(case,),
        fault_schemes=(2,),
        mutant_schemes=(2,),
    )
    started = time.perf_counter()
    matrix = run_kill_matrix(spec, workers=1)
    seconds = time.perf_counter() - started
    killed = sorted(matrix.killed_mutants())
    assert killed, f"{pack.system_id}: no mutant killed"
    return {
        "runs": spec.size,
        "seconds": round(seconds, 3),
        "mutation_score": matrix.mutation_score,
        "killed": killed,
        "surviving": sorted(matrix.surviving_mutants()),
        "detected_faults": sorted(matrix.detected_faults()),
    }, matrix


def test_system_packs_throughput_and_detection(write_artifact):
    """Measure each pack end to end; record BENCH_systems.json."""
    systems = {}
    lines = []
    for pack in iter_packs():
        campaign = campaign_throughput(pack)
        exploration = exploration_cost(pack)
        detection, matrix = detection_power(pack)
        systems[pack.system_id] = {
            "title": pack.title,
            "default_model": pack.default_model,
            "campaign": campaign,
            "exploration": exploration,
            "detection": detection,
        }
        lines.extend(
            [
                f"{pack.system_id}: {campaign['runs']} runs at "
                f"{campaign['runs_per_second']} runs/s; full coverage in "
                f"{exploration['episodes_to_full_coverage']} episodes; "
                f"mutation score {detection['mutation_score']:.0%}",
                matrix.render(),
            ]
        )

    payload = {"samples": SAMPLES, "seed": SEED, "systems": systems}
    BENCH_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    write_artifact("systems.txt", "\n".join(lines))
