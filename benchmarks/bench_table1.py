"""Benchmark: Table I — measured time-delays for the bolus-request scenario.

Reproduces the paper's Table I through the campaign engine: the ten R-testing
samples of REQ1 per implementation scheme plus the M-testing delay segments
are one three-run campaign grid (:func:`repro.campaign.table_one_spec`).  The
qualitative shape the paper reports is then checked on the aggregate:

* scheme 2 (multi-threaded, period sum < 100 ms) conforms;
* scheme 1 (single-threaded 25 ms loop) shows occasional, marginal violations;
* scheme 3 (with interfering threads) violates heavily, including MAX
  (time-out) samples, and is the worst of the three.
"""

from __future__ import annotations

import pytest

from repro.analysis import TableOne
from repro.campaign import CampaignRunner, table_one_spec

SAMPLES = 10
CASE_SEED = 7


def build_table() -> TableOne:
    """Run the Table I campaign grid and rebuild the table from the aggregate."""
    result = CampaignRunner(table_one_spec(samples=SAMPLES, case_seed=CASE_SEED)).run()
    return result.table_one()


@pytest.fixture(scope="module")
def table_one() -> TableOne:
    return build_table()


def test_table1_reproduction(benchmark, table_one, write_artifact):
    """Regenerate Table I and check the paper's qualitative shape."""
    table = benchmark.pedantic(build_table, rounds=1, iterations=1)
    rendered = table.render()
    write_artifact("table1.txt", rendered)

    by_scheme = {result.scheme: result for result in table.results}
    scheme1, scheme2, scheme3 = by_scheme[1], by_scheme[2], by_scheme[3]

    # Scheme 2 conforms by construction (period sum < deadline).
    assert scheme2.r_report.passed
    # Scheme 1 shows some violations but no time-outs.
    assert 0 < scheme1.r_report.violation_count < SAMPLES
    assert scheme1.r_report.timeout_count == 0
    # Scheme 3 is the worst: many violations and at least one MAX sample.
    assert scheme3.r_report.violation_count > scheme1.r_report.violation_count
    assert scheme3.r_report.timeout_count >= 1


def test_table1_m_segments_explain_violations(benchmark, table_one, write_artifact):
    """Every violating sample is decomposed into consistent delay segments."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # table built once per module
    lines = []
    for result in table_one.results:
        for segment in result.m_report.segments:
            if not segment.complete:
                continue
            assert segment.segments_consistent()
        lines.append(
            f"{result.label}: dominant segment = {result.m_report.dominant_segment()}"
        )
    write_artifact("table1_dominant_segments.txt", "\n".join(lines))
    # With one transition per 25 ms cycle the single-threaded scheme's latency
    # is dominated by the CODE(M) segment; interference also lands there.
    assert table_one.results[2].m_report.dominant_segment() in {"code", "input"}


def test_table1_transition_delays_match_paper_scale(benchmark, table_one, write_artifact):
    """Trans1/Trans2 delays on the uncontended schemes sit near 11 ms / 20 ms."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # table built once per module
    scheme1 = table_one.results[0].m_report
    trans1 = scheme1.mean_transition_delay_us("t_bolus_req")
    trans2 = scheme1.mean_transition_delay_us("t_start_infusion")
    write_artifact(
        "table1_transition_delays.txt",
        f"Trans1 (Idle->BolusRequested): {trans1 / 1000:.1f} ms (paper: 11 ms)\n"
        f"Trans2 (BolusRequested->Infusion): {trans2 / 1000:.1f} ms (paper: 20 ms)",
    )
    assert 7_000 <= trans1 <= 16_000
    assert 15_000 <= trans2 <= 26_000
