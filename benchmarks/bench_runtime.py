"""Benchmark: runtime-engine speedup over the frozen seed engine, with a CI gate.

Measures the hot-loop rebuild (batched kernel dispatch, columnar traces,
precomputed labels, probe gating) against the byte-identical seed
implementations preserved in :mod:`repro._reference.seed_engine`, and records
the numbers in ``BENCH_runtime.json``:

* **kernel_dispatch** — raw event-storm throughput of the batched kernel vs
  the seed kernel (events per second, identical dispatch sequences);
* **trace_record** — recorder append throughput of the columnar trace vs the
  seed object-per-event trace (events per second);
* **single_run** — one full R-test execution (scheme 2, bolus-request) on the
  optimised engine vs the seed engine, byte-identical reports asserted with
  full traces included;
* **fault_matrix** — the end-to-end number: the default 112-run fault/mutation
  matrix executed serially on the current engine (probe gating active) vs the
  seed engine on the pre-rebuild path, with every run's R/M payloads asserted
  identical.

Unlike the other benchmarks this is a plain script, because it doubles as the
CI perf gate::

    python benchmarks/bench_runtime.py                  # full run, writes BENCH_runtime.json
    python benchmarks/bench_runtime.py --smoke \\
        --baseline BENCH_runtime.json --fail-on-regression

The gate compares *speedup ratios* (current engine vs seed engine, both
measured in the same process on the same machine), not absolute runs/s —
absolute throughput varies wildly across CI runners, the ratio does not.  The
gate fails when the measured fault-matrix speedup drops below
``GATE_RATIO`` (70 %) of the committed baseline's, i.e. a >30 % relative
throughput regression of the optimised engine.  ``--self-test-gate``
synthesises a 50 % slowdown against the baseline and must exit non-zero;
CI runs it once to prove the gate actually trips.
"""

from __future__ import annotations

import argparse
import gc
import json
import random
import sys
import time
from pathlib import Path

from repro._reference import SEED_ENGINE
from repro._reference.seed_engine import SeedSimulator, SeedTraceRecorder
from repro.campaign.worker import execute_run
from repro.core.four_variables import TraceRecorder
from repro.core.m_testing import MTestAnalyzer
from repro.core.r_testing import execute_r_test
from repro.core.serialization import m_report_to_dict, r_report_to_dict, r_report_to_json
from repro.campaign.cache import process_cache
from repro.campaign.spec import M_TEST_NONE, M_TEST_VIOLATIONS, derive_seed
from repro.faults import default_matrix_spec
from repro.gpca.interface import build_pump_interface
from repro.gpca.pump import build_scheme_system
from repro.gpca.scenarios import bolus_request_test_case
from repro.platform.kernel.simulator import Simulator

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_runtime.json"

SEED = 0
SAMPLES = 3
KERNEL_EVENTS = 30_000
TRACE_EVENTS = 60_000
#: Every Nth matrix run in --smoke mode (CI); full mode runs all 112.
SMOKE_STRIDE = 8
#: Gate: fail when the measured speedup falls below this fraction of the
#: committed baseline's speedup (0.7 == ">30 % regression fails").
GATE_RATIO = 0.7
#: Looser per-stage floor for the micro stages, so the gate's failure report
#: names *which* stage regressed instead of only the end-to-end number.  The
#: micro stages are noisier than the interleaved matrix, hence the wider band.
SECONDARY_GATE_RATIO = 0.5
#: Stage -> gate ratio; every stage is checked and reported.
GATE_STAGES = {
    "kernel_dispatch": SECONDARY_GATE_RATIO,
    "trace_record": SECONDARY_GATE_RATIO,
    "single_run": SECONDARY_GATE_RATIO,
    "fault_matrix": GATE_RATIO,
}
#: Full-mode floor for the end-to-end Python-path speedup.
MIN_MATRIX_SPEEDUP = 3.0
#: Interleaved measurement repeats per stage (full mode; smoke uses 1).
FULL_REPEATS = 3


def _leg_stats(seed_times, current_times):
    """min/mean stats for one stage's interleaved seed/current legs.

    The headline ``*_seconds`` and ``speedup`` come from the per-leg *minima*
    (the least-noise estimate of true cost); the means ride along so a noisy
    run is visible in the recorded JSON.
    """
    seed_min, current_min = min(seed_times), min(current_times)
    return {
        "repeats": len(seed_times),
        "seed_seconds": round(seed_min, 4),
        "current_seconds": round(current_min, 4),
        "seed_seconds_mean": round(sum(seed_times) / len(seed_times), 4),
        "current_seconds_mean": round(sum(current_times) / len(current_times), 4),
        "speedup": round(seed_min / current_min, 3),
    }


# ----------------------------------------------------------------------
# Stage 1: raw kernel dispatch
# ----------------------------------------------------------------------
def _kernel_storm(simulator_class, events):
    """Self-sustaining event storm: mixed delays (heavy same-instant traffic),
    mixed priorities, a sprinkle of cancellations."""
    simulator = simulator_class()
    rng = random.Random(SEED)
    fired = [0]
    pending = []

    def callback():
        fired[0] += 1
        if fired[0] < events:
            pending.append(
                simulator.schedule(
                    rng.choice([0, 0, 1, 10, 250]),
                    callback,
                    priority=rng.randrange(-2, 3),
                    label="storm",
                )
            )
            if fired[0] % 97 == 0 and pending:
                pending[rng.randrange(len(pending))].cancel()

    for _ in range(64):
        simulator.schedule(rng.randrange(500), callback, priority=rng.randrange(-2, 3))
    simulator.run(max_events=events * 2 + 1000)
    return simulator.events_processed, simulator.now


def bench_kernel_dispatch(events, repeats=1):
    seed_times, current_times = [], []
    processed = 0
    for _ in range(repeats):
        started = time.perf_counter()
        seed_processed, seed_now = _kernel_storm(SeedSimulator, events)
        seed_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        current_processed, current_now = _kernel_storm(Simulator, events)
        current_times.append(time.perf_counter() - started)
        assert (current_processed, current_now) == (seed_processed, seed_now), (
            "kernel storms diverged between engines"
        )
        processed = current_processed
    stats = _leg_stats(seed_times, current_times)
    return {
        "events": processed,
        "seed_events_per_second": round(processed / stats["seed_seconds"]),
        "current_events_per_second": round(processed / stats["current_seconds"]),
        **stats,
    }


# ----------------------------------------------------------------------
# Stage 2: trace recording
# ----------------------------------------------------------------------
def _record_storm(recorder_factory, events):
    clock = [0]
    recorder = recorder_factory(lambda: clock[0])
    record_c = recorder.record_c
    record_m = recorder.record_m
    for index in range(events):
        clock[0] += 3
        if index % 25 == 0:
            record_m("m-BolusReq", True, device="button")
        else:
            record_c("c-MotorState", index & 7)
    return recorder.trace


def bench_trace_record(events, repeats=1):
    seed_times, current_times = [], []
    for _ in range(repeats):
        started = time.perf_counter()
        seed_trace = _record_storm(SeedTraceRecorder, events)
        seed_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        current_trace = _record_storm(TraceRecorder, events)
        current_times.append(time.perf_counter() - started)
        assert list(current_trace) == list(seed_trace), "recorded traces diverged"
    stats = _leg_stats(seed_times, current_times)
    return {
        "events": events,
        "seed_events_per_second": round(events / stats["seed_seconds"]),
        "current_events_per_second": round(events / stats["current_seconds"]),
        **stats,
    }


# ----------------------------------------------------------------------
# Stage 3: one full R-test run
# ----------------------------------------------------------------------
def _single_run(engine):
    case = bolus_request_test_case(5, seed=SEED)

    def factory():
        return build_scheme_system(2, seed=1234, engine=engine)

    return execute_r_test(factory, case)


def bench_single_run(rounds):
    seed_times, current_times = [], []
    for _ in range(rounds):
        started = time.perf_counter()
        seed_report = _single_run(SEED_ENGINE)
        seed_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        current_report = _single_run(None)
        current_times.append(time.perf_counter() - started)
        assert r_report_to_json(current_report, include_trace=True) == r_report_to_json(
            seed_report, include_trace=True
        ), "single-run reports diverged between engines"
    return {"rounds": rounds, **_leg_stats(seed_times, current_times)}


# ----------------------------------------------------------------------
# Stage 4: the end-to-end fault matrix
# ----------------------------------------------------------------------
def _execute_run_reference(spec):
    """The pre-rebuild execution path: seed engine, no probe gating.

    Mirrors :func:`repro.campaign.worker.execute_run` stage for stage so the
    comparison times engines, not bookkeeping differences.
    """
    cache = process_cache()
    if spec.mutant is not None:
        artifacts = cache.artifacts_for_mutant(spec.model, spec.mutant)
    else:
        artifacts = cache.artifacts_for_model(spec.model)
    test_case = spec.test_case()

    def factory():
        system = build_scheme_system(
            spec.scheme,
            seed=spec.sut_seed,
            use_extended_model=spec.model == "extended",
            period_us=spec.period_us,
            interference_scale=spec.interference_scale,
            artifacts=artifacts,
            engine=SEED_ENGINE,
        )
        if spec.faults is not None and not spec.faults.empty:
            spec.faults.instrument(
                system, seed=derive_seed(spec.sut_seed, "faults", spec.faults.name, spec.case)
            )
        return system

    r_report = execute_r_test(factory, test_case)
    m_payload = None
    if spec.m_test != M_TEST_NONE:
        analyzer = MTestAnalyzer(build_pump_interface(), test_case.requirement)
        if spec.m_test == M_TEST_VIOLATIONS:
            m_report = analyzer.analyze_violations(r_report)
        else:
            m_report = analyzer.analyze(r_report.trace, sut_name=r_report.sut_name)
        m_payload = m_report_to_dict(m_report)
    return r_report_to_dict(r_report), m_payload


def bench_fault_matrix(smoke):
    spec = default_matrix_spec(samples=SAMPLES, base_seed=SEED)
    specs = spec.expand()
    if smoke:
        specs = specs[::SMOKE_STRIDE]

    # Warm pass: compile every artifact (model, mutants) and touch every code
    # path once, so neither engine is charged first-touch costs below.
    for run_spec in specs:
        execute_run(run_spec)

    # Interleaved timing: each spec runs on both engines back to back, so
    # background load and allocator/GC state hit both measurements roughly
    # equally.  The *ratio* is what the gate reads; interleaving makes it far
    # more stable than timing two long blocks that can land under different
    # host conditions.
    gc.collect()
    seed_run_times = []
    current_run_times = []
    reference = []
    records = []
    for run_spec in specs:
        started = time.perf_counter()
        reference.append(_execute_run_reference(run_spec))
        seed_run_times.append(time.perf_counter() - started)
        started = time.perf_counter()
        records.append(execute_run(run_spec))
        current_run_times.append(time.perf_counter() - started)
    seed_s = sum(seed_run_times)
    current_s = sum(current_run_times)

    for record, (r_payload, m_payload) in zip(records, reference):
        assert record.r_payload == r_payload, (
            f"R payload diverged between engines for run {record.spec.label!r}"
        )
        assert record.m_payload == m_payload, (
            f"M payload diverged between engines for run {record.spec.label!r}"
        )

    return {
        "runs": len(specs),
        "total_matrix_runs": spec.size,
        "samples": SAMPLES,
        "seed_seconds": round(seed_s, 3),
        "current_seconds": round(current_s, 3),
        "seed_runs_per_second": round(len(specs) / seed_s, 2),
        "current_runs_per_second": round(len(specs) / current_s, 2),
        "seed_run_seconds_min": round(min(seed_run_times), 4),
        "seed_run_seconds_mean": round(seed_s / len(specs), 4),
        "current_run_seconds_min": round(min(current_run_times), 4),
        "current_run_seconds_mean": round(current_s / len(specs), 4),
        "speedup": round(seed_s / current_s, 3),
        "byte_identical": True,
    }


# ----------------------------------------------------------------------
# Gate
# ----------------------------------------------------------------------
def apply_gate(current_stages, baseline_payload):
    """Regression check, ratio-based: returns a list of failure messages.

    Every stage in :data:`GATE_STAGES` is checked against its own ratio, so a
    failure report names *which* stage regressed (kernel dispatch vs trace
    recording vs the end-to-end matrix) rather than only the headline number.
    Only ``fault_matrix`` is required to exist in the baseline; micro stages
    missing from an older baseline are skipped, not failed.
    """
    failures = []
    baseline_stages = baseline_payload.get("stages", {})
    for stage, ratio in GATE_STAGES.items():
        baseline_speedup = baseline_stages.get(stage, {}).get("speedup")
        current_speedup = current_stages.get(stage, {}).get("speedup")
        if baseline_speedup is None or current_speedup is None:
            if stage == "fault_matrix":
                failures.append(f"{stage}: missing speedup in baseline or current run")
            continue
        floor = ratio * baseline_speedup
        if current_speedup < floor:
            failures.append(
                f"{stage}: speedup {current_speedup:.2f}x fell below "
                f"{floor:.2f}x ({ratio:.0%} of baseline {baseline_speedup:.2f}x)"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"subsample the fault matrix (every {SMOKE_STRIDE}th run) for CI",
    )
    parser.add_argument("--output", type=Path, default=None, help="result JSON path")
    parser.add_argument(
        "--baseline", type=Path, default=None, help="committed BENCH_runtime.json to gate against"
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help=f"exit 1 when the measured speedup drops below {GATE_RATIO:.0%} of the baseline's",
    )
    parser.add_argument(
        "--self-test-gate",
        action="store_true",
        help="skip measurement, synthesise a 50%% slowdown vs the baseline, and gate on it "
        "(must exit non-zero; CI verifies the gate trips)",
    )
    args = parser.parse_args(argv)

    if args.self_test_gate:
        if args.baseline is None:
            parser.error("--self-test-gate requires --baseline")
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        degraded = {
            stage: {"speedup": values["speedup"] * 0.5}
            for stage, values in baseline.get("stages", {}).items()
            if "speedup" in values
        }
        failures = apply_gate(degraded, baseline)
        for failure in failures:
            print(f"REGRESSION (synthetic): {failure}")
        if failures:
            print("self-test OK: the gate trips on a 50% slowdown")
            return 1
        print("self-test FAILED: a 50% slowdown did not trip the gate")
        return 2

    repeats = 1 if args.smoke else FULL_REPEATS
    stages = {}
    print("kernel dispatch ...", flush=True)
    stages["kernel_dispatch"] = bench_kernel_dispatch(KERNEL_EVENTS, repeats=repeats)
    print("trace recording ...", flush=True)
    stages["trace_record"] = bench_trace_record(TRACE_EVENTS, repeats=repeats)
    print("single R-test run ...", flush=True)
    stages["single_run"] = bench_single_run(rounds=repeats)
    print("fault matrix ...", flush=True)
    stages["fault_matrix"] = bench_fault_matrix(smoke=args.smoke)

    payload = {
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "gate": {
            "stage": "fault_matrix",
            "min_speedup_ratio": GATE_RATIO,
            "stage_ratios": GATE_STAGES,
        },
        "stages": stages,
    }

    for stage, values in stages.items():
        print(
            f"{stage}: seed {values['seed_seconds']}s -> current {values['current_seconds']}s "
            f"({values['speedup']}x)"
        )

    if not args.smoke and stages["fault_matrix"]["speedup"] < MIN_MATRIX_SPEEDUP:
        print(
            f"FAIL: end-to-end matrix speedup {stages['fault_matrix']['speedup']}x "
            f"is below the required {MIN_MATRIX_SPEEDUP}x"
        )
        return 1

    output = args.output
    if output is None and not args.smoke:
        output = BENCH_PATH
    if output is not None:
        output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {output}")

    if args.baseline is not None:
        baseline = json.loads(args.baseline.read_text(encoding="utf-8"))
        failures = apply_gate(stages, baseline)
        for failure in failures:
            print(f"REGRESSION: {failure}")
        if failures and args.fail_on_regression:
            return 1
        if not failures:
            print(
                f"gate OK: fault-matrix speedup {stages['fault_matrix']['speedup']}x vs "
                f"baseline {baseline['stages']['fault_matrix']['speedup']}x"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
