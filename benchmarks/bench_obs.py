"""Benchmark: the observability layer's overhead, with a CI gate.

The obs layer's contract is *zero perturbation*: the records are byte-identical
with telemetry off, on, or on with span collection, and the disabled path pays
(nearly) nothing.  This script measures both halves on the end-to-end
fault-matrix workload and records the numbers in ``BENCH_obs.json``:

* **stripped** — a replica of :func:`repro.campaign.worker.execute_run` with
  every piece of obs bookkeeping deleted (no phase stamps, no registry
  folds, no phase_seconds on the record): what the worker would cost if the
  layer did not exist;
* **disabled** — ``execute_run`` exactly as shipped: hot loops keep their
  unconditional engine counters, the worker folds them into the process
  registry once per run, spans off (the default for every campaign);
* **enabled** — :func:`repro.campaign.profiler.profile_run`: span tracer
  attached, scheduler observer streaming compute segments and deadline
  misses into the simulated-time lane.

The three legs interleave per spec (stripped → disabled → enabled, back to
back) so host noise hits all three roughly equally — the same discipline as
``bench_runtime.py``.  Every leg's R/M payloads are asserted identical, which
is the perturbation check; the gate then fails when the disabled leg costs
more than ``MAX_DISABLED_OVERHEAD`` (5 %) over the stripped leg in full mode
(10 % in ``--smoke`` mode, where the subsampled matrix is noisier)::

    python benchmarks/bench_obs.py                    # full, writes BENCH_obs.json
    python benchmarks/bench_obs.py --smoke --fail-on-overhead
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

from repro.campaign.cache import process_cache
from repro.campaign.profiler import profile_run
from repro.campaign.spec import M_TEST_NONE, M_TEST_VIOLATIONS, derive_seed
from repro.campaign.worker import execute_run
from repro.codegen.c_backend import resolve_backend
from repro.core.instrumentation import ProbeConfiguration
from repro.core.m_testing import MTestAnalyzer
from repro.core.r_testing import execute_r_test
from repro.core.serialization import m_report_to_dict, r_report_to_dict
from repro.faults import default_matrix_spec
from repro.systems import get_pack

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

SEED = 0
SAMPLES = 3
#: Every Nth matrix run in --smoke mode (CI); full mode runs all of them.
SMOKE_STRIDE = 8
#: Gate: the disabled-telemetry leg may cost at most this much over the
#: stripped leg.  Smoke mode widens the band — 14 subsampled runs are noisy.
MAX_DISABLED_OVERHEAD = 1.05
MAX_DISABLED_OVERHEAD_SMOKE = 1.10


def _execute_run_stripped(spec):
    """``execute_run`` with the obs layer deleted.

    Mirrors :func:`repro.campaign.worker.execute_run` stage for stage — same
    cache, same probe gating, same backend resolution — minus the phase
    stamps, the registry folds and the ``phase_seconds`` side channel.  This
    is the baseline the disabled-overhead gate compares against.
    """
    pack = get_pack(spec.system)
    cache = process_cache()
    if spec.mutant is not None:
        artifacts = cache.artifacts_for_mutant(spec.model, spec.mutant)
    else:
        artifacts = cache.artifacts_for_model(spec.model)
    test_case = spec.test_case()
    resolution = resolve_backend(spec.backend, artifacts)
    probes = ProbeConfiguration.r_level() if spec.m_test == M_TEST_NONE else None

    def factory():
        system = pack.build_system(
            spec.scheme,
            model=spec.model,
            seed=spec.sut_seed,
            period_us=spec.period_us,
            interference_scale=spec.interference_scale,
            artifacts=artifacts,
            probes=probes,
            code_factory=resolution.code_factory,
        )
        if spec.faults is not None and not spec.faults.empty:
            spec.faults.instrument(
                system, seed=derive_seed(spec.sut_seed, "faults", spec.faults.name, spec.case)
            )
        return system

    r_report = execute_r_test(factory, test_case)
    m_payload = None
    if spec.m_test != M_TEST_NONE:
        analyzer = MTestAnalyzer(pack.build_interface(), test_case.requirement)
        if spec.m_test == M_TEST_VIOLATIONS:
            m_report = analyzer.analyze_violations(r_report)
        else:
            m_report = analyzer.analyze(r_report.trace, sut_name=r_report.sut_name)
        m_payload = m_report_to_dict(m_report)
    return r_report_to_dict(r_report), m_payload


def bench_overhead(smoke):
    """Interleaved stripped/disabled/enabled legs over the fault matrix."""
    spec = default_matrix_spec(samples=SAMPLES, base_seed=SEED)
    specs = spec.expand()
    if smoke:
        specs = specs[::SMOKE_STRIDE]

    # Warm pass: compile every artifact and touch every code path once, so no
    # leg is charged first-touch costs below.
    for run_spec in specs:
        execute_run(run_spec)
        profile_run(run_spec)

    gc.collect()
    stripped_s = 0.0
    disabled_s = 0.0
    enabled_s = 0.0
    stripped_payloads = []
    records = []
    profiles = []
    for run_spec in specs:
        started = time.perf_counter()
        stripped_payloads.append(_execute_run_stripped(run_spec))
        stripped_s += time.perf_counter() - started
        started = time.perf_counter()
        records.append(execute_run(run_spec))
        disabled_s += time.perf_counter() - started
        started = time.perf_counter()
        profiles.append(profile_run(run_spec))
        enabled_s += time.perf_counter() - started

    # The perturbation check: all three legs produced the same verdicts.
    for record, profile, (r_payload, m_payload) in zip(records, profiles, stripped_payloads):
        label = record.spec.label
        assert record.r_payload == r_payload, f"disabled leg diverged for {label!r}"
        assert record.m_payload == m_payload, f"disabled leg diverged for {label!r}"
        assert profile.record.to_dict() == record.to_dict(), (
            f"span-enabled leg diverged for {label!r}"
        )

    return {
        "runs": len(specs),
        "total_matrix_runs": spec.size,
        "samples": SAMPLES,
        "stripped_seconds": round(stripped_s, 3),
        "disabled_seconds": round(disabled_s, 3),
        "enabled_seconds": round(enabled_s, 3),
        "disabled_overhead": round(disabled_s / stripped_s, 4),
        "enabled_overhead": round(enabled_s / stripped_s, 4),
        "byte_identical": True,
    }


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"subsample the fault matrix (every {SMOKE_STRIDE}th run) for CI",
    )
    parser.add_argument("--output", type=Path, default=None, help="result JSON path")
    parser.add_argument(
        "--fail-on-overhead",
        action="store_true",
        help="exit 1 when the disabled-telemetry overhead exceeds the gate",
    )
    args = parser.parse_args(argv)

    limit = MAX_DISABLED_OVERHEAD_SMOKE if args.smoke else MAX_DISABLED_OVERHEAD
    print("obs overhead (stripped / disabled / enabled, interleaved) ...", flush=True)
    stage = bench_overhead(smoke=args.smoke)
    payload = {
        "mode": "smoke" if args.smoke else "full",
        "seed": SEED,
        "gate": {"max_disabled_overhead": limit},
        "fault_matrix": stage,
    }
    print(
        f"fault matrix ({stage['runs']} runs): stripped {stage['stripped_seconds']}s, "
        f"disabled {stage['disabled_seconds']}s ({stage['disabled_overhead']}x), "
        f"enabled {stage['enabled_seconds']}s ({stage['enabled_overhead']}x)"
    )
    print("byte-identical across all three legs: True")

    output = args.output
    if output is None and not args.smoke:
        output = BENCH_PATH
    if output is not None:
        output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
        print(f"wrote {output}")

    if stage["disabled_overhead"] > limit:
        print(
            f"OVERHEAD: disabled telemetry costs {stage['disabled_overhead']}x "
            f"over the stripped path (limit {limit}x)"
        )
        if args.fail_on_overhead:
            return 1
    else:
        print(f"gate OK: disabled overhead {stage['disabled_overhead']}x <= {limit}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
