"""Benchmark: Fig. 1 — the end-to-end model-based implementation pipeline.

Runs the whole flow the paper's Fig. 1 describes — model construction,
verification, code generation, platform integration and one executed bolus
scenario — and reports how long each stage of the reproduction takes.  This is
a tooling benchmark (our simulator, not the paper's testbed), but it documents
that the full pipeline is cheap enough to run inside a test suite.
"""

from __future__ import annotations

import pytest

from repro.codegen import generate_code
from repro.core import EventKind, RTestRunner
from repro.gpca import (
    PumpBuildOptions,
    bolus_request_test_case,
    build_fig2_statechart,
    make_system,
    req1_bolus_start,
)
from repro.model.verification import BoundedResponseChecker


def test_model_build_and_verification(benchmark):
    def stage():
        chart = build_fig2_statechart()
        checker = BoundedResponseChecker(chart)
        return checker.check(req1_bolus_start().to_model_requirement())

    result = benchmark(stage)
    assert result.passed


def test_code_generation(benchmark):
    chart = build_fig2_statechart()
    artifacts = benchmark(lambda: generate_code(chart))
    assert len(artifacts.code_model.transitions) == 5
    assert "switch" in artifacts.c_source


@pytest.mark.parametrize("scheme", [1, 2, 3])
def test_integration_and_single_bolus(benchmark, scheme, write_artifact):
    """Build the implemented system and execute one bolus request end to end."""
    test_case = bolus_request_test_case(samples=1, seed=1)

    def stage():
        runner = RTestRunner(lambda: make_system(scheme, PumpBuildOptions(seed=scheme)))
        return runner.run(test_case)

    report = benchmark.pedantic(stage, rounds=3, iterations=1)
    # The pipeline produced a physically visible motor start (or a time-out on
    # the interfered scheme); either way the trace contains the full m/i/o
    # instrumentation path.
    trace = report.trace
    assert trace.select(kind=EventKind.M, variable="m-BolusReq")
    assert trace.select(kind=EventKind.I, variable="i-BolusReq")
    assert trace.select(kind=EventKind.O, variable="o-MotorState")
    write_artifact(
        f"pipeline_scheme{scheme}.txt",
        f"{report.sut_name}: sample latency = {report.samples[0].latency_label()} ms",
    )
